"""Tests for the comparator protocols (Table 1 rows and §2.3/§7 claims)."""

import pytest

from repro.baselines import (
    BroadcastMulticast,
    PartitionedMulticast,
    SkeenMulticast,
)
from repro.groups import paper_figure1_topology
from repro.model import (
    SimulationError,
    TopologyError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import (
    check_integrity,
    check_minimality,
    check_ordering,
    check_termination,
)
from repro.workloads import disjoint_topology

PROCS = make_processes(5)
ALL = pset(PROCS)


class TestBroadcastBaseline:
    def test_orders_and_terminates(self):
        b = BroadcastMulticast(paper_figure1_topology(), failure_free(ALL))
        b.multicast(PROCS[0], "g1")
        b.multicast(PROCS[2], "g2")
        b.run()
        assert check_integrity(b.record) == []
        assert check_ordering(b.record) == []
        assert check_termination(b.record) == []

    def test_is_not_genuine(self):
        """The defining flaw: uninvolved processes take steps."""
        b = BroadcastMulticast(paper_figure1_topology(), failure_free(ALL))
        b.multicast(PROCS[0], "g1")  # dst = {p1, p2}
        b.run()
        violations = check_minimality(b.record)
        assert any("p5" in v for v in violations)

    def test_per_process_work_scales_with_total_load(self):
        """Steps at an idle process grow linearly with global traffic."""
        topo = disjoint_topology(3, group_size=2)
        procs = make_processes(6)
        b = BroadcastMulticast(topo, failure_free(pset(procs)))
        for _ in range(10):
            b.multicast(procs[0], "g1")
        b.run()
        # p5/p6 are in g3, which got no traffic, yet stepped 10 times.
        assert b.record.steps_of(procs[4]) == 10

    def test_crashed_sender_rejected(self):
        pattern = crash_pattern(ALL, {PROCS[0]: 0})
        b = BroadcastMulticast(paper_figure1_topology(), pattern)
        b.tick()
        with pytest.raises(SimulationError):
            b.multicast(PROCS[0], "g1")


class TestSkeenBaseline:
    def test_failure_free_correctness(self):
        s = SkeenMulticast(paper_figure1_topology(), failure_free(ALL))
        for sender, group in ((PROCS[0], "g1"), (PROCS[1], "g2"), (PROCS[0], "g3")):
            s.multicast(sender, group)
        s.run()
        assert check_integrity(s.record) == []
        assert check_ordering(s.record) == []
        assert check_termination(s.record) == []
        assert check_minimality(s.record) == []

    def test_blocks_when_a_destination_member_crashes(self):
        """The gap that motivates the paper: no fault tolerance."""
        pattern = crash_pattern(ALL, {PROCS[1]: 1})
        s = SkeenMulticast(paper_figure1_topology(), pattern)
        m = s.multicast(PROCS[0], "g1")
        s.run()
        assert m in s.blocked_messages()

    def test_same_group_messages_delivered_in_one_order(self):
        s = SkeenMulticast(paper_figure1_topology(), failure_free(ALL))
        a = s.multicast(PROCS[0], "g1")
        b = s.multicast(PROCS[1], "g1")
        s.run()
        assert s.delivered_at(PROCS[0]) == s.delivered_at(PROCS[1])
        assert set(s.delivered_at(PROCS[0])) == {a, b}


class TestPartitionedBaseline:
    def topo(self):
        return disjoint_topology(2, group_size=2), make_processes(4)

    def test_partitions_must_be_disjoint(self):
        topo, procs = self.topo()
        with pytest.raises(TopologyError):
            PartitionedMulticast(
                topo,
                failure_free(pset(procs)),
                [by_indices(1, 2), by_indices(2, 3)],
            )

    def test_groups_must_be_unions_of_partitions(self):
        topo, procs = self.topo()
        with pytest.raises(TopologyError):
            PartitionedMulticast(
                topo,
                failure_free(pset(procs)),
                [by_indices(1), by_indices(3, 4)],
            )

    def test_failure_free_correctness(self):
        topo, procs = self.topo()
        pm = PartitionedMulticast(
            topo,
            failure_free(pset(procs)),
            [by_indices(1, 2), by_indices(3, 4)],
        )
        pm.multicast(procs[0], "g1")
        pm.multicast(procs[2], "g2")
        pm.run()
        assert check_ordering(pm.record) == []
        assert check_termination(pm.record) == []
        assert check_minimality(pm.record) == []

    def test_partial_partition_crash_is_tolerated(self):
        """The 'logically correct entity' survives member crashes."""
        topo, procs = self.topo()
        pattern = crash_pattern(pset(procs), {procs[0]: 2})
        pm = PartitionedMulticast(
            topo, pattern, [by_indices(1, 2), by_indices(3, 4)]
        )
        m = pm.multicast(procs[1], "g1")
        pm.run()
        assert procs[1] in pm.record.delivered_by(m)

    def test_whole_partition_crash_blocks(self):
        """...but a whole-partition failure blocks, unlike Algorithm 1."""
        topo, procs = self.topo()
        pattern = crash_pattern(pset(procs), {procs[0]: 1, procs[1]: 1})
        pm = PartitionedMulticast(
            topo, pattern, [by_indices(1, 2), by_indices(3, 4)]
        )
        # A g2 message is fine; a g1 message issued pre-crash blocks.
        m1 = pm.multicast(procs[0], "g1")
        pm.run()
        assert m1 in pm.blocked_messages()

    def test_overlapping_groups_via_shared_partition(self):
        """Intersecting groups work when the intersection is a partition
        — the decomposition the prior protocols assume (§7)."""
        from repro.groups import topology_from_indices

        topo = topology_from_indices(
            4, {"g": [1, 2, 3], "h": [2, 3, 4]}
        )
        procs = make_processes(4)
        pm = PartitionedMulticast(
            topo,
            failure_free(pset(procs)),
            [by_indices(1), by_indices(2, 3), by_indices(4)],
        )
        mg = pm.multicast(procs[0], "g")
        mh = pm.multicast(procs[3], "h")
        pm.run()
        assert check_ordering(pm.record) == []
        assert check_termination(pm.record) == []
