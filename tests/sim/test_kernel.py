"""Tests for the step-level simulation kernel (Appendix A semantics)."""

import pytest

from repro.model import (
    SimulationError,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.sim import Automaton, Kernel

PROCS = make_processes(3)
ALL = pset(PROCS)


class Echo(Automaton):
    """Replies PONG to every PING; counts everything it sees."""

    def __init__(self):
        self.seen = []
        self.started = False

    def on_start(self, ctx):
        self.started = True

    def on_step(self, ctx, datagram):
        if datagram is None:
            return
        self.seen.append(datagram.tag)
        if datagram.tag == "PING":
            ctx.send(datagram.src, "PONG")
        ctx.output(datagram.tag)


class Chatter(Automaton):
    """Broadcasts PING once, then idles."""

    def __init__(self, peers):
        self.peers = peers
        self.sent = False

    def on_step(self, ctx, datagram):
        if not self.sent:
            self.sent = True
            ctx.broadcast(self.peers, "PING")


def build(pattern=None, seed=0):
    pattern = pattern or failure_free(ALL)
    automata = {
        PROCS[0]: Chatter([PROCS[1], PROCS[2]]),
        PROCS[1]: Echo(),
        PROCS[2]: Echo(),
    }
    return automata, Kernel(pattern, automata, seed=seed)


class TestStepSemantics:
    def test_on_start_called_once(self):
        automata, kernel = build()
        kernel.round()
        kernel.round()
        assert automata[PROCS[1]].started

    def test_messages_flow_and_replies_return(self):
        automata, kernel = build()
        kernel.run(6)
        assert automata[PROCS[1]].seen == ["PING"]
        assert automata[PROCS[2]].seen == ["PING"]
        # The chatter got both PONGs (consumed silently).
        assert kernel.buffer.in_transit() == 0

    def test_outputs_are_recorded_with_time(self):
        automata, kernel = build()
        kernel.run(6)
        assert kernel.outputs_of(PROCS[1]) == ("PING",)

    def test_crashed_process_takes_no_step(self):
        pattern = crash_pattern(ALL, {PROCS[1]: 1})
        automata, kernel = build(pattern)
        kernel.run(6)
        assert kernel.steps_taken[PROCS[1]] == 0
        with pytest.raises(SimulationError):
            kernel.step_process(PROCS[1])

    def test_pending_messages_of_crashed_processes_are_dropped(self):
        pattern = crash_pattern(ALL, {PROCS[1]: 1})
        automata, kernel = build(pattern)
        kernel.run(6)
        # The PING addressed to the dead p2 was dropped, not delivered.
        assert automata[PROCS[1]].seen == []

    def test_participation_restricts_stepping(self):
        automata, kernel = build()
        kernel.run(4, participation=pset({PROCS[0]}))
        assert kernel.steps_taken[PROCS[0]] == 4
        assert kernel.steps_taken[PROCS[1]] == 0

    def test_round_fairness_schedules_every_alive_process(self):
        automata, kernel = build()
        stepped = kernel.round()
        assert stepped == 3

    def test_stop_when_predicate_halts_early(self):
        automata, kernel = build()
        rounds = kernel.run(
            100, stop_when=lambda: bool(automata[PROCS[1]].seen)
        )
        assert rounds < 100

    def test_total_messages_counter(self):
        automata, kernel = build()
        kernel.run(6)
        assert kernel.total_messages() == 4  # 2 PINGs + 2 PONGs

    def test_same_seed_is_deterministic(self):
        def trace(seed):
            automata, kernel = build(seed=seed)
            kernel.run(6)
            return kernel.outputs

        assert str(trace(9)) == str(trace(9))


class QuietEcho(Echo):
    """An Echo that declares itself purely message-driven."""

    def idle(self):
        return True


class QuietChatter(Chatter):
    def idle(self):
        return self.sent


def build_quiet(event_driven, seed=0):
    automata = {
        PROCS[0]: QuietChatter([PROCS[1], PROCS[2]]),
        PROCS[1]: QuietEcho(),
        PROCS[2]: QuietEcho(),
    }
    kernel = Kernel(
        failure_free(ALL), automata, seed=seed, event_driven=event_driven
    )
    return automata, kernel


class TestEventDrivenKernel:
    def test_idle_skip_preserves_outputs(self):
        scan_automata, scan = build_quiet(event_driven=False, seed=9)
        scan.run(6)
        event_automata, event = build_quiet(event_driven=True, seed=9)
        event.run(6)
        assert str(scan.outputs) == str(event.outputs)
        assert scan.total_messages() == event.total_messages()

    def test_idle_skip_saves_steps(self):
        _, event = build_quiet(event_driven=True, seed=9)
        event.run(6)
        summary = event.tracer.summary()
        assert summary["skipped"] > 0
        assert summary["scanned"] < summary["eligible"]
        # Once the chatter has sent and the echoes drained their
        # inboxes, whole rounds go by without a single step.
        assert sum(event.steps_taken.values()) < 3 * 6

    def test_default_automaton_is_never_skipped(self):
        automata, kernel = build(seed=9)
        kernel.event_driven = True
        kernel.run(6)
        # Echo/Chatter keep the conservative idle() == False default.
        assert all(count == 6 for count in kernel.steps_taken.values())

    def test_unstarted_process_is_always_stepped(self):
        _, event = build_quiet(event_driven=True, seed=9)
        event.round()
        # Every process took its start step despite reporting idle.
        assert all(count == 1 for count in event.steps_taken.values())
