"""Tests for the shared log object (§4.3), incl. the paper's base claims."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import SpecificationError
from repro.objects import Log


class TestAppend:
    def test_slots_start_at_one(self):
        log = Log()
        assert log.append("a") == 1
        assert log.append("b") == 2

    def test_append_is_idempotent(self):
        log = Log()
        log.append("a")
        assert log.append("a") == 1
        assert log.append("b") == 2

    def test_pos_of_absent_datum_is_zero(self):
        log = Log()
        assert log.pos("ghost") == 0


class TestBumpAndLock:
    def test_bump_moves_to_max_of_current_and_target(self):
        log = Log()
        log.append("a")  # slot 1
        assert log.bump_and_lock("a", 5) == 5
        assert log.pos("a") == 5

    def test_bump_never_moves_backwards(self):
        log = Log()
        log.append("a")
        log.append("b")  # slot 2
        assert log.bump_and_lock("b", 1) == 2

    def test_locked_datum_cannot_be_bumped_again(self):
        """Claim 5: once locked at position k the datum stays at k."""
        log = Log()
        log.append("a")
        log.bump_and_lock("a", 3)
        assert log.bump_and_lock("a", 9) == 3
        assert log.pos("a") == 3

    def test_lock_is_permanent(self):
        """Claim 4: G(locked(d) => G locked(d))."""
        log = Log()
        log.append("a")
        log.bump_and_lock("a", 1)
        assert log.locked("a")

    def test_bump_absent_datum_raises(self):
        log = Log()
        with pytest.raises(SpecificationError):
            log.bump_and_lock("ghost", 2)

    def test_head_advances_past_bumped_slots(self):
        log = Log()
        log.append("a")
        log.bump_and_lock("a", 7)
        assert log.append("b") == 8

    def test_two_items_may_share_a_slot(self):
        log = Log()
        log.append("a")
        log.append("b")
        log.bump_and_lock("b", 0)  # stays at 2
        log.bump_and_lock("a", 2)  # moves to 2: shared slot
        assert log.pos("a") == log.pos("b") == 2


class TestOrdering:
    def test_slot_order(self):
        log = Log()
        log.append("a")
        log.append("b")
        assert log.precedes("a", "b")
        assert not log.precedes("b", "a")

    def test_tie_break_by_item_order(self):
        log = Log()
        log.append("b")
        log.append("a")
        log.bump_and_lock("a", 1)  # join slot 1... a was at 2, max(1,2)=2
        # a stays at 2: different slots, order by slot.
        assert log.precedes("b", "a")
        # Force a genuine tie instead:
        log2 = Log()
        log2.append("b")  # slot 1
        log2.append("a")  # slot 2
        log2.bump_and_lock("b", 2)  # b joins slot 2
        assert log2.pos("a") == log2.pos("b") == 2
        assert log2.precedes("a", "b")  # tie broken by "a" < "b"

    def test_absent_items_are_incomparable(self):
        log = Log()
        log.append("a")
        assert not log.precedes("a", "ghost")
        assert not log.precedes("ghost", "a")

    def test_membership_is_stable(self):
        """Claim 2: G(d in L => G(d in L))."""
        log = Log()
        log.append("a")
        log.bump_and_lock("a", 10)
        assert "a" in log

    def test_position_only_grows(self):
        """Claim 3: G(pos(d)=k => G(pos(d)>=k))."""
        log = Log()
        log.append("a")
        before = log.pos("a")
        log.bump_and_lock("a", 4)
        assert log.pos("a") >= before

    def test_locked_order_is_stable(self):
        """Claim 6: locking freezes precedence with later items."""
        log = Log()
        log.append("a")
        log.bump_and_lock("a", 1)
        log.append("b")
        assert log.precedes("a", "b")
        log.bump_and_lock("b", 99)
        assert log.precedes("a", "b")

    def test_items_appended_after_a_lock_follow_it(self):
        """Claim 7: if d' is locked and d joins later, d' <_L d."""
        log = Log()
        log.append("x")
        log.bump_and_lock("x", 5)
        log.append("y")  # head is 6
        assert log.precedes("x", "y")


class TestHeterogeneousItems:
    def test_messages_and_records_are_separated(self):
        log = Log()
        log.append("m1")
        log.append(("m1", "g2", 1))
        log.append("m2")
        log.append(("m1", "g2"))
        assert log.messages() == ("m1", "m2")
        assert log.position_records_for("m1") == (("m1", "g2", 1),)
        assert log.stabilization_records_for("m1") == (("m1", "g2"),)
        assert log.records() == (("m1", "g2", 1), ("m1", "g2"))

    def test_messages_before_filters_records(self):
        log = Log()
        log.append("m1")
        log.append(("m1", "g", 1))
        log.append("m2")
        assert log.messages_before("m2") == ("m1",)
        assert log.messages_before("m1") == ()


class TestPropertyBased:
    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["append", "bump"]),
                st.integers(min_value=0, max_value=8),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=40,
        )
    )
    def test_log_invariants_hold_under_random_ops(self, ops):
        """Positions grow, locks are permanent, locked items never move."""
        log = Log()
        positions = {}
        locked_at = {}
        for op, item, k in ops:
            name = f"d{item}"
            if op == "append":
                log.append(name)
            elif name in log:
                log.bump_and_lock(name, k)
            if name in log:
                new_pos = log.pos(name)
                assert new_pos >= positions.get(name, 0)
                positions[name] = new_pos
                if log.locked(name):
                    if name in locked_at:
                        assert new_pos == locked_at[name]
                    locked_at[name] = new_pos

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=6), max_size=25))
    def test_append_order_matches_precedes(self, items):
        log = Log()
        order = []
        for item in items:
            name = f"d{item}"
            if name not in log:
                log.append(name)
                order.append(name)
        for earlier, later in zip(order, order[1:]):
            assert log.precedes(earlier, later)
