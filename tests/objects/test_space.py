"""Tests for the object space: sharing, carriers and step accounting."""

import pytest

from repro.groups import paper_figure1_topology
from repro.model import SpecificationError, make_processes
from repro.objects import ObjectSpace

PROCS = make_processes(5)
P1, P2, P3, P4, P5 = PROCS


class Ledger:
    """Collects charges for assertions."""

    def __init__(self):
        self.charges = []

    def __call__(self, process, reason):
        self.charges.append((process, reason))

    def charged(self):
        return {p for p, _ in self.charges}


@pytest.fixture()
def fig1():
    return paper_figure1_topology()


def test_group_logs_are_shared_by_key(fig1):
    space = ObjectSpace()
    g1 = fig1.group("g1")
    assert space.group_log(g1) is space.group_log(g1)


def test_intersection_log_same_for_both_orders(fig1):
    space = ObjectSpace()
    g1, g3 = fig1.group("g1"), fig1.group("g3")
    assert space.intersection_log(g1, g3) is space.intersection_log(g3, g1)


def test_intersection_log_of_group_with_itself_is_group_log(fig1):
    space = ObjectSpace()
    g1 = fig1.group("g1")
    assert space.intersection_log(g1, g1) is space.group_log(g1)


def test_disjoint_intersection_log_rejected(fig1):
    space = ObjectSpace()
    with pytest.raises(SpecificationError):
        space.intersection_log(fig1.group("g2"), fig1.group("g4"))


def test_group_log_charges_group_members(fig1):
    ledger = Ledger()
    space = ObjectSpace(ledger)
    g1 = fig1.group("g1")
    space.group_log(g1).append(P1, "m")
    assert ledger.charged() == {P1, P2}


def test_fast_path_charges_only_intersection(fig1):
    ledger = Ledger()
    space = ObjectSpace(ledger)
    g1, g3 = fig1.group("g1"), fig1.group("g3")
    log = space.intersection_log(g1, g3)
    log.append(P1, "m")
    # g1 n g3 = {p1}: only p1 charged on the fast path.
    assert ledger.charged() == {P1}
    assert log.fast_ops == 1 and log.slow_ops == 0


def test_same_order_by_both_processes_stays_fast(fig1):
    ledger = Ledger()
    space = ObjectSpace(ledger)
    g3, g4 = fig1.group("g3"), fig1.group("g4")  # intersection {p1, p4}
    log = space.intersection_log(g3, g4)
    log.append(P1, "a")
    log.append(P1, "b")
    log.append(P4, "a")
    log.append(P4, "b")
    assert log.fast_ops == 4 and log.slow_ops == 0
    assert ledger.charged() == {P1, P4}


def test_out_of_order_ops_fall_back_to_host_group(fig1):
    ledger = Ledger()
    space = ObjectSpace(ledger)
    g3, g4 = fig1.group("g3"), fig1.group("g4")
    log = space.intersection_log(g3, g4)
    log.append(P1, "a")
    log.append(P1, "b")
    log.append(P4, "b")  # contention: P4 sees "b" first
    assert log.slow_ops == 1
    # The slow path charges the host group (smaller name: g3 = {p1,p3,p4}).
    assert ledger.charged() >= set(fig1.group("g3").members)


def test_consensus_objects_keyed_by_message_and_family(fig1):
    space = ObjectSpace()
    g1 = fig1.group("g1")
    a = space.consensus("m1", "famA", g1)
    b = space.consensus("m1", "famA", g1)
    c = space.consensus("m1", "famB", g1)
    assert a is b
    assert a is not c
    assert space.consensus_objects_used() == 2


def test_consensus_propose_charges_host_group(fig1):
    ledger = Ledger()
    space = ObjectSpace(ledger)
    g3 = fig1.group("g3")
    handle = space.consensus("m", "f", g3)
    assert handle.propose(P1, 7) == 7
    assert ledger.charged() == set(g3.members)
    assert handle.decided


def test_set_charge_rebinds_existing_handles(fig1):
    space = ObjectSpace()
    g1 = fig1.group("g1")
    log = space.group_log(g1)
    ledger = Ledger()
    space.set_charge(ledger)
    log.append(P1, "m")
    assert ledger.charged() == {P1, P2}


def test_stats_reporting(fig1):
    space = ObjectSpace()
    g1, g3 = fig1.group("g1"), fig1.group("g3")
    log = space.intersection_log(g1, g3)
    log.append(P1, "x")
    stats = space.intersection_log_stats()
    assert stats[log.name] == (1, 0)
