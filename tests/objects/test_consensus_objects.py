"""Tests for consensus and adopt-commit sequential objects."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import SpecificationError
from repro.objects import AdoptCommitObject, ConsensusObject


class TestConsensusObject:
    def test_first_proposal_wins(self):
        cons = ConsensusObject()
        assert cons.propose(41) == 41
        assert cons.propose(7) == 41
        assert cons.decision == 41

    def test_agreement_across_many_proposals(self):
        cons = ConsensusObject()
        outcomes = {cons.propose(v) for v in range(10)}
        assert outcomes == {0}

    def test_decision_before_any_proposal_raises(self):
        cons = ConsensusObject()
        assert not cons.decided
        with pytest.raises(SpecificationError):
            _ = cons.decision

    def test_proposal_count(self):
        cons = ConsensusObject()
        cons.propose(1)
        cons.propose(2)
        assert cons.proposal_count == 2

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(), min_size=1, max_size=20))
    def test_validity_and_agreement(self, values):
        cons = ConsensusObject()
        decisions = [cons.propose(v) for v in values]
        assert len(set(decisions)) == 1
        assert decisions[0] in values


class TestAdoptCommit:
    def test_solo_proposal_commits(self):
        ac = AdoptCommitObject()
        outcome = ac.propose("x")
        assert outcome.committed
        assert outcome.value == "x"

    def test_unanimous_proposals_all_commit(self):
        ac = AdoptCommitObject()
        outcomes = [ac.propose("x") for _ in range(4)]
        assert all(o.committed for o in outcomes)

    def test_conflicting_value_adopts_first(self):
        ac = AdoptCommitObject()
        ac.propose("x")
        outcome = ac.propose("y")
        assert not outcome.committed
        assert outcome.value == "x"

    def test_commit_implies_every_outcome_carries_the_value(self):
        """The adopt-commit safety contract."""
        ac = AdoptCommitObject()
        first = ac.propose("v")
        later = [ac.propose(w) for w in ("v", "w", "v")]
        assert first.committed
        for outcome in later:
            assert outcome.value == "v"

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=15))
    def test_all_outcomes_carry_the_first_value(self, values):
        ac = AdoptCommitObject()
        outcomes = [ac.propose(v) for v in values]
        assert all(o.value == values[0] for o in outcomes)
        if len(set(values)) == 1:
            assert all(o.committed for o in outcomes)
