"""Tests for failure patterns and environments (Appendix A)."""

import pytest
from hypothesis import given, strategies as st

from repro.model import (
    Environment,
    FailurePattern,
    ModelError,
    all_patterns_environment,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(4)
ALL = pset(PROCS)
P1, P2, P3, P4 = PROCS


class TestFailurePattern:
    def test_failure_free_has_no_faulty_process(self):
        pattern = failure_free(ALL)
        assert pattern.faulty == frozenset()
        assert pattern.correct == ALL
        assert pattern.at(100) == frozenset()

    def test_crashes_are_monotone(self):
        pattern = crash_pattern(ALL, {P2: 5, P3: 10})
        assert pattern.at(0) == frozenset()
        assert pattern.at(5) == {P2}
        assert pattern.at(9) == {P2}
        assert pattern.at(10) == {P2, P3}
        assert pattern.at(10**6) == {P2, P3}

    def test_faulty_and_correct_partition_the_system(self):
        pattern = crash_pattern(ALL, {P1: 0})
        assert pattern.faulty == {P1}
        assert pattern.correct == {P2, P3, P4}
        assert pattern.faulty | pattern.correct == ALL

    def test_is_alive_respects_crash_time(self):
        pattern = crash_pattern(ALL, {P2: 7})
        assert pattern.is_alive(P2, 6)
        assert not pattern.is_alive(P2, 7)
        assert pattern.is_alive(P1, 10**9)

    def test_set_faultiness_of_group_intersection(self):
        pattern = crash_pattern(ALL, {P1: 3, P2: 8})
        group = by_indices(1, 2)
        assert not pattern.set_faulty_at(group, 7)
        assert pattern.set_faulty_at(group, 8)
        assert pattern.crash_time_of_set(group) == 8
        assert pattern.crash_time_of_set(by_indices(1, 3)) is None

    def test_empty_set_is_vacuously_faulty(self):
        pattern = failure_free(ALL)
        assert pattern.set_faulty_at(frozenset(), 0)
        assert pattern.crash_time_of_set(frozenset()) == 0

    def test_restriction_drops_outside_processes(self):
        pattern = crash_pattern(ALL, {P1: 1, P3: 2})
        sub = pattern.restricted_to(by_indices(1, 2))
        assert sub.processes == by_indices(1, 2)
        assert sub.faulty == {P1}

    def test_with_crash_keeps_earliest_time(self):
        pattern = crash_pattern(ALL, {P1: 10})
        earlier = pattern.with_crash(P1, 4)
        assert earlier.crash_times[P1] == 4
        later = pattern.with_crash(P1, 20)
        assert later.crash_times[P1] == 10

    def test_with_crash_unknown_process_is_rejected(self):
        pattern = failure_free(by_indices(1, 2))
        with pytest.raises(ModelError):
            pattern.with_crash(P4, 0)

    def test_crash_time_for_unknown_process_is_rejected(self):
        with pytest.raises(ModelError):
            FailurePattern(by_indices(1, 2), {P4: 0})

    def test_negative_crash_time_is_rejected(self):
        with pytest.raises(ModelError):
            FailurePattern(ALL, {P1: -1})

    @given(
        st.dictionaries(
            st.sampled_from(PROCS), st.integers(min_value=0, max_value=50),
            max_size=4,
        ),
        st.integers(min_value=0, max_value=60),
    )
    def test_property_at_is_monotone(self, crashes, t):
        pattern = crash_pattern(ALL, crashes)
        assert pattern.at(t) <= pattern.at(t + 1)
        assert pattern.at(t) <= pattern.faulty


class TestEnvironment:
    def test_all_patterns_environment_accepts_everything(self):
        env = all_patterns_environment(ALL)
        assert env.contains(failure_free(ALL))
        assert env.contains(crash_pattern(ALL, {p: 0 for p in PROCS}))

    def test_max_failures_bound_is_enforced(self):
        env = Environment(ALL, max_failures=1)
        assert env.contains(crash_pattern(ALL, {P1: 0}))
        assert not env.contains(crash_pattern(ALL, {P1: 0, P2: 0}))

    def test_reliable_processes_never_fail(self):
        env = Environment(ALL, max_failures=4, reliable=by_indices(2))
        assert not env.contains(crash_pattern(ALL, {P2: 0}))
        assert env.contains(crash_pattern(ALL, {P1: 0}))

    def test_failure_prone_respects_reliability_and_bound(self):
        env = Environment(ALL, max_failures=2, reliable=by_indices(4))
        assert env.failure_prone(by_indices(1, 2))
        assert not env.failure_prone(by_indices(1, 2, 3))
        assert not env.failure_prone(by_indices(1, 4))

    def test_pattern_enumeration_starts_failure_free(self):
        env = Environment(ALL, max_failures=1)
        patterns = list(env.patterns())
        assert patterns[0].faulty == frozenset()
        faulty_sets = {p.faulty for p in patterns[1:]}
        assert faulty_sets == {frozenset({p}) for p in PROCS}

    def test_pattern_enumeration_with_explicit_subsets(self):
        env = all_patterns_environment(ALL)
        subsets = [by_indices(1, 2)]
        patterns = list(env.patterns(crash_time=3, subsets=subsets))
        assert len(patterns) == 2
        assert patterns[1].faulty == by_indices(1, 2)
        assert patterns[1].crash_times[P1] == 3


class TestStaggeredPatterns:
    def test_starts_failure_free(self):
        env = Environment(ALL, max_failures=2)
        patterns = list(env.staggered_patterns())
        assert patterns[0].faulty == frozenset()

    def test_members_crash_gap_rounds_apart_in_process_order(self):
        env = all_patterns_environment(ALL)
        patterns = list(
            env.staggered_patterns(
                start=4, gap=3, subsets=[by_indices(1, 2, 3)]
            )
        )
        assert len(patterns) == 2
        staggered = patterns[1]
        assert staggered.crash_times[P1] == 4
        assert staggered.crash_times[P2] == 7
        assert staggered.crash_times[P3] == 10

    def test_zero_gap_degenerates_to_simultaneous(self):
        env = all_patterns_environment(ALL)
        subsets = [by_indices(1, 2)]
        staggered = list(env.staggered_patterns(start=5, gap=0, subsets=subsets))
        simultaneous = list(env.patterns(crash_time=5, subsets=subsets))
        assert staggered == simultaneous

    def test_same_faulty_sets_as_simultaneous_enumeration(self):
        env = Environment(ALL, max_failures=2, reliable=by_indices(4))
        staggered = {p.faulty for p in env.staggered_patterns()}
        simultaneous = {p.faulty for p in env.patterns()}
        assert staggered == simultaneous

    def test_out_of_environment_subsets_are_skipped(self):
        env = Environment(ALL, max_failures=1)
        patterns = list(
            env.staggered_patterns(subsets=[by_indices(1, 2), by_indices(3)])
        )
        assert [p.faulty for p in patterns[1:]] == [by_indices(3)]

    def test_patterns_stay_monotone(self):
        env = all_patterns_environment(ALL)
        for pattern in env.staggered_patterns(start=2, gap=2):
            for t in range(12):
                assert pattern.at(t) <= pattern.at(t + 1)

    def test_negative_parameters_are_rejected(self):
        env = all_patterns_environment(ALL)
        with pytest.raises(ModelError):
            list(env.staggered_patterns(start=-1))
        with pytest.raises(ModelError):
            list(env.staggered_patterns(gap=-1))
