"""Tests for process identifiers."""

import pytest

from repro.model import ProcessId, by_indices, make_processes


def test_make_processes_names_follow_paper_convention():
    procs = make_processes(3)
    assert [p.name for p in procs] == ["p1", "p2", "p3"]


def test_processes_are_totally_ordered():
    procs = make_processes(5)
    assert sorted([procs[3], procs[0], procs[2]]) == [procs[0], procs[2], procs[3]]


def test_process_index_must_be_positive():
    with pytest.raises(ValueError):
        ProcessId(0)
    with pytest.raises(ValueError):
        ProcessId(-2)


def test_make_processes_rejects_empty_system():
    with pytest.raises(ValueError):
        make_processes(0)


def test_by_indices_builds_sets():
    assert by_indices(1, 3) == frozenset({ProcessId(1), ProcessId(3)})


def test_process_identity_is_value_based():
    assert ProcessId(2) == ProcessId(2)
    assert hash(ProcessId(2)) == hash(ProcessId(2))
    assert ProcessId(2) != ProcessId(3)
