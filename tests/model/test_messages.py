"""Tests for multicast messages, datagrams and the message buffer."""

import pytest

from repro.model import (
    MessageBuffer,
    MessageFactory,
    ModelError,
    MulticastMessage,
    MessageId,
    by_indices,
    make_processes,
)

P1, P2, P3 = make_processes(3)


class TestMulticastMessage:
    def test_factory_mints_unique_ids(self):
        factory = MessageFactory()
        m1 = factory.multicast(P1, by_indices(1, 2))
        m2 = factory.multicast(P1, by_indices(1, 2))
        m3 = factory.multicast(P2, by_indices(2, 3))
        assert len({m1.mid, m2.mid, m3.mid}) == 3

    def test_closed_dissemination_model_enforced(self):
        factory = MessageFactory()
        with pytest.raises(ModelError):
            factory.multicast(P1, by_indices(2, 3))

    def test_message_id_provides_a_priori_total_order(self):
        factory = MessageFactory()
        m1 = factory.multicast(P1, by_indices(1, 2))
        m2 = factory.multicast(P2, by_indices(2, 3))
        assert (m1 < m2) != (m2 < m1)

    def test_message_id_must_match_sender(self):
        with pytest.raises(ModelError):
            MulticastMessage(
                mid=MessageId(sender_index=2, sequence=1),
                src=P1,
                dst=by_indices(1, 2),
            )

    def test_payload_is_carried(self):
        factory = MessageFactory()
        m = factory.multicast(P1, by_indices(1), payload={"op": "put"})
        assert m.payload == {"op": "put"}


class TestMessageBuffer:
    def test_send_then_receive_fifo(self):
        buff = MessageBuffer()
        buff.send(P1, P2, "A", (1,))
        buff.send(P1, P2, "B", (2,))
        first = buff.receive(P2)
        second = buff.receive(P2)
        assert (first.tag, second.tag) == ("A", "B")

    def test_receive_returns_null_when_empty(self):
        buff = MessageBuffer()
        assert buff.receive(P1) is None

    def test_broadcast_reaches_every_destination(self):
        buff = MessageBuffer()
        buff.broadcast(P1, [P2, P3], "HELLO")
        assert buff.receive(P2).tag == "HELLO"
        assert buff.receive(P3).tag == "HELLO"

    def test_pending_snapshot_does_not_consume(self):
        buff = MessageBuffer()
        buff.send(P1, P2, "X")
        assert len(buff.pending_for(P2)) == 1
        assert len(buff.pending_for(P2)) == 1
        assert buff.has_pending(P2)

    def test_receive_specific_removes_chosen_datagram(self):
        buff = MessageBuffer()
        buff.send(P1, P2, "A")
        wanted = buff.send(P1, P2, "B")
        got = buff.receive_specific(P2, wanted)
        assert got.tag == "B"
        assert buff.receive(P2).tag == "A"

    def test_receive_specific_rejects_absent_datagram(self):
        buff = MessageBuffer()
        ghost = buff.send(P1, P2, "A")
        buff.receive(P2)
        with pytest.raises(ModelError):
            buff.receive_specific(P2, ghost)

    def test_drop_all_for_crashed_process(self):
        buff = MessageBuffer()
        buff.send(P1, P2, "A")
        buff.send(P3, P2, "B")
        assert buff.drop_all_for(P2) == 2
        assert buff.receive(P2) is None

    def test_counters_track_traffic(self):
        buff = MessageBuffer()
        buff.send(P1, P2, "A")
        buff.send(P1, P3, "B")
        buff.receive(P2)
        assert buff.sent_count == 2
        assert buff.received_count == 1
        assert buff.in_transit() == 1


class TestDelayedDatagramLifecycle:
    """The delay heap obeys the same crash and accounting rules as
    the visible queues — sequestered traffic is still traffic."""

    @staticmethod
    def delaying_buffer(until=5, amount=3):
        from repro.faults.injector import FaultInjector
        from repro.faults.plan import FaultEvent, plan_of

        injector = FaultInjector(
            plan_of(FaultEvent(kind="link_delay", start=0, until=until, amount=amount)),
            seed=0,
        )
        buff = MessageBuffer(injector)
        buff.release(0)
        return buff

    def test_drop_all_for_purges_sequestered_datagrams(self):
        buff = self.delaying_buffer()
        buff.send(P1, P2, "DEAD")   # sequestered for P2
        buff.send(P1, P3, "ALIVE")  # sequestered for P3
        buff.send(P3, P2, "DEAD2")  # sequestered for P2
        assert buff.delayed_count() == 3
        assert buff.drop_all_for(P2) == 2  # both sequestered P2 datagrams
        assert buff.delayed_count() == 1
        assert buff.delayed_for(P2) == 0
        # P2 never hears from the purged datagrams, P3's still arrives.
        buff.release(10)
        assert buff.receive(P2) is None
        assert buff.receive(P3).tag == "ALIVE"

    def test_drop_all_for_counts_pending_plus_sequestered(self):
        buff = self.delaying_buffer(until=3, amount=2)
        buff.send(P1, P2, "EARLY")  # sequestered, releases at t=2
        buff.release(2)             # ...now visible
        buff.send(P1, P2, "LATE")   # sequestered again (t=2 < until)
        assert buff.has_pending(P2) and buff.delayed_for(P2) == 1
        assert buff.drop_all_for(P2) == 2

    def test_in_transit_counts_the_delay_heap(self):
        buff = self.delaying_buffer()
        buff.send(P1, P2, "A")
        assert not buff.has_pending(P2)
        assert buff.in_transit() == 1  # sequestered != delivered
        buff.release(10)
        assert buff.in_transit() == 1  # now visible, still in transit
        buff.receive(P2)
        assert buff.in_transit() == 0

    def test_heap_order_survives_a_purge(self):
        # Datagrams with distinct release times: purging the middle one
        # must leave a valid heap so release order stays chronological.
        buff = self.delaying_buffer(until=10, amount=1)
        for t, (dst, tag) in enumerate(((P2, "A"), (P3, "X"), (P2, "B"))):
            buff.release(t)
            buff.send(P1, dst, tag)
        buff.drop_all_for(P3)
        buff.release(20)
        assert [d.tag for d in buff.pending_for(P2)] == ["A", "B"]
