"""Tests for run records."""

from repro.model import (
    MessageFactory,
    RunRecord,
    by_indices,
    failure_free,
    make_processes,
    pset,
)

P1, P2, P3 = make_processes(3)
ALL = pset((P1, P2, P3))


def make_record():
    return RunRecord(ALL, failure_free(ALL))


def test_local_order_tracks_delivery_sequence():
    factory = MessageFactory()
    record = make_record()
    m1 = factory.multicast(P1, by_indices(1, 2))
    m2 = factory.multicast(P2, by_indices(1, 2))
    record.note_delivery(3, P1, m1)
    record.note_delivery(5, P1, m2)
    record.note_delivery(4, P2, m2)
    assert record.local_order(P1) == (m1, m2)
    assert record.local_order(P2) == (m2,)
    assert record.local_order(P3) == ()


def test_delivery_and_multicast_times():
    factory = MessageFactory()
    record = make_record()
    m = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(1, P1, m)
    record.note_delivery(7, P2, m)
    record.note_delivery(9, P1, m)
    assert record.multicast_time(m) == 1
    assert record.delivery_time(P2, m) == 7
    assert record.first_delivery_time(m) == 7
    assert record.delivered_by(m) == by_indices(1, 2)


def test_step_accounting():
    record = make_record()
    record.note_step(1, P1)
    record.note_step(2, P1)
    record.note_step(2, P3)
    assert record.steps_of(P1) == 2
    assert record.steps_of(P2) == 0
    assert record.step_counts() == {P1: 2, P3: 1}


def test_delivery_count_detects_duplicates():
    factory = MessageFactory()
    record = make_record()
    m = factory.multicast(P1, by_indices(1))
    record.note_delivery(1, P1, m)
    record.note_delivery(2, P1, m)
    assert record.delivery_count(P1, m) == 2


def test_delivered_and_multicast_message_sets_deduplicate():
    factory = MessageFactory()
    record = make_record()
    m = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(0, P1, m)
    record.note_multicast(0, P1, m)
    record.note_delivery(1, P1, m)
    record.note_delivery(2, P2, m)
    assert record.multicast_messages() == (m,)
    assert record.delivered_messages() == (m,)
