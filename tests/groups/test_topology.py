"""Tests for group topologies, pinned to Figure 1 of the paper."""

import pytest

from repro.groups import (
    Group,
    GroupTopology,
    paper_figure1_topology,
    topology_from_indices,
)
from repro.model import TopologyError, by_indices, make_processes


@pytest.fixture()
def fig1():
    return paper_figure1_topology()


class TestGroup:
    def test_groups_compare_by_membership(self):
        a = Group("a", by_indices(1, 2))
        b = Group("b", by_indices(1, 2))
        assert a == b
        assert hash(a) == hash(b)

    def test_empty_group_rejected(self):
        with pytest.raises(TopologyError):
            Group("bad", [])

    def test_intersection_helpers(self):
        g = Group("g", by_indices(1, 2))
        h = Group("h", by_indices(2, 3))
        k = Group("k", by_indices(4))
        assert g.intersects(h)
        assert g.intersection(h) == by_indices(2)
        assert not g.intersects(k)


class TestTopologyConstruction:
    def test_group_outside_system_rejected(self):
        procs = make_processes(2)
        with pytest.raises(TopologyError):
            GroupTopology(procs, [Group("g", by_indices(1, 3))])

    def test_duplicate_names_rejected(self):
        procs = make_processes(3)
        with pytest.raises(TopologyError):
            GroupTopology(
                procs,
                [Group("g", by_indices(1)), Group("g", by_indices(2))],
            )

    def test_at_least_one_group_required(self):
        with pytest.raises(TopologyError):
            GroupTopology(make_processes(2), [])

    def test_unknown_group_lookup_raises(self):
        topo = topology_from_indices(2, {"g": [1, 2]})
        with pytest.raises(TopologyError):
            topo.group("missing")


class TestFigure1:
    """The worked example of §3: groups, G(p), F, F(g), F(p)."""

    def test_membership(self, fig1):
        assert fig1.group("g1").members == by_indices(1, 2)
        assert fig1.group("g2").members == by_indices(2, 3)
        assert fig1.group("g3").members == by_indices(1, 3, 4)
        assert fig1.group("g4").members == by_indices(1, 4, 5)

    def test_groups_of_process(self, fig1):
        p1 = make_processes(5)[0]
        names = {g.name for g in fig1.groups_of(p1)}
        assert names == {"g1", "g3", "g4"}

    def test_intersecting_pairs(self, fig1):
        pairs = {
            frozenset((g.name, h.name)) for g, h in fig1.intersecting_pairs()
        }
        assert pairs == {
            frozenset({"g1", "g2"}),
            frozenset({"g1", "g3"}),
            frozenset({"g1", "g4"}),
            frozenset({"g2", "g3"}),
            frozenset({"g3", "g4"}),
        }

    def test_cyclic_families_are_exactly_f_fprime_fsecond(self, fig1):
        names = {
            frozenset(g.name for g in fam) for fam in fig1.cyclic_families()
        }
        assert names == {
            frozenset({"g1", "g2", "g3"}),
            frozenset({"g1", "g3", "g4"}),
            frozenset({"g1", "g2", "g3", "g4"}),
        }

    def test_families_of_g2_matches_paper(self, fig1):
        g2 = fig1.group("g2")
        names = {
            frozenset(g.name for g in fam) for fam in fig1.families_of_group(g2)
        }
        assert names == {
            frozenset({"g1", "g2", "g3"}),
            frozenset({"g1", "g2", "g3", "g4"}),
        }

    def test_p1_belongs_to_all_cyclic_families(self, fig1):
        p1 = make_processes(5)[0]
        assert set(fig1.families_of_process(p1)) == set(fig1.cyclic_families())

    def test_p5_belongs_to_no_cyclic_family(self, fig1):
        p5 = make_processes(5)[4]
        assert fig1.families_of_process(p5) == ()

    def test_intersection_graph_of_full_family(self, fig1):
        graph = fig1.intersection_graph()
        g2 = fig1.group("g2")
        g4 = fig1.group("g4")
        assert g4 not in graph[g2]
        assert fig1.group("g1") in graph[g2]

    def test_cyclic_partners_of_g1_for_p1(self, fig1):
        p1 = make_processes(5)[0]
        partners = fig1.cyclic_partners(fig1.group("g1"), p1)
        assert {g.name for g in partners} == {"g2", "g3", "g4"}


class TestDisjointTopology:
    def test_disjoint_groups_have_no_cyclic_family(self):
        topo = topology_from_indices(
            6, {"a": [1, 2], "b": [3, 4], "c": [5, 6]}
        )
        assert topo.cyclic_families() == ()
        assert topo.intersecting_pairs() == ()

    def test_chain_topology_is_acyclic(self):
        # a - b - c in a line: intersecting but hamiltonian-free.
        topo = topology_from_indices(
            5, {"a": [1, 2], "b": [2, 3], "c": [3, 4]}
        )
        assert topo.cyclic_families() == ()
        assert len(topo.intersecting_pairs()) == 2
