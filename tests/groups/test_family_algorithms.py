"""The certificate/output-sensitive cycle algorithms vs brute force.

``has_hamiltonian_cycle`` and ``cycle_vertex_sets`` replaced the
exponential subset sweep so 200-group topologies construct; this module
pins their correctness against tiny, obviously-correct references —
permutation search for hamiltonicity, an induced-subgraph sweep for
cycle vertex sets — across every labelled graph shape up to 6 vertices
that a seeded sample can reach, plus the structured shapes (cycles,
paths, cliques, stars) whose certificates short-circuit the search.

The graph functions are vertex-generic (any sortable hashable vertex
works); plain ints keep the references readable.
"""

from itertools import combinations, permutations
import random

import pytest

from repro.groups.families import cycle_vertex_sets, has_hamiltonian_cycle
from repro.model.errors import TopologyError


def _adjacency(n, edges):
    adjacency = {v: set() for v in range(n)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return adjacency


def _brute_hamiltonian(adjacency):
    vertices = sorted(adjacency)
    if len(vertices) < 3:
        return False
    first, rest = vertices[0], vertices[1:]
    for order in permutations(rest):
        cycle = (first,) + order
        if all(
            cycle[(i + 1) % len(cycle)] in adjacency[cycle[i]]
            for i in range(len(cycle))
        ):
            return True
    return False


def _brute_cycle_sets(adjacency):
    # A vertex set is a cycle's iff its induced subgraph is hamiltonian.
    found = set()
    for size in range(3, len(adjacency) + 1):
        for subset in combinations(sorted(adjacency), size):
            induced = {
                v: adjacency[v] & set(subset) for v in subset
            }
            if _brute_hamiltonian(induced):
                found.add(frozenset(subset))
    return found


def _random_graphs():
    rng = random.Random(2022)
    graphs = []
    for n in range(3, 7):
        all_edges = list(combinations(range(n), 2))
        for _ in range(12):
            count = rng.randint(0, len(all_edges))
            graphs.append(_adjacency(n, rng.sample(all_edges, count)))
    return graphs


class TestAgainstBruteForce:
    @pytest.mark.parametrize("adjacency", _random_graphs())
    def test_hamiltonicity_matches_permutation_search(self, adjacency):
        assert has_hamiltonian_cycle(adjacency) == _brute_hamiltonian(adjacency)

    @pytest.mark.parametrize("adjacency", _random_graphs())
    def test_cycle_sets_match_induced_subgraph_sweep(self, adjacency):
        assert cycle_vertex_sets(adjacency) == _brute_cycle_sets(adjacency)


class TestCertificates:
    def test_large_cycle_graph_is_hamiltonian_without_search(self):
        n = 500
        ring = _adjacency(n, [(i, (i + 1) % n) for i in range(n)])
        assert has_hamiltonian_cycle(ring)
        assert cycle_vertex_sets(ring) == {frozenset(range(n))}

    def test_large_path_graph_has_no_cycles(self):
        n = 500
        path = _adjacency(n, [(i, i + 1) for i in range(n - 1)])
        assert not has_hamiltonian_cycle(path)
        assert cycle_vertex_sets(path) == set()

    def test_large_clique_is_hamiltonian_without_search(self):
        n = 60
        clique = _adjacency(n, list(combinations(range(n), 2)))
        assert has_hamiltonian_cycle(clique)

    def test_star_graph_is_not_hamiltonian(self):
        star = _adjacency(6, [(0, i) for i in range(1, 6)])
        assert not has_hamiltonian_cycle(star)
        assert cycle_vertex_sets(star) == set()

    def test_two_disjoint_triangles_are_not_hamiltonian(self):
        graph = _adjacency(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
        assert not has_hamiltonian_cycle(graph)
        assert cycle_vertex_sets(graph) == {
            frozenset({0, 1, 2}),
            frozenset({3, 4, 5}),
        }

    def test_dense_enumeration_respects_the_budget(self):
        clique = _adjacency(30, list(combinations(range(30), 2)))
        with pytest.raises(TopologyError, match="budget|steps"):
            cycle_vertex_sets(clique, budget=10_000)
