"""Tests for cyclic families, closed paths and faultiness (§3, §5.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.groups import (
    cpaths,
    family_eventually_faulty,
    family_fault_time,
    family_faulty_at,
    family_name,
    hamiltonian_cycles,
    is_cyclic_family,
    paper_figure1_topology,
    path_direction,
    path_edges,
    paths_equivalent,
    topology_from_indices,
)
from repro.model import TopologyError, crash_pattern, failure_free, make_processes, pset


@pytest.fixture()
def fig1():
    return paper_figure1_topology()


def family_by_names(topo, *names):
    return frozenset(topo.group(n) for n in names)


class TestHamiltonicity:
    def test_triangle_family_is_cyclic(self, fig1):
        fam = family_by_names(fig1, "g1", "g2", "g3")
        assert is_cyclic_family(fam)
        assert len(hamiltonian_cycles(fam)) == 1

    def test_pair_is_not_cyclic(self, fig1):
        fam = family_by_names(fig1, "g1", "g2")
        assert not is_cyclic_family(fam)
        assert hamiltonian_cycles(fam) == ()

    def test_non_hamiltonian_triple(self, fig1):
        # g2 and g4 do not intersect: {g2, g3, g4} is a path, not a cycle.
        fam = family_by_names(fig1, "g2", "g3", "g4")
        assert not is_cyclic_family(fam)

    def test_full_family_is_cyclic_with_single_cycle(self, fig1):
        fam = family_by_names(fig1, "g1", "g2", "g3", "g4")
        cycles = hamiltonian_cycles(fam)
        # The only hamiltonian cycle is g2-g1-g4-g3 (up to rotation).
        assert len(cycles) == 1

    def test_clique_of_four_has_three_cycles(self):
        # Four groups pairwise intersecting through a hub process.
        topo = topology_from_indices(
            5,
            {"a": [1, 2], "b": [1, 3], "c": [1, 4], "d": [1, 5]},
        )
        fam = frozenset(topo.groups)
        # K4 has 3 undirected hamiltonian cycles.
        assert len(hamiltonian_cycles(fam)) == 3


class TestClosedPaths:
    def test_cpaths_count_is_2k_per_cycle(self, fig1):
        fam = family_by_names(fig1, "g1", "g2", "g3")
        paths = cpaths(fam)
        assert len(paths) == 6  # 3 rotations x 2 directions
        for path in paths:
            assert path[0] == path[-1]
            assert len(path) == 4
            assert frozenset(path[:-1]) == fam

    def test_paper_example_paths_are_equivalent(self, fig1):
        g1, g2, g3 = (fig1.group(n) for n in ("g1", "g2", "g3"))
        pi = (g3, g1, g2, g3)
        pi_prime = (g1, g3, g2, g1)
        assert paths_equivalent(pi, pi_prime)

    def test_equivalent_paths_have_opposite_or_same_direction(self, fig1):
        fam = family_by_names(fig1, "g1", "g2", "g3")
        directions = {}
        for path in cpaths(fam):
            directions.setdefault(path_edges(path), []).append(
                path_direction(path)
            )
        for dirs in directions.values():
            assert sorted(set(dirs)) == [-1, 1]

    def test_direction_is_stable_under_rotation(self, fig1):
        g1, g2, g3 = (fig1.group(n) for n in ("g1", "g2", "g3"))
        # Rotations of the same orientation share a direction.
        a = path_direction((g1, g2, g3, g1))
        b = path_direction((g2, g3, g1, g2))
        c = path_direction((g3, g1, g2, g3))
        assert a == b == c

    def test_direction_of_garbage_path_raises(self, fig1):
        g1, g2, g4 = (fig1.group(n) for n in ("g1", "g2", "g4"))
        with pytest.raises(TopologyError):
            path_direction((g1, g2, g4, g1))


class TestFaultiness:
    def test_family_faulty_when_its_only_cycle_breaks(self, fig1):
        procs = make_processes(5)
        fam = family_by_names(fig1, "g1", "g2", "g3")
        # g1 n g2 = {p2}: crashing p2 breaks the only cycle.
        pattern = crash_pattern(pset(procs), {procs[1]: 4})
        assert not family_faulty_at(fam, pattern, 3)
        assert family_faulty_at(fam, pattern, 4)
        assert family_fault_time(fam, pattern) == 4

    def test_paper_scenario_correct_p1_p4_p5(self, fig1):
        """With Correct = {p1, p4, p5}: f and f'' become faulty, f' stays."""
        procs = make_processes(5)
        pattern = crash_pattern(pset(procs), {procs[1]: 10, procs[2]: 10})
        f = family_by_names(fig1, "g1", "g2", "g3")
        f_prime = family_by_names(fig1, "g1", "g3", "g4")
        f_second = family_by_names(fig1, "g1", "g2", "g3", "g4")
        assert family_eventually_faulty(f, pattern)
        assert family_eventually_faulty(f_second, pattern)
        assert not family_eventually_faulty(f_prime, pattern)

    def test_failure_free_family_never_faulty(self, fig1):
        procs = make_processes(5)
        fam = family_by_names(fig1, "g1", "g3", "g4")
        pattern = failure_free(pset(procs))
        assert not family_eventually_faulty(fam, pattern)
        assert family_fault_time(fam, pattern) is None

    def test_faultiness_needs_every_cycle_broken(self):
        # Two edge-disjoint cycles through a clique: breaking one
        # intersection leaves another hamiltonian cycle alive.
        topo = topology_from_indices(
            7,
            {
                "a": [1, 2, 5],
                "b": [2, 3, 6],
                "c": [3, 4, 7],
                "d": [4, 1, 5, 6, 7],
            },
        )
        fam = frozenset(topo.groups)
        assert is_cyclic_family(fam)
        procs = make_processes(7)
        # Crash p2 (= a n b): the ring cycle a-b-c-d dies, but cycles
        # rerouted through shared processes may survive.
        pattern = crash_pattern(pset(procs), {procs[1]: 0})
        cycles = hamiltonian_cycles(fam)
        if len(cycles) > 1:
            assert not family_faulty_at(fam, pattern, 0)

    def test_faultiness_undefined_for_acyclic_family(self, fig1):
        fam = family_by_names(fig1, "g1", "g2")
        procs = make_processes(5)
        with pytest.raises(TopologyError):
            family_faulty_at(fam, failure_free(pset(procs)), 0)

    def test_family_name_is_deterministic(self, fig1):
        fam = family_by_names(fig1, "g3", "g1", "g2")
        assert family_name(fam) == "{g1,g2,g3}"


class TestPropertyBased:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=3, max_value=6))
    def test_ring_topologies_are_cyclic(self, k):
        """A ring of k groups g_i = {p_i, p_{i+1}} is always one cyclic
        family whose cycle is the ring itself."""
        groups = {
            f"g{i}": [i, (i % k) + 1] for i in range(1, k + 1)
        }
        topo = topology_from_indices(k, groups)
        fams = topo.cyclic_families()
        assert frozenset(topo.groups) in fams
        ring = frozenset(topo.groups)
        assert len(hamiltonian_cycles(ring)) == 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=3, max_value=5), st.integers(min_value=1, max_value=5))
    def test_breaking_any_ring_edge_kills_the_family(self, k, victim):
        victim = ((victim - 1) % k) + 1
        groups = {f"g{i}": [i, (i % k) + 1] for i in range(1, k + 1)}
        topo = topology_from_indices(k, groups)
        ring = frozenset(topo.groups)
        procs = make_processes(k)
        # g_{victim} n g_{victim+1} = {p_{victim+1 mod k}}; crashing any
        # single ring process kills exactly one edge, hence the family.
        pattern = crash_pattern(pset(procs), {procs[victim - 1]: 0})
        assert family_faulty_at(ring, pattern, 0)
