"""The coverage extractor: rows -> fingerprint sets.

The two contracts the corpus depends on:

* **purity** — byte-identical rows produce identical fingerprint sets
  (which is what lets cached campaign rows stand in for live runs);
* **discrimination** — genuinely different execution schedules (event
  dispatch vs full scan, round engine vs the async backend, faulted vs
  clean) produce *different* sets, so novelty means a different shape
  of execution, not a different label.
"""

import copy

from repro.campaign.executor import execute_spec
from repro.explore.coverage import bucket, coverage_of, coverage_stats
from repro.faults.nemesis import random_plan
from repro.groups.topology import paper_figure1_topology
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec

TOPO = TopologySpec.capture(paper_figure1_topology())
SENDS = (Send(1, "g1", 0), Send(3, "g2", 0), Send(4, "g3", 1))


def spec(**overrides):
    base = dict(topology=TOPO, sends=SENDS, seed=5, max_rounds=400)
    base.update(overrides)
    return ScenarioSpec(**base)


class TestBucketing:
    def test_log2_buckets(self):
        assert bucket(0) == 0
        assert bucket(1) == 1
        assert bucket(2) == bucket(3) == 2
        assert bucket(4) == bucket(7) == 3
        assert bucket(1000) == bucket(1023) == 10

    def test_regime_not_total(self):
        # 1000 vs 1024 stalls: same regime; 0 vs 1 vs 100: all distinct.
        assert bucket(1000) == 10 and bucket(1024) == 11
        assert len({bucket(0), bucket(1), bucket(100)}) == 3


class TestPurity:
    def test_identical_rows_identical_fingerprints(self):
        row_a = execute_spec((0, spec()))
        row_b = execute_spec((1, spec()))
        assert coverage_of(row_a) == coverage_of(row_b)

    def test_pure_function_of_the_row(self):
        row = execute_spec((0, spec()))
        assert coverage_of(copy.deepcopy(row)) == coverage_of(row)

    def test_never_raises_on_sparse_rows(self):
        # Rows predating cache schema 2 lack the coverage signals.
        fps = coverage_of({"status": "ok", "backend": "engine"})
        assert "backend:engine" in fps

    def test_failed_rows_fingerprint_the_error_type(self):
        fps = coverage_of(
            {"status": "failed", "error": "ValueError('boom')"}
        )
        assert fps == frozenset({"outcome:failed", "error:ValueError"})


class TestDiscrimination:
    def test_event_vs_scan_schedules_differ(self):
        # The engine's event-driven schedule vs the kernel's full-scan
        # rounds: same workload shape, different wait/scan fingerprints.
        from repro.workloads.topologies import disjoint_topology

        disjoint = TopologySpec.capture(disjoint_topology(2, group_size=3))
        sends = (Send(1, "g1", 0), Send(4, "g2", 0))
        engine = execute_spec(
            (0, spec(topology=disjoint, sends=sends, backend="engine"))
        )
        kernel = execute_spec(
            (0, spec(topology=disjoint, sends=sends, backend="kernel"))
        )
        assert coverage_of(engine) != coverage_of(kernel)

    def test_engine_vs_async_schedules_differ(self):
        engine = execute_spec((0, spec(backend="engine")))
        asynchronous = execute_spec((0, spec(backend="async")))
        fps_engine = coverage_of(engine)
        fps_async = coverage_of(asynchronous)
        assert fps_engine != fps_async
        assert "backend:engine" in fps_engine
        assert "backend:async" in fps_async
        # Beyond the backend tag: the schedules themselves diverge.
        assert {f for f in fps_engine if f.startswith("trace:")} != {
            f for f in fps_async if f.startswith("trace:")
        }

    def test_faulted_run_buys_coverage_over_clean(self):
        clean = coverage_of(execute_spec((0, spec())))
        plan = random_plan(
            3, "full", process_count=TOPO.process_count,
            groups=tuple(name for name, _ in TOPO.groups),
        )
        faulted = coverage_of(execute_spec((0, spec(faults=plan))))
        assert faulted - clean  # injector stats etc. are new fingerprints

    def test_interleaving_signatures_are_fingerprinted(self):
        fps = coverage_of(execute_spec((0, spec())))
        assert any(f.startswith("interleave:") for f in fps)


class TestStats:
    def test_prefix_histogram(self):
        fps = frozenset({"backend:engine", "trace:rounds:b3", "wait:x:b1"})
        assert coverage_stats(fps) == {"backend": 1, "trace": 1, "wait": 1}
