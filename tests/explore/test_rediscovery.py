"""Rediscovering the superseded-proposer liveness bug from scratch.

The ``supersede-wait`` quirk retains the pre-fix PROMISE handling of
the replicated-log kernel's consensus automaton: a proposer whose
ballot has been superseded *waits* instead of abandoning the ballot, so
a stable leader stuck behind a higher promise spins forever — the run
never quiesces and Termination is never witnessed.  The fix (abandon on
supersession) shipped long ago; the quirk replays the bug on demand.

This test is the explorer's acceptance gate: starting from the
fault-free quirked base scenario, with **zero hand-written fault
plans**, a fixed-seed guided campaign must rediscover the stall within
a documented budget (48 iterations — the bug first surfaces around
iteration 1 with this seed, so the budget is generous), auto-shrink the
witness to at most 3 events whose trigger is the ``omega_late``
rotation, and produce a repro whose replay reproduces the violation
deterministically.  The same search on the fixed (quirk-free) base
finds nothing outside the committed soak baseline — the explorer flags
the bug, not the backend.
"""

import os

from repro.explore.driver import Explorer, load_baseline
from repro.faults.shrink import replay_repro
from repro.props.batch import verdicts_ok
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

#: The documented rediscovery budget (EXPERIMENTS.md "Exploring the
#: fault space"): 48 iterations, seed 7, guided strategy.
BUDGET_ITERATIONS = 48
CAMPAIGN_SEED = 7

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))


def kernel_base(quirks=()):
    return ScenarioSpec(
        topology=TOPO,
        sends=SENDS,
        backend="kernel",
        max_rounds=240,
        quirks=quirks,
        name="kernel-base",
    )


def rediscovery_campaign():
    explorer = Explorer(
        [kernel_base(quirks=("supersede-wait",))],
        seed=CAMPAIGN_SEED,
        strategy="guided",
    )
    return explorer, explorer.run(iterations=BUDGET_ITERATIONS)


class TestRediscovery:
    def test_the_stall_is_found_within_the_budget(self):
        _, report = rediscovery_campaign()
        stalls = [
            record
            for record in report.triage
            if "truncated" in record["properties"]
        ]
        assert stalls, "the quirked kernel never stalled within budget"
        # The first witness appears early; the budget is generous.
        assert stalls[0]["first_iteration"] < BUDGET_ITERATIONS

    def test_the_witness_shrinks_to_the_omega_trigger(self):
        _, report = rediscovery_campaign()
        shrunk = [r for r in report.triage if "minimal_plan" in r]
        assert shrunk
        best = min(shrunk, key=lambda r: r["minimal_events"])
        assert best["minimal_events"] <= 3
        kinds = {e["kind"] for e in best["minimal_plan"]["events"]}
        assert "omega_late" in kinds or "crash_burst" in kinds
        # With this seed the dominant triage record is the pure
        # omega_late rotation — the PR 4 bug's original trigger.
        dominant = max(report.triage, key=lambda r: r["count"])
        assert {e["kind"] for e in dominant["minimal_plan"]["events"]} == {
            "omega_late"
        }
        assert dominant["minimal_events"] == 1

    def test_the_repro_replays_deterministically(self):
        explorer, report = rediscovery_campaign()
        record = max(report.triage, key=lambda r: r["count"])
        payload = record["payload"]  # no out_dir: payload rides along
        replay = replay_repro(payload)
        assert replay["verdicts"] == payload["verdicts"]
        assert replay["truncated"] == payload["truncated"]
        assert not verdicts_ok(replay["verdicts"]) or replay["truncated"]

    def test_the_fixed_backend_is_clean_under_the_same_budget(self):
        """No finding outside the committed soak baseline.

        The recovery fault axis widened the mutation pool, so the same
        budget can now surface the *baselined* crash-induced
        non-quiescence class (``scenario|truncated|kind:crash_burst``,
        a known behaviour, not a bug) on the quirk-free backend too.
        The clean-backend gate is therefore the soak lane's own
        criterion: every finding must be covered by
        ``tests/explore/soak_baseline.json``, and in particular the
        supersede-wait stall the quirked run rediscovers must not
        appear here.
        """
        explorer = Explorer(
            [kernel_base(quirks=())],
            seed=CAMPAIGN_SEED,
            strategy="guided",
        )
        report = explorer.run(iterations=BUDGET_ITERATIONS)
        baseline = load_baseline(
            os.path.join(os.path.dirname(__file__), "soak_baseline.json")
        )
        assert report.new_keys(baseline) == []
        for record in report.triage:
            kinds = {e["kind"] for e in record["minimal_plan"]["events"]}
            assert kinds <= {"crash_burst", "churn"}
            assert record["properties"] == ["truncated"]

    def test_the_campaign_is_deterministic(self):
        _, a = rediscovery_campaign()
        _, b = rediscovery_campaign()
        assert a.triage_keys == b.triage_keys
        assert a.coverage == b.coverage
