"""The corpus (admission, energy, persistence) and the mutation engine."""

import random

import pytest

from repro.campaign.executor import execute_spec
from repro.explore.corpus import Corpus
from repro.explore.mutate import MAX_STACK, MutationEngine, random_event
from repro.faults.nemesis import random_plan
from repro.faults.plan import FaultPlan
from repro.workloads.runner import Send, scenario_cache_key
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
GROUPS = tuple(name for name, _ in TOPO.groups)
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))


def spec(**overrides):
    base = dict(topology=TOPO, sends=SENDS, seed=5, max_rounds=240)
    base.update(overrides)
    return ScenarioSpec(**base)


def evaluated(s):
    return s, execute_spec((0, s))


class TestCorpusAdmission:
    def test_first_run_is_admitted_second_identical_is_not(self):
        corpus = Corpus()
        s, row = evaluated(spec())
        entry, novel = corpus.consider(s, row)
        assert entry is not None and novel
        again, novel2 = corpus.consider(s, row)
        assert again is None and not novel2
        assert corpus.evaluated == 2 and corpus.admitted == 1

    def test_counts_accumulate_over_every_run(self):
        corpus = Corpus()
        s, row = evaluated(spec())
        corpus.consider(s, row)
        corpus.consider(s, row)
        assert all(count == 2 for count in corpus.counts.values())

    def test_novel_subset_is_the_reason_to_exist(self):
        corpus = Corpus()
        s1, row1 = evaluated(spec(seed=1))
        corpus.consider(s1, row1)
        s2, row2 = evaluated(
            spec(seed=2, faults=random_plan(
                2, "full", process_count=6, groups=GROUPS))
        )
        entry, novel = corpus.consider(s2, row2)
        if entry is not None:  # novel coverage: strictly the unseen part
            assert entry.novel == novel
            assert novel <= entry.fingerprints
            assert not (novel & set(corpus.entries[
                scenario_cache_key(s1)].fingerprints))


class TestEnergySchedule:
    def test_rare_coverage_has_more_energy(self):
        corpus = Corpus()
        common, row_common = evaluated(spec(seed=1))
        corpus.consider(common, row_common)
        # Re-evaluate the common entry's coverage many times: its
        # fingerprints become cheap.
        for _ in range(10):
            corpus.consider(common, row_common)
        rare, row_rare = evaluated(
            spec(seed=9, faults=random_plan(
                9, "full", process_count=6, groups=GROUPS))
        )
        entry_rare, novel = corpus.consider(rare, row_rare)
        if entry_rare is None:
            pytest.skip("faulted run bought no coverage on this seed")
        entry_common = corpus.entries[scenario_cache_key(common)]
        assert corpus.energy(entry_rare) > corpus.energy(entry_common)

    def test_pick_is_deterministic(self):
        corpus = Corpus()
        for seed in range(4):
            corpus.consider(*evaluated(spec(seed=seed)))
        picks_a = [corpus.pick(random.Random(7)).key for _ in range(3)]
        picks_b = [corpus.pick(random.Random(7)).key for _ in range(3)]
        assert picks_a == picks_b

    def test_empty_corpus_picks_nothing(self):
        assert Corpus().pick(random.Random(0)) is None


class TestPersistence:
    def test_round_trip(self, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus(root)
        for seed in range(3):
            corpus.consider(*evaluated(spec(seed=seed)))
        reloaded = Corpus(root)
        assert set(reloaded.entries) == set(corpus.entries)
        for key, entry in corpus.entries.items():
            twin = reloaded.entries[key]
            assert twin.fingerprints == entry.fingerprints
            assert twin.novel == entry.novel
            assert twin.spec == entry.spec

    def test_corruption_is_a_missing_entry(self, tmp_path):
        root = str(tmp_path / "corpus")
        corpus = Corpus(root)
        s, row = evaluated(spec())
        entry, _ = corpus.consider(s, row)
        path = corpus._path(entry.key)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("{torn")
        assert Corpus(root).entries == {}


class TestMutationEngine:
    def engine(self, **overrides):
        base = dict(process_count=6, groups=GROUPS, horizon=12)
        base.update(overrides)
        return MutationEngine(**base)

    def test_random_events_are_admissible(self):
        rng = random.Random(0)
        kinds = set()
        for _ in range(200):
            event = random_event(rng, 6, GROUPS, 12)
            kinds.add(event.kind)
            FaultPlan((event,))  # constructor validates
        # Every kind is reachable — including the ones named mixes
        # never draw (crash_burst) or draw rarely.
        assert "crash_burst" in kinds and "churn" in kinds

    def test_mutants_are_valid_specs(self):
        engine = self.engine()
        rng = random.Random(3)
        parent = spec(faults=random_plan(
            3, "full", process_count=6, groups=GROUPS))
        for _ in range(100):
            child = engine.mutate(parent, rng)
            child.spec_hash()  # a broken spec would raise here
            if child.faults is not None:
                child.faults.plan_hash()

    def test_same_rng_same_child(self):
        engine = self.engine()
        parent = spec(faults=random_plan(
            3, "full", process_count=6, groups=GROUPS))
        a = engine.mutate(parent, random.Random(11))
        b = engine.mutate(parent, random.Random(11))
        assert a == b

    def test_stack_is_bounded(self):
        assert 1 <= MAX_STACK <= 3

    def test_splice_mixes_two_parents(self):
        engine = self.engine()
        left = FaultPlan((random_event(random.Random(1), 6, GROUPS, 12),))
        right = FaultPlan((random_event(random.Random(2), 6, GROUPS, 12),))
        rng = random.Random(5)
        spliced = {
            engine._op_splice(left, rng, right).plan_hash()
            for _ in range(20)
        }
        # Some splice keeps both parents' events.
        union = left.spliced(right, [0], [0])
        assert union.plan_hash() in spliced

    def test_delay_axis_only_mutates_async_specs(self):
        engine = self.engine(mutate_delay=True)
        round_spec = spec(backend="kernel")
        for trial in range(50):
            child = engine.mutate(round_spec, random.Random(trial))
            assert child.delay_model == round_spec.delay_model

    def test_delay_mutants_are_canonical(self):
        from repro.runtime.delay import canonical_delay_spec

        engine = self.engine(mutate_delay=True)
        parent = spec(
            backend="async", max_rounds=400,
            delay_model=("uniform", 0.1, 0.9),
        )
        seen = set()
        for trial in range(100):
            child = engine.mutate(parent, random.Random(trial))
            if child.delay_model is not None:
                assert child.delay_model == canonical_delay_spec(
                    child.delay_model
                )
                seen.add(child.delay_model[0])
        # The kind switch reaches the slow-pairs search.
        assert "slow_pairs" in seen
