"""The explorer driver: determinism, cache reuse, triage, baselines."""

import json

import pytest

from repro.explore.driver import (
    Explorer,
    load_baseline,
    matches_baseline,
)
from repro.explore.__main__ import base_cells
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))


def kernel_base(**overrides):
    base = dict(
        topology=TOPO,
        sends=(Send(1, "g1", 0), Send(4, "g2", 0)),
        backend="kernel",
        max_rounds=240,
        name="kernel-base",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def stripped(report):
    """The report minus wall-clock noise (elapsed varies per host)."""
    data = report.to_json()
    data.pop("elapsed")
    return data


class TestConstruction:
    def test_needs_bases_and_a_known_strategy(self):
        with pytest.raises(ValueError):
            Explorer([])
        with pytest.raises(ValueError):
            Explorer([kernel_base()], strategy="psychic")
        with pytest.raises(ValueError):
            Explorer([kernel_base()], epsilon=0.0)

    def test_needs_a_budget(self):
        with pytest.raises(ValueError):
            Explorer([kernel_base()]).run()


class TestDeterminism:
    def test_same_seed_same_campaign(self):
        a = Explorer([kernel_base()], seed=3).run(iterations=16)
        b = Explorer([kernel_base()], seed=3).run(iterations=16)
        assert stripped(a) == stripped(b)

    def test_different_seeds_diverge(self):
        a = Explorer([kernel_base()], seed=3).run(iterations=16)
        b = Explorer([kernel_base()], seed=4).run(iterations=16)
        assert a.curve != b.curve

    def test_run_resumes_the_same_search(self):
        # One 16-step run == two 8-step bursts on the same instance
        # (the soak lane strings bursts under one wall clock).
        whole = Explorer([kernel_base()], seed=3).run(iterations=16)
        split = Explorer([kernel_base()], seed=3)
        split.run(iterations=8)
        resumed = split.run(iterations=8)
        assert resumed.iterations == 16
        assert stripped(resumed) == stripped(whole)


class TestStrategies:
    def test_random_strategy_never_consults_the_corpus(self):
        explorer = Explorer([kernel_base()], seed=3, strategy="random")

        def forbidden(rng):  # pragma: no cover - the point is it never runs
            raise AssertionError("random strategy picked a corpus parent")

        explorer.corpus.pick = forbidden
        explorer.run(iterations=12)
        assert explorer.corpus.evaluated == 12

    def test_guided_breeds_from_the_corpus(self):
        explorer = Explorer([kernel_base()], seed=3, epsilon=0.25)
        explorer.run(iterations=24)
        assert explorer.corpus.admitted >= 1
        # With epsilon=0.25 and a non-empty corpus, some of 24 draws
        # must be mutants; mutants execute (not cache-replay) unless
        # they collide with an earlier cell.
        assert explorer.executed <= 24


class TestCacheReuse:
    def test_second_campaign_hits_the_shared_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        first = Explorer([kernel_base()], seed=3, cache=cache_dir)
        report_first = first.run(iterations=12)
        second = Explorer([kernel_base()], seed=3, cache=cache_dir)
        report_second = second.run(iterations=12)
        assert second.cache_hits > 0
        assert second.executed < first.executed or first.executed == 0
        assert report_second.coverage == report_first.coverage

    def test_cache_stats_surface_in_the_report(self, tmp_path):
        explorer = Explorer(
            [kernel_base()], seed=3, cache=str(tmp_path / "cache")
        )
        report = explorer.run(iterations=4)
        assert report.cache is not None
        assert report.cache["stored"] + report.cache["hits"] >= 1


class TestViolatedProperties:
    def test_clean_row(self):
        row = {"status": "ok", "verdicts": {"integrity": 0}, "truncated": False}
        assert Explorer.violated_properties(row) == []

    def test_checker_violations_are_sorted(self):
        row = {
            "status": "ok",
            "verdicts": {"termination": 2, "integrity": 1, "ordering": 0},
            "truncated": False,
        }
        assert Explorer.violated_properties(row) == [
            "integrity", "termination",
        ]

    def test_truncation_is_a_pseudo_property(self):
        row = {"status": "ok", "verdicts": {}, "truncated": True}
        assert Explorer.violated_properties(row) == ["truncated"]

    def test_harness_crash_is_labelled_by_error_type(self):
        row = {"status": "failed", "error": "SimulationError('x')"}
        assert Explorer.violated_properties(row) == [
            "harness-error:SimulationError",
        ]

    def test_admissibility_rejection_is_not_a_violation(self):
        # The auditor rejecting an out-of-envelope adversary is the
        # model working, not the system failing: an inadmissible probe
        # is counted separately and never triaged.
        row = {"status": "failed", "error": "AdmissibilityError('x')"}
        assert Explorer.violated_properties(row) == []


class TestBaseline:
    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "absent.json")) == []

    def test_exact_entries_match_exact_keys(self):
        record = {
            "key": "scenario|truncated|abc123",
            "harness": "scenario",
            "properties": ["truncated"],
            "kinds": ["crash_burst"],
        }
        assert matches_baseline(record, "scenario|truncated|abc123")
        assert not matches_baseline(record, "scenario|truncated|def456")

    def test_kind_class_patterns_cover_a_finding_family(self):
        record = {
            "key": "scenario|truncated|abc123",
            "harness": "scenario",
            "properties": ["truncated"],
            "kinds": ["crash_burst", "link_delay"],
        }
        assert matches_baseline(record, "scenario|truncated|kind:crash_burst")
        assert not matches_baseline(
            record, "scenario|truncated|kind:omega_late"
        )
        # Harness and properties must match exactly.
        assert not matches_baseline(
            record, "broadcast|truncated|kind:crash_burst"
        )
        assert not matches_baseline(
            record, "scenario|termination,truncated|kind:crash_burst"
        )

    def test_triage_records_carry_their_kind_class(self):
        explorer = Explorer(
            [kernel_base(quirks=("supersede-wait",))], seed=7
        )
        explorer.run(iterations=24)
        for record in explorer.triage.values():
            assert record["kinds"] == sorted(set(record["kinds"]))

    def test_new_keys_against_a_baseline(self, tmp_path):
        explorer = Explorer(
            [kernel_base(quirks=("supersede-wait",))], seed=7
        )
        report = explorer.run(iterations=24)
        assert report.triage_keys  # the quirk yields violations
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"known": report.triage_keys}))
        assert report.new_keys(load_baseline(str(path))) == []
        partial = set(report.triage_keys[1:])
        assert report.new_keys(partial) == [report.triage_keys[0]]


class TestBaseCells:
    def test_one_cell_per_backend(self):
        cells = base_cells(("engine", "kernel", "async"))
        assert [c.backend for c in cells] == ["engine", "kernel", "async"]

    def test_quirks_attach_to_the_kernel_cell_only(self):
        cells = base_cells(
            ("engine", "kernel"), quirks=("supersede-wait",)
        )
        by_backend = {c.backend: c for c in cells}
        assert by_backend["kernel"].quirks == ("supersede-wait",)
        assert by_backend["engine"].quirks == ()

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            base_cells(("engine", "quantum"))
