"""Tests for the per-round trace recorder and its JSONL exporter."""

from repro.metrics import (
    TRACE_SCHEMA_VERSION,
    WAIT_IDLE,
    WAIT_QUORUM,
    TraceRecorder,
    read_jsonl,
)
from repro.model import failure_free, make_processes, pset
from repro.workloads import ScenarioSpec, Send, chain_topology, run_scenario


class TestRecorder:
    def test_round_lifecycle_counters(self):
        tr = TraceRecorder()
        tr.begin_round(time=1, eligible=3, full_scan=True)
        tr.note_scanned(fired=2)
        tr.note_scanned(fired=0)
        tr.note_skipped()
        tr.note_quorum_query(available=True)
        tr.note_quorum_query(available=False)
        tr.note_wait(WAIT_QUORUM)
        done = tr.end_round()
        assert done.round == 1
        assert done.eligible == 3
        assert done.scanned == 2
        assert done.skipped == 1
        assert done.actions == 2
        assert done.full_scan
        assert done.quorum_queries == 2
        assert done.quorum_stalls == 1
        assert done.wait_reasons == {WAIT_QUORUM: 1}

    def test_events_outside_a_round_are_not_lost_by_end_round(self):
        tr = TraceRecorder()
        assert tr.end_round() is None
        tr.note_scanned(1)  # no open round: silently ignored
        assert tr.rounds == []

    def test_summary_totals_and_ratio(self):
        tr = TraceRecorder()
        for _ in range(2):
            tr.begin_round(time=1, eligible=4, full_scan=False)
            tr.note_scanned(1)
            tr.note_skipped()
            tr.note_skipped()
            tr.note_skipped()
            tr.note_wait(WAIT_IDLE)
            tr.end_round()
        summary = tr.summary()
        assert summary["rounds"] == 2
        assert summary["eligible"] == 8
        assert summary["scanned"] == 2
        assert summary["skipped"] == 6
        assert summary["scan_ratio"] == 4.0
        assert summary["full_scan_rounds"] == 0
        assert summary["wait_reasons"] == {WAIT_IDLE: 2}

    def test_empty_summary_has_zero_ratio(self):
        assert TraceRecorder().summary()["scan_ratio"] == 0.0


class TestJsonl:
    def test_round_trip(self, tmp_path):
        tr = TraceRecorder()
        tr.begin_round(time=1, eligible=2, full_scan=True)
        tr.note_scanned(1)
        tr.end_round()
        path = str(tmp_path / "trace.jsonl")
        tr.write_jsonl(path, meta={"seed": 7})
        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["meta", "round", "summary"]
        meta, round_line, summary = records
        assert meta["schema"] == TRACE_SCHEMA_VERSION
        assert meta["seed"] == 7
        assert round_line["eligible"] == 2
        assert round_line["scanned"] == 1
        assert summary["actions"] == 1

    def test_runner_trace_path_writes_a_consistent_file(self, tmp_path):
        topo = chain_topology(2)
        procs = make_processes(3)
        path = str(tmp_path / "run.jsonl")
        spec = ScenarioSpec.capture(
            topo,
            failure_free(pset(procs)),
            [Send(1, "g1", 0), Send(3, "g2", 2)],
            seed=4,
        )
        result = run_scenario(spec, trace_path=path)
        assert result.delivered_everywhere()
        records = read_jsonl(path)
        assert records[0]["type"] == "meta"
        assert records[-1]["type"] == "summary"
        round_lines = [r for r in records if r["type"] == "round"]
        assert round_lines  # at least one executed round traced
        summary = records[-1]
        assert summary["rounds"] == len(round_lines)
        assert summary["scanned"] == sum(r["scanned"] for r in round_lines)
        for r in round_lines:
            assert r["eligible"] == r["scanned"] + r["skipped"]
