"""Sweep aggregation: streaming totals and table rendering."""

import pytest

from repro.metrics import SweepAggregator, summarize_rows, sweep_table


def _ok_row(name="r", rounds=5, delivered=True, truncated=False, violations=0):
    return {
        "name": name,
        "status": "ok",
        "delivered_everywhere": delivered,
        "truncated": truncated,
        "rounds": rounds,
        "messages": 2,
        "deliveries": 4,
        "verdicts": {"integrity": violations, "ordering": 0},
    }


def _failed_row(name="boom"):
    return {"name": name, "status": "failed", "error": "ValueError('x')"}


class TestAggregation:
    def test_streaming_matches_one_shot(self):
        rows = [_ok_row("a"), _ok_row("b", rounds=9, violations=2), _failed_row()]
        aggregator = SweepAggregator()
        for row in rows:
            aggregator.add(row)
        assert aggregator.summary() == summarize_rows(rows)

    def test_totals(self):
        summary = summarize_rows(
            [
                _ok_row("a", rounds=4),
                _ok_row("b", rounds=8, delivered=False, truncated=True),
                _ok_row("c", rounds=6, violations=3),
                _failed_row(),
            ]
        )
        assert summary["scenarios"] == 4
        assert summary["ok"] == 3 and summary["failed"] == 1
        assert summary["delivered"] == 2 and summary["truncated"] == 1
        assert summary["total_rounds"] == 18 and summary["max_rounds"] == 8
        assert summary["mean_rounds"] == 6.0
        assert summary["violations"] == {"integrity": 3, "ordering": 0}
        assert summary["violating_scenarios"] == 1

    def test_failed_rows_do_not_pollute_run_metrics(self):
        summary = summarize_rows([_failed_row(), _failed_row("boom2")])
        assert summary["failed"] == 2
        assert summary["total_rounds"] == 0
        assert summary["mean_rounds"] == 0.0
        assert summary["violations"] == {}

    def test_empty_sweep(self):
        summary = summarize_rows([])
        assert summary["scenarios"] == 0
        assert summary["mean_rounds"] == 0.0


class TestTable:
    def test_renders_ok_and_failed_rows(self):
        table = sweep_table([_ok_row("alpha", violations=1), _failed_row("beta")])
        lines = table.splitlines()
        assert lines[0].split(" | ")[0].strip() == "name"
        assert "alpha" in table and "beta" in table
        assert "failed" in table
        # Failed rows render "-" for violations (nothing was checked).
        assert lines[3].rstrip().endswith("-")

    def test_custom_columns(self):
        table = sweep_table([_ok_row()], columns=("name", "rounds"))
        assert table.splitlines()[0].startswith("name")
        assert "delivered" not in table
