"""Tests for run metrics and the table formatter."""

from repro.metrics import RunSummary, format_table, latency_of, steps_at, summarize
from repro.model import (
    MessageFactory,
    RunRecord,
    by_indices,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(3)
ALL = pset(PROCS)
P1, P2, P3 = PROCS


def sample_record():
    record = RunRecord(ALL, failure_free(ALL))
    factory = MessageFactory()
    m1 = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(1, P1, m1)
    record.note_step(1, P1)
    record.note_step(2, P2)
    record.note_step(2, P3)  # P3 is outside every destination group
    record.note_delivery(4, P1, m1)
    record.note_delivery(6, P2, m1)
    return record, m1


def test_latency_is_multicast_to_last_delivery():
    record, m1 = sample_record()
    assert latency_of(record, m1) == 5


def test_latency_none_for_undelivered():
    record = RunRecord(ALL, failure_free(ALL))
    factory = MessageFactory()
    m = factory.multicast(P1, by_indices(1))
    record.note_multicast(0, P1, m)
    assert latency_of(record, m) is None


def test_summary_aggregates():
    record, _ = sample_record()
    summary = summarize(record)
    assert summary.total_steps == 3
    assert summary.idle_steps == 1  # p3's step
    assert summary.deliveries == 2
    assert summary.max_latency == 5
    assert summary.mean_latency == 5.0


def test_steps_at_subsets():
    record, _ = sample_record()
    assert steps_at(record, [P1, P2]) == 2
    assert steps_at(record, []) == 0


def test_format_table_alignment():
    table = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)])
    lines = table.splitlines()
    assert lines[0].startswith("a ")
    assert "2.50" in table
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every row padded to the same width
