"""Tests for run metrics and the table formatter."""

import pytest

from repro.metrics import RunSummary, format_table, latency_of, steps_at, summarize
from repro.model import (
    MessageFactory,
    RunRecord,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(3)
ALL = pset(PROCS)
P1, P2, P3 = PROCS


def sample_record():
    record = RunRecord(ALL, failure_free(ALL))
    factory = MessageFactory()
    m1 = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(1, P1, m1)
    record.note_step(1, P1)
    record.note_step(2, P2)
    record.note_step(2, P3)  # P3 is outside every destination group
    record.note_delivery(4, P1, m1)
    record.note_delivery(6, P2, m1)
    return record, m1


def test_latency_is_multicast_to_last_delivery():
    record, m1 = sample_record()
    assert latency_of(record, m1) == 5


def test_latency_none_for_undelivered():
    record = RunRecord(ALL, failure_free(ALL))
    factory = MessageFactory()
    m = factory.multicast(P1, by_indices(1))
    record.note_multicast(0, P1, m)
    assert latency_of(record, m) is None


def test_summary_aggregates():
    record, _ = sample_record()
    summary = summarize(record)
    assert summary.total_steps == 3
    assert summary.idle_steps == 1  # p3's step
    assert summary.deliveries == 2
    assert summary.max_latency == 5
    assert summary.mean_latency == 5.0


def test_steps_at_subsets():
    record, _ = sample_record()
    assert steps_at(record, [P1, P2]) == 2
    assert steps_at(record, []) == 0


def faulty_deliverer_record():
    """P2 crashes at round 10 but sneaks a delivery in at round 9."""
    pattern = crash_pattern(ALL, {P2: 10})
    record = RunRecord(ALL, pattern)
    factory = MessageFactory()
    m = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(1, P1, m)
    record.note_delivery(3, P1, m)
    record.note_delivery(9, P2, m)  # faulty — crashes next round
    return record, m


def test_latency_excludes_faulty_deliverers_by_default():
    # Seed bug: the faulty P2's round-9 delivery dominated max(), so
    # latency_of reported 8 instead of the correct-members-only 2.
    record, m = faulty_deliverer_record()
    assert latency_of(record, m) == 2


def test_latency_correct_only_flag_restores_all_deliverers():
    record, m = faulty_deliverer_record()
    assert latency_of(record, m, correct_only=False) == 8


def test_latency_none_when_only_faulty_processes_delivered():
    pattern = crash_pattern(ALL, {P2: 10})
    record = RunRecord(ALL, pattern)
    factory = MessageFactory()
    m = factory.multicast(P1, by_indices(1, 2))
    record.note_multicast(1, P1, m)
    record.note_delivery(9, P2, m)
    assert latency_of(record, m) is None
    assert latency_of(record, m, correct_only=False) == 8


def test_format_table_alignment():
    table = format_table(("a", "bb"), [(1, 2.5), (30, 4.0)])
    lines = table.splitlines()
    assert lines[0].startswith("a ")
    assert "2.50" in table
    assert len(lines) == 4
    widths = {len(line) for line in lines}
    assert len(widths) == 1  # every row padded to the same width


def test_format_table_rejects_long_rows():
    # Seed bug: a row longer than the header list raised a bare
    # IndexError from columns[i].
    with pytest.raises(ValueError, match="row 1 has 3 cells, expected 2"):
        format_table(("a", "b"), [(1, 2), (1, 2, 3)])


def test_format_table_rejects_short_rows():
    # Seed bug: a short row silently rendered a misaligned table.
    with pytest.raises(ValueError, match="row 0 has 1 cells, expected 2"):
        format_table(("a", "b"), [(1,)])
