"""Tests for leader-driven consensus from Omega ∧ Sigma."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.sim import Kernel
from repro.substrates import ConsensusCluster

PROCS = make_processes(4)
SCOPE = pset(PROCS)


def run_consensus(pattern, proposals, seed, rounds=300, omega_stab=None):
    cluster = ConsensusCluster(pattern, SCOPE, omega_stabilization=omega_stab)
    for p, value in proposals.items():
        cluster.propose(p, value)
    kernel = Kernel(pattern, cluster.automata, cluster.detectors, seed=seed)
    kernel.run(
        rounds,
        stop_when=lambda: cluster.decided_everywhere(pattern.correct),
    )
    return cluster, kernel


class TestFailureFree:
    def test_agreement_validity_termination(self):
        pattern = failure_free(SCOPE)
        proposals = {p: f"v{p.index}" for p in PROCS}
        cluster, _ = run_consensus(pattern, proposals, seed=1)
        decisions = {cluster.decision_at(p) for p in PROCS}
        assert len(decisions) == 1
        assert decisions.pop() in proposals.values()

    def test_single_proposer_decides_own_value(self):
        pattern = failure_free(SCOPE)
        cluster, _ = run_consensus(pattern, {PROCS[2]: "only"}, seed=2)
        assert all(cluster.decision_at(p) == "only" for p in PROCS)


class TestWithCrashes:
    def test_minority_crash_tolerated(self):
        pattern = crash_pattern(SCOPE, {PROCS[0]: 15})
        proposals = {p: f"v{p.index}" for p in PROCS}
        cluster, _ = run_consensus(pattern, proposals, seed=3)
        decisions = {cluster.decision_at(p) for p in pattern.correct}
        assert len(decisions) == 1

    def test_leader_crash_triggers_takeover(self):
        # p1 is the pre-stabilization leader; it dies mid-run.
        pattern = crash_pattern(SCOPE, {PROCS[0]: 10})
        proposals = {PROCS[1]: "x", PROCS[3]: "y"}
        cluster, _ = run_consensus(
            pattern, proposals, seed=4, omega_stab=12
        )
        decisions = {cluster.decision_at(p) for p in pattern.correct}
        assert len(decisions) == 1
        assert decisions.pop() in {"x", "y"}

    def test_two_crashes_with_sigma_quorums(self):
        """Sigma-based quorums shrink with the crashes, so even a
        2-of-4 survivor set terminates (no majority assumption)."""
        pattern = crash_pattern(SCOPE, {PROCS[0]: 12, PROCS[3]: 12})
        proposals = {p: f"v{p.index}" for p in PROCS}
        cluster, _ = run_consensus(pattern, proposals, seed=5, rounds=400)
        decisions = {cluster.decision_at(p) for p in pattern.correct}
        assert len(decisions) == 1


class TestRandomized:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        crash_index=st.integers(min_value=0, max_value=3),
        crash_time=st.integers(min_value=0, max_value=30),
    )
    def test_agreement_under_random_schedules(
        self, seed, crash_index, crash_time
    ):
        pattern = crash_pattern(SCOPE, {PROCS[crash_index]: crash_time})
        proposals = {p: f"v{p.index}" for p in PROCS}
        cluster, _ = run_consensus(pattern, proposals, seed=seed, rounds=400)
        decisions = {
            cluster.decision_at(p)
            for p in pattern.correct
            if cluster.decision_at(p) is not None
        }
        assert len(decisions) <= 1
        # Termination for correct processes.
        assert all(
            cluster.decision_at(p) is not None for p in pattern.correct
        )
        if decisions:
            assert decisions.pop() in proposals.values()
