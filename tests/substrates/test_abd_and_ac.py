"""Tests for the ABD register and message-passing adopt-commit."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.detectors import SigmaOracle
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.sim import Kernel
from repro.substrates import AdoptCommitAutomaton, RegisterAutomaton

PROCS = make_processes(3)
SCOPE = pset(PROCS)


def register_kernel(pattern, seed=0):
    automata = {p: RegisterAutomaton(p, SCOPE) for p in PROCS}
    detectors = {
        p: SigmaOracle(pattern.restricted_to(SCOPE), SCOPE) for p in PROCS
    }
    return automata, Kernel(pattern, automata, detectors, seed=seed)


class TestABDRegister:
    def test_read_your_write(self):
        pattern = failure_free(SCOPE)
        autos, kernel = register_kernel(pattern, seed=1)
        w = autos[PROCS[0]].invoke_write("hello")
        kernel.run(80)
        assert autos[PROCS[0]].result_of(w) == ("write", "hello")
        r = autos[PROCS[0]].invoke_read()
        kernel.run(80)
        assert autos[PROCS[0]].result_of(r) == ("read", "hello")

    def test_read_sees_completed_remote_write(self):
        pattern = failure_free(SCOPE)
        autos, kernel = register_kernel(pattern, seed=2)
        w = autos[PROCS[2]].invoke_write(7)
        kernel.run(80)
        assert autos[PROCS[2]].result_of(w) is not None
        r = autos[PROCS[0]].invoke_read()
        kernel.run(80)
        assert autos[PROCS[0]].result_of(r) == ("read", 7)

    def test_initial_read_returns_none(self):
        pattern = failure_free(SCOPE)
        autos, kernel = register_kernel(pattern, seed=3)
        r = autos[PROCS[1]].invoke_read()
        kernel.run(80)
        assert autos[PROCS[1]].result_of(r) == ("read", None)

    def test_later_write_wins(self):
        pattern = failure_free(SCOPE)
        autos, kernel = register_kernel(pattern, seed=4)
        w1 = autos[PROCS[0]].invoke_write("first")
        kernel.run(80)
        w2 = autos[PROCS[1]].invoke_write("second")
        kernel.run(80)
        r = autos[PROCS[2]].invoke_read()
        kernel.run(80)
        assert autos[PROCS[2]].result_of(r) == ("read", "second")

    def test_ops_survive_a_crash(self):
        pattern = crash_pattern(SCOPE, {PROCS[2]: 20})
        autos, kernel = register_kernel(pattern, seed=5)
        w = autos[PROCS[0]].invoke_write(99)
        kernel.run(120)
        r = autos[PROCS[1]].invoke_read()
        kernel.run(120)
        assert autos[PROCS[1]].result_of(r) == ("read", 99)

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_sequential_write_read_always_linearizes(self, seed):
        pattern = failure_free(SCOPE)
        autos, kernel = register_kernel(pattern, seed=seed)
        w = autos[PROCS[0]].invoke_write(seed)
        kernel.run(100)
        assert autos[PROCS[0]].result_of(w) is not None
        r = autos[PROCS[1]].invoke_read()
        kernel.run(100)
        assert autos[PROCS[1]].result_of(r) == ("read", seed)


def ac_kernel(pattern, proposals, seed=0):
    automata = {p: AdoptCommitAutomaton(p, SCOPE) for p in PROCS}
    for p, value in proposals.items():
        automata[p].propose(value)
    detectors = {
        p: SigmaOracle(pattern.restricted_to(SCOPE), SCOPE) for p in PROCS
    }
    kernel = Kernel(pattern, automata, detectors, seed=seed)
    return automata, kernel


class TestAdoptCommit:
    def test_unanimity_commits(self):
        pattern = failure_free(SCOPE)
        autos, kernel = ac_kernel(pattern, {p: "v" for p in PROCS}, seed=1)
        kernel.run(150)
        for p in PROCS:
            assert autos[p].outcome == (True, "v")

    def test_conflict_never_commits_two_values(self):
        pattern = failure_free(SCOPE)
        proposals = {PROCS[0]: "a", PROCS[1]: "b", PROCS[2]: "a"}
        autos, kernel = ac_kernel(pattern, proposals, seed=2)
        kernel.run(200)
        committed = {
            autos[p].outcome[1]
            for p in PROCS
            if autos[p].outcome and autos[p].outcome[0]
        }
        assert len(committed) <= 1

    def test_commit_forces_agreement_on_value(self):
        """If anyone commits v, every outcome carries v."""
        pattern = failure_free(SCOPE)
        proposals = {PROCS[0]: "a", PROCS[1]: "a", PROCS[2]: "b"}
        autos, kernel = ac_kernel(pattern, proposals, seed=3)
        kernel.run(200)
        outcomes = [autos[p].outcome for p in PROCS if autos[p].outcome]
        committed = [v for ok, v in outcomes if ok]
        if committed:
            assert all(v == committed[0] for _, v in outcomes)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        values=st.lists(
            st.sampled_from(["a", "b"]), min_size=3, max_size=3
        ),
    )
    def test_safety_under_random_schedules(self, seed, values):
        pattern = failure_free(SCOPE)
        proposals = dict(zip(PROCS, values))
        autos, kernel = ac_kernel(pattern, proposals, seed=seed)
        kernel.run(250)
        outcomes = [autos[p].outcome for p in PROCS]
        assert all(o is not None for o in outcomes)
        committed = {v for ok, v in outcomes if ok}
        assert len(committed) <= 1
        if committed:
            value = committed.pop()
            assert all(v == value for _, v in outcomes)
        if len(set(values)) == 1:
            assert all(ok for ok, _ in outcomes)
