"""Tests for the consensus-based replicated log (universal construction)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.plan import FaultEvent, FaultPlan
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.sim import Kernel
from repro.substrates import ReplicatedLogCluster
from repro.workloads.runner import Send, run_scenario
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

PROCS = make_processes(3)
SCOPE = pset(PROCS)


def run_log(pattern, appends, seed, rounds=600):
    """``appends``: list of (process, value) issued before the run."""
    cluster = ReplicatedLogCluster(pattern, SCOPE)
    for p, value in appends:
        cluster.append(p, value)
    kernel = Kernel(pattern, cluster.automata, cluster.detectors, seed=seed)
    total = len(appends)
    kernel.run(
        rounds,
        stop_when=lambda: all(
            len(cluster.applied_at(p)) >= total for p in pattern.correct
        ),
    )
    return cluster


def test_single_append_replicates_everywhere():
    cluster = run_log(failure_free(SCOPE), [(PROCS[0], "a")], seed=1)
    for p in PROCS:
        assert cluster.applied_at(p) == ("a",)


def test_replicas_agree_on_a_total_order():
    appends = [(PROCS[0], "a"), (PROCS[1], "b"), (PROCS[2], "c")]
    cluster = run_log(failure_free(SCOPE), appends, seed=2)
    sequences = {cluster.applied_at(p) for p in PROCS}
    assert len(sequences) == 1
    assert set(sequences.pop()) == {"a", "b", "c"}


def test_every_append_by_a_correct_process_is_applied():
    appends = [(PROCS[1], f"x{i}") for i in range(4)]
    cluster = run_log(failure_free(SCOPE), appends, seed=3, rounds=900)
    for p in PROCS:
        assert set(cluster.applied_at(p)) == {f"x{i}" for i in range(4)}


def test_crash_of_a_replica_does_not_fork_the_log():
    pattern = crash_pattern(SCOPE, {PROCS[2]: 30})
    appends = [(PROCS[0], "a"), (PROCS[1], "b")]
    cluster = run_log(pattern, appends, seed=4, rounds=900)
    survivors = sorted(pattern.correct)
    seq0 = cluster.applied_at(survivors[0])
    seq1 = cluster.applied_at(survivors[1])
    assert seq0 == seq1
    assert set(seq0) == {"a", "b"}
    # The crashed replica's prefix is consistent with the survivors.
    dead_seq = cluster.applied_at(PROCS[2])
    assert dead_seq == seq0[: len(dead_seq)]


def test_rejoined_replica_catches_up_on_decisions_made_before_its_crash():
    """Regression: the laggard catch-up hole (explore-soak audit, 2026-08).

    A decision can complete just *before* a replica's crash — the
    victim's promise and accept already counted toward the quorum — so
    its DECIDE datagram is dropped with the crash while every peer
    reaches phase ``done`` and goes idle.  Nobody re-sends (proposer
    retransmission only fires on incomplete quorums), and without the
    rejoin CATCHUP exchange the recovered replica waits on the slot
    forever: this exact spec burned its full 240-round budget with a
    termination violation.  With the exchange, it terminates cleanly.
    """
    topo = TopologySpec.capture(disjoint_topology(2, group_size=3))
    plan = FaultPlan(
        (FaultEvent(kind="crash_recover", start=7, until=12, targets=(5,)),)
    )
    spec = ScenarioSpec(
        topology=topo,
        sends=(Send(1, "g1", 0), Send(4, "g2", 0)),
        backend="kernel",
        max_rounds=240,
        seed=18154,
        faults=plan,
    )
    result = run_scenario(spec)
    result.assert_ok()
    row = result.to_row()
    assert not row["truncated"]
    assert row["verdicts"]["termination"] == 0
    # The run resolves promptly (17 rounds when pinned) rather than
    # riding the 240-round budget the way the unfixed laggard did.
    assert row["rounds"] < 60


@settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_random_schedules_preserve_prefix_consistency(seed):
    appends = [(PROCS[seed % 3], "m1"), (PROCS[(seed + 1) % 3], "m2")]
    cluster = run_log(failure_free(SCOPE), appends, seed=seed)
    sequences = [cluster.applied_at(p) for p in PROCS]
    shortest = min(sequences, key=len)
    for seq in sequences:
        assert seq[: len(shortest)] == shortest
    assert all(len(seq) == 2 for seq in sequences)
