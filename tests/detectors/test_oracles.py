"""Tests for oracle-backed failure detectors against their definitions."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.detectors import (
    BOTTOM,
    GammaOracle,
    IndicatorOracle,
    OmegaOracle,
    PerfectOracle,
    Restricted,
    SigmaOracle,
    check_gamma,
    check_indicator,
    check_omega,
    check_perfect,
    check_sigma,
    gamma_groups,
)
from repro.groups import paper_figure1_topology
from repro.model import (
    DetectorError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(5)
ALL = pset(PROCS)
P1, P2, P3, P4, P5 = PROCS


def drive(detector, processes, times):
    """Sample the detector at each process/time and return the history."""
    for t in times:
        for p in processes:
            detector.sample(p, t)
    return detector.history


class TestSigmaOracle:
    def test_scope_must_be_non_empty(self):
        with pytest.raises(DetectorError):
            SigmaOracle(failure_free(ALL), frozenset())

    def test_quorums_always_intersect(self):
        pattern = crash_pattern(ALL, {P1: 3, P2: 7})
        sigma = SigmaOracle(pattern, ALL)
        history = drive(sigma, PROCS, range(0, 12, 2))
        assert check_sigma(history, pattern, ALL) == []

    def test_eventual_quorums_are_correct(self):
        pattern = crash_pattern(ALL, {P1: 2})
        sigma = SigmaOracle(pattern, ALL)
        late = sigma.query(P3, 100)
        assert late <= pattern.correct

    def test_fully_faulty_scope_pins_to_scope(self):
        scope = by_indices(1, 2)
        pattern = crash_pattern(ALL, {P1: 0, P2: 5})
        sigma = SigmaOracle(pattern.restricted_to(scope), scope)
        assert sigma.query(P1, 0) == scope
        assert sigma.query(P1, 99) == scope
        history = drive(sigma, [P1, P2], range(0, 10))
        assert check_sigma(history, pattern, scope) == []

    @settings(max_examples=25, deadline=None)
    @given(
        st.dictionaries(
            st.sampled_from(PROCS), st.integers(min_value=0, max_value=20),
            max_size=4,
        )
    )
    def test_property_histories_are_admissible(self, crashes):
        pattern = crash_pattern(ALL, crashes)
        sigma = SigmaOracle(pattern, ALL)
        history = drive(sigma, PROCS, range(0, 30, 3))
        assert check_sigma(history, pattern, ALL) == []


class TestOmegaOracle:
    def test_leadership_reached_after_stabilization(self):
        pattern = crash_pattern(ALL, {P1: 4})
        omega = OmegaOracle(pattern, ALL)
        history = drive(omega, [p for p in PROCS if p != P1], range(0, 10))
        assert check_omega(history, pattern, ALL) == []
        assert omega.query(P2, 9) == P2  # smallest correct process

    def test_pre_stabilization_output_may_be_faulty(self):
        pattern = crash_pattern(ALL, {P1: 6})
        omega = OmegaOracle(pattern, ALL, stabilization_time=6)
        assert omega.query(P2, 0) == P1  # alive but doomed
        assert omega.query(P2, 6) == P2

    def test_fully_faulty_scope_is_vacuous(self):
        scope = by_indices(1)
        pattern = crash_pattern(ALL, {P1: 0})
        omega = OmegaOracle(pattern.restricted_to(scope), scope)
        assert omega.query(P1, 0) == P1
        history = drive(omega, [P1], range(3))
        assert check_omega(history, pattern, scope) == []

    def test_singleton_scope_is_trivial(self):
        # Omega_{p} always elects p (§3's example of restriction).
        pattern = failure_free(ALL)
        omega = OmegaOracle(pattern, by_indices(3))
        assert omega.query(P3, 0) == P3


class TestGammaOracle:
    @pytest.fixture()
    def fig1(self):
        return paper_figure1_topology()

    def test_initial_output_is_all_families_of_p1(self, fig1):
        pattern = crash_pattern(ALL, {P2: 10, P3: 10})
        gamma = GammaOracle(pattern, fig1)
        assert gamma.query(P1, 0) == frozenset(fig1.cyclic_families())

    def test_output_stabilizes_to_surviving_family(self, fig1):
        """The §3 worked example: Correct={p1,p4,p5}; eventually gamma at
        p1 returns only f' = {g1, g3, g4} and gamma(g1) = {g3, g4}."""
        pattern = crash_pattern(ALL, {P2: 10, P3: 10})
        gamma = GammaOracle(pattern, fig1)
        late = gamma.query(P1, 10)
        names = {frozenset(g.name for g in fam) for fam in late}
        assert names == {frozenset({"g1", "g3", "g4"})}
        partners = gamma_groups(late, fig1.group("g1"))
        assert {g.name for g in partners} == {"g3", "g4"}

    def test_process_outside_intersections_sees_nothing(self, fig1):
        gamma = GammaOracle(failure_free(ALL), fig1)
        assert gamma.query(P5, 0) == frozenset()

    def test_detection_lag_delays_exclusion_but_stays_accurate(self, fig1):
        pattern = crash_pattern(ALL, {P2: 5, P3: 5})
        gamma = GammaOracle(pattern, fig1, detection_lag=4)
        # At t=6 the family is faulty but not yet excluded: allowed.
        f = frozenset(fig1.group(n) for n in ("g1", "g2", "g3"))
        assert f in gamma.query(P1, 6)
        assert f not in gamma.query(P1, 9)
        history = drive(gamma, PROCS, range(0, 20, 2))
        assert check_gamma(history, pattern, fig1) == []

    def test_oracle_histories_pass_validation(self, fig1):
        pattern = crash_pattern(ALL, {P2: 3})
        gamma = GammaOracle(pattern, fig1)
        history = drive(gamma, PROCS, range(0, 10))
        assert check_gamma(history, pattern, fig1) == []


class TestIndicatorOracle:
    def test_raises_only_after_collective_death(self):
        watched = by_indices(1, 2)
        pattern = crash_pattern(ALL, {P1: 2, P2: 6})
        ind = IndicatorOracle(pattern, watched)
        assert not ind.query(P3, 5)
        assert ind.query(P3, 6)
        history = drive(ind, PROCS, range(0, 10))
        assert check_indicator(history, pattern, watched) == []

    def test_never_raises_when_a_member_is_correct(self):
        watched = by_indices(1, 2)
        pattern = crash_pattern(ALL, {P1: 0})
        ind = IndicatorOracle(pattern, watched)
        assert not ind.query(P3, 10**6)

    def test_detection_lag(self):
        watched = by_indices(4)
        pattern = crash_pattern(ALL, {P4: 3})
        ind = IndicatorOracle(pattern, watched, detection_lag=5)
        assert not ind.query(P1, 7)
        assert ind.query(P1, 8)


class TestPerfectOracle:
    def test_suspects_exactly_the_crashed(self):
        pattern = crash_pattern(ALL, {P2: 4})
        perfect = PerfectOracle(pattern)
        assert perfect.query(P1, 3) == frozenset()
        assert perfect.query(P1, 4) == {P2}
        history = drive(perfect, PROCS, range(0, 8))
        assert check_perfect(history, pattern) == []

    def test_detection_lag_preserves_accuracy(self):
        pattern = crash_pattern(ALL, {P2: 4})
        perfect = PerfectOracle(pattern, detection_lag=3)
        assert perfect.query(P1, 6) == frozenset()
        assert perfect.query(P1, 7) == {P2}
        history = drive(perfect, PROCS, range(0, 12))
        assert check_perfect(history, pattern) == []


class TestRestriction:
    def test_bottom_outside_scope(self):
        pattern = failure_free(ALL)
        sigma = SigmaOracle(pattern, ALL)
        restricted = Restricted(sigma, by_indices(1, 2))
        assert restricted.query(P3, 0) is BOTTOM
        assert restricted.query(P1, 0) is not BOTTOM

    def test_scope_must_be_non_empty(self):
        with pytest.raises(DetectorError):
            Restricted(SigmaOracle(failure_free(ALL), ALL), frozenset())
