"""Tests for the candidate detector mu (§3)."""

import pytest

from repro.detectors import BOTTOM, Mu, check_omega, check_sigma
from repro.groups import paper_figure1_topology, topology_from_indices
from repro.model import (
    DetectorError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(5)
ALL = pset(PROCS)
P1, P2, P3, P4, P5 = PROCS


@pytest.fixture()
def fig1():
    return paper_figure1_topology()


def test_sigma_component_per_intersection(fig1):
    mu = Mu(failure_free(ALL), fig1)
    g1, g3 = fig1.group("g1"), fig1.group("g3")
    sigma = mu.sigma(g1, g3)
    assert sigma.scope == by_indices(1)
    assert sigma.query(P1, 0) == by_indices(1)


def test_sigma_of_group_itself(fig1):
    mu = Mu(failure_free(ALL), fig1)
    g3 = fig1.group("g3")
    assert mu.sigma(g3, g3).scope == g3.members


def test_sigma_for_disjoint_pair_raises(fig1):
    mu = Mu(failure_free(ALL), fig1)
    with pytest.raises(DetectorError):
        mu.sigma(fig1.group("g2"), fig1.group("g4"))


def test_omega_component_scoped_to_group(fig1):
    pattern = crash_pattern(ALL, {P1: 0})
    mu = Mu(pattern, fig1)
    g4 = fig1.group("g4")
    # p1 faulty: the eventual leader of g4 must be p4.
    assert mu.omega(g4).query(P4, 100) == P4


def test_gamma_partners_match_paper_example(fig1):
    pattern = crash_pattern(ALL, {P2: 10, P3: 10})
    mu = Mu(pattern, fig1)
    partners = mu.gamma_partners(P1, 50, fig1.group("g1"))
    assert {g.name for g in partners} == {"g3", "g4"}


def test_full_query_returns_named_samples(fig1):
    mu = Mu(failure_free(ALL), fig1)
    sample = mu.query(P1, 0)
    assert "gamma" in sample
    assert any(key.startswith("omega:") for key in sample)
    assert any(key.startswith("sigma:") for key in sample)
    # p1 is not in g2, so the omega:g2 sample is bottom at p1.
    assert sample["omega:g2"] is BOTTOM


def test_conjunction_view_components_validate(fig1):
    pattern = crash_pattern(ALL, {P2: 5})
    mu = Mu(pattern, fig1)
    conj = mu.as_conjunction()
    g1 = fig1.group("g1")
    omega_g1 = conj.component("omega:g1")
    history = []
    for t in range(0, 12, 2):
        for p in sorted(g1.members):
            history.append((p, t, omega_g1.query(p, t)))
    assert check_omega(history, pattern, g1.members) == []


def test_mu_on_disjoint_topology_has_no_cross_sigma():
    topo = topology_from_indices(4, {"a": [1, 2], "b": [3, 4]})
    procs = make_processes(4)
    mu = Mu(failure_free(pset(procs)), topo)
    sample = mu.query(procs[0], 0)
    sigma_keys = [k for k in sample if k.startswith("sigma:")]
    # Only the two per-group sigmas exist.
    assert len(sigma_keys) == 2
    assert sample["gamma"] == frozenset()
