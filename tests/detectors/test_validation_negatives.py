"""The detector validation harness must *reject* bad histories."""

import pytest

from repro.detectors import (
    check_gamma,
    check_indicator,
    check_omega,
    check_perfect,
    check_sigma,
)
from repro.groups import paper_figure1_topology
from repro.model import (
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

PROCS = make_processes(4)
ALL = pset(PROCS)
P1, P2, P3, P4 = PROCS


class TestSigmaNegatives:
    def test_disjoint_quorums_flagged(self):
        history = [
            (P1, 0, by_indices(1, 2)),
            (P3, 5, by_indices(3, 4)),
        ]
        pattern = failure_free(ALL)
        violations = check_sigma(history, pattern, ALL)
        assert any("Intersection" in v for v in violations)

    def test_empty_quorum_flagged(self):
        history = [(P1, 0, frozenset())]
        violations = check_sigma(history, failure_free(ALL), ALL)
        assert any("empty quorum" in v for v in violations)

    def test_quorum_outside_scope_flagged(self):
        history = [(P1, 0, by_indices(4))]
        violations = check_sigma(
            history, failure_free(ALL), by_indices(1, 2)
        )
        assert any("outside scope" in v for v in violations)

    def test_final_faulty_quorum_flagged(self):
        pattern = crash_pattern(ALL, {P2: 0})
        history = [(P1, 50, by_indices(1, 2))]
        violations = check_sigma(history, pattern, ALL)
        assert any("Liveness" in v for v in violations)


class TestOmegaNegatives:
    def test_divergent_final_leaders_flagged(self):
        pattern = failure_free(ALL)
        history = [(P1, 9, P1), (P2, 9, P2)]
        violations = check_omega(history, pattern, ALL)
        assert any("divergent" in v for v in violations)

    def test_faulty_final_leader_flagged(self):
        pattern = crash_pattern(ALL, {P4: 0})
        history = [(P1, 9, P4), (P2, 9, P4), (P3, 9, P4)]
        violations = check_omega(history, pattern, ALL)
        assert any("not a correct member" in v for v in violations)

    def test_vacuous_when_scope_fully_faulty(self):
        pattern = crash_pattern(ALL, {P1: 0, P2: 0})
        history = [(P1, 0, P2)]
        assert check_omega(history, pattern, by_indices(1, 2)) == []


class TestGammaNegatives:
    def test_excluding_a_live_family_flagged(self):
        topo = paper_figure1_topology()
        procs = make_processes(5)
        pattern = failure_free(pset(procs))
        # p1 outputs the empty set though all families are alive.
        history = [(procs[0], 0, frozenset())]
        violations = check_gamma(history, pattern, topo)
        assert any("Accuracy" in v for v in violations)

    def test_keeping_a_dead_family_forever_flagged(self):
        topo = paper_figure1_topology()
        procs = make_processes(5)
        pattern = crash_pattern(pset(procs), {procs[1]: 0})
        dead_family = next(
            f
            for f in topo.cyclic_families()
            if len(f) == 3 and topo.group("g2") in f
        )
        history = [(procs[0], 99, frozenset({dead_family}))]
        violations = check_gamma(history, pattern, topo)
        assert any("Completeness" in v for v in violations)


class TestIndicatorNegatives:
    def test_premature_true_flagged(self):
        pattern = failure_free(ALL)
        history = [(P1, 3, True)]
        violations = check_indicator(history, pattern, by_indices(2))
        assert any("Accuracy" in v for v in violations)

    def test_stuck_false_after_death_flagged(self):
        pattern = crash_pattern(ALL, {P2: 2})
        history = [(P1, 50, False)]
        violations = check_indicator(history, pattern, by_indices(2))
        assert any("Completeness" in v for v in violations)


class TestPerfectNegatives:
    def test_premature_suspicion_flagged(self):
        pattern = crash_pattern(ALL, {P2: 10})
        history = [(P1, 3, by_indices(2))]
        violations = check_perfect(history, pattern)
        assert any("accuracy" in v for v in violations)

    def test_missing_final_suspicion_flagged(self):
        pattern = crash_pattern(ALL, {P2: 1})
        history = [(P1, 50, frozenset())]
        violations = check_perfect(history, pattern)
        assert any("completeness" in v for v in violations)
