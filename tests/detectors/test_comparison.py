"""Tests for detector comparisons: Proposition 51 and Corollary 52."""

import pytest

from repro.detectors import GammaOracle, check_gamma
from repro.detectors.comparison import (
    GammaFromIndicators,
    distinguishing_scenario_gamma_vs_indicator,
    gamma_histories_agree,
)
from repro.groups import paper_figure1_topology
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.workloads import ring_topology

PROCS5 = make_processes(5)
ALL5 = pset(PROCS5)


class TestProposition51:
    """The indicator conjunction implements gamma."""

    def test_failure_free_outputs_all_families(self):
        topo = paper_figure1_topology()
        pattern = failure_free(ALL5)
        derived = GammaFromIndicators.with_oracles(topo, pattern)
        assert derived.query(PROCS5[0], 0) == frozenset(
            topo.cyclic_families()
        )

    def test_derived_gamma_matches_oracle_on_figure1(self):
        topo = paper_figure1_topology()
        pattern = crash_pattern(ALL5, {PROCS5[1]: 4, PROCS5[2]: 7})
        derived = GammaFromIndicators.with_oracles(topo, pattern)
        oracle = GammaOracle(pattern, topo)
        for t in (0, 3, 4, 6, 7, 20):
            for p in PROCS5:
                assert derived.query(p, t) == oracle.query(p, t), (p, t)

    def test_derived_histories_pass_the_gamma_validator(self):
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[2]: 5})
        derived = GammaFromIndicators.with_oracles(topo, pattern)
        history = []
        for t in range(0, 15):
            for p in procs:
                if pattern.is_alive(p, t):
                    history.append((p, t, derived.query(p, t)))
        assert check_gamma(history, pattern, topo) == []

    def test_indicator_lag_translates_to_gamma_lag(self):
        topo = ring_topology(3)
        procs = make_processes(3)
        pattern = crash_pattern(pset(procs), {procs[0]: 2})
        derived = GammaFromIndicators.with_oracles(
            topo, pattern, detection_lag=5
        )
        family = topo.cyclic_families()[0]
        # Faulty at t=2, but the indicators only fire at t=7.
        assert family in derived.query(procs[1], 6)
        assert family not in derived.query(procs[1], 7)


class TestCorollary52:
    """gamma cannot implement 1^{g∩h}: the distinguishing scenario."""

    def test_witness_exists_on_figure1(self):
        topo = paper_figure1_topology()
        witness = distinguishing_scenario_gamma_vs_indicator(
            topo, "g1", "g2"
        )
        assert witness is not None
        pattern_f, pattern_f_prime = witness
        shared = topo.group("g1").intersection(topo.group("g2"))
        # In F the intersection is correct; in F' it is initially dead.
        assert not (pattern_f.faulty & shared)
        assert all(p in pattern_f_prime.faulty for p in shared)

    def test_gamma_cannot_distinguish_the_two_patterns(self):
        """Identical gamma histories at the processes outside g1∩g2 —
        while any correct indicator must answer differently."""
        topo = paper_figure1_topology()
        pattern_f, pattern_f_prime = (
            distinguishing_scenario_gamma_vs_indicator(topo, "g1", "g2")
        )
        shared = topo.group("g1").intersection(topo.group("g2"))
        observers = [
            p
            for p in PROCS5
            if p not in shared
            and pattern_f.is_correct(p)
            and pattern_f_prime.is_correct(p)
        ]
        assert observers
        assert gamma_histories_agree(
            topo, pattern_f, pattern_f_prime, observers, horizon=20
        )

    def test_disjoint_pair_has_no_witness(self):
        from repro.groups import topology_from_indices

        topo = topology_from_indices(4, {"a": [1, 2], "b": [3, 4]})
        assert (
            distinguishing_scenario_gamma_vs_indicator(topo, "a", "b")
            is None
        )
