"""The kernel execution backend of ``run_scenario`` (spec schema v2).

A ``backend="kernel"`` spec runs one replicated log per destination
group on the Appendix-A kernel instead of the Algorithm-1 engine; the
synthesized :class:`RunRecord` must satisfy the same §2.2 properties.
These tests cover the backend dispatch, the disjointness requirement,
the ``event_driven`` knob (and its derivation from ``scheduling``), the
schema-v2 JSON round trip with v1 backward compatibility, and the new
Campaign axes.
"""

from __future__ import annotations

import pytest

from repro.campaign.grid import Campaign, case
from repro.groups import paper_figure1_topology
from repro.model.errors import SimulationError, TopologyError
from repro.props.batch import batch_verdicts, verdicts_ok
from repro.workloads import ScenarioSpec, Send, run_scenario
from repro.workloads.spec import SPEC_SCHEMA_VERSION, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0), Send(2, "g1", 1))


def kernel_spec(**overrides):
    base = dict(
        topology=TOPO, sends=SENDS, seed=3, backend="kernel", max_rounds=300
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestKernelBackend:
    def test_delivers_and_satisfies_properties(self):
        result = run_scenario(kernel_spec())
        assert result.backend == "kernel"
        assert result.kernel is not None and result.system is None
        assert result.quiescent and not result.truncated
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))
        # One delivery per (message, destination member).
        assert len(result.record.deliveries) == 3 * 3

    def test_survives_a_minority_crash(self):
        result = run_scenario(kernel_spec(crashes=((3, 5),)))
        assert result.quiescent
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))

    def test_crashed_sender_is_skipped_not_fatal(self):
        spec = kernel_spec(
            crashes=((1, 0),), sends=(Send(1, "g1", 2), Send(4, "g2", 0))
        )
        result = run_scenario(spec)
        assert [s.sender for s in result.skipped_sends] == [1]
        assert len(result.messages) == 1
        assert result.delivered_everywhere()

    def test_event_and_scan_modes_agree_on_deliveries(self):
        fingerprints = []
        for event_driven in (False, True):
            result = run_scenario(kernel_spec(event_driven=event_driven))
            fingerprints.append(
                sorted(
                    (e.time, e.process.name, str(e.message.mid))
                    for e in result.record.deliveries
                )
            )
        assert fingerprints[0] == fingerprints[1]

    def test_event_driven_derives_from_scheduling(self):
        assert kernel_spec(scheduling="event").kernel_event_driven() is True
        assert kernel_spec(scheduling="scan").kernel_event_driven() is False
        assert (
            kernel_spec(scheduling="scan", event_driven=True)
            .kernel_event_driven()
            is True
        )

    def test_intersecting_groups_rejected(self):
        spec = ScenarioSpec(
            topology=TopologySpec.capture(paper_figure1_topology()),
            sends=(Send(1, "g1", 0),),
            backend="kernel",
        )
        with pytest.raises(TopologyError):
            run_scenario(spec)

    def test_unknown_backend_rejected(self):
        with pytest.raises(SimulationError):
            ScenarioSpec(topology=TOPO, backend="quantum")

    def test_to_row_carries_backend_and_quiescent(self):
        row = run_scenario(kernel_spec()).to_row()
        assert row["backend"] == "kernel"
        assert row["quiescent"] is True
        assert row["delivered_everywhere"] is True
        assert row["trace"]["eligible"] >= row["trace"]["scanned"] > 0

    def test_engine_rows_carry_the_new_columns_too(self):
        engine = ScenarioSpec(topology=TOPO, sends=SENDS, seed=3)
        row = run_scenario(engine).to_row()
        assert row["backend"] == "engine"
        assert row["quiescent"] is True


class TestSchemaV2:
    def test_schema_version_bumped(self):
        # v2 added the backend axes; v3 the faults axis.
        assert SPEC_SCHEMA_VERSION >= 2
        assert kernel_spec().to_json()["schema"] == SPEC_SCHEMA_VERSION

    def test_round_trip_preserves_backend_axes(self):
        spec = kernel_spec(event_driven=False)
        clone = ScenarioSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.backend == "kernel"
        assert clone.event_driven is False
        assert clone.spec_hash() == spec.spec_hash()

    def test_v1_payload_loads_with_engine_defaults(self):
        payload = ScenarioSpec(topology=TOPO, sends=SENDS).to_json()
        payload.pop("backend")
        payload.pop("event_driven")
        payload["schema"] = 1
        clone = ScenarioSpec.from_json(payload)
        assert clone.backend == "engine"
        assert clone.event_driven is None

    def test_hash_ignores_backend_axes_at_their_defaults(self):
        """An engine spec's address must not move with the schema bump."""
        spec = ScenarioSpec(topology=TOPO, sends=SENDS)
        body_with = spec.to_json()
        assert "backend" in body_with  # serialized explicitly...
        assert spec.spec_hash() == ScenarioSpec.from_json(body_with).spec_hash()
        # ...but a non-default backend does change the identity.
        assert spec.spec_hash() != kernel_spec(seed=0, max_rounds=600).spec_hash()


class TestCampaignAxes:
    def _campaign(self, **axes):
        return Campaign(
            name="t",
            cases=(case("d", TOPO, sends=SENDS),),
            seeds=(0, 1),
            **axes,
        )

    def test_backend_axis_expands_the_grid(self):
        campaign = self._campaign(
            backends=("engine", "kernel"), schedulings=("event", "scan")
        )
        specs = campaign.specs()
        assert len(specs) == 2 * 2 * 2  # seeds x schedulings x backends
        assert {s.backend for s in specs} == {"engine", "kernel"}
        assert {s.name for s in specs} == {
            f"d:s{seed}:vanilla:{mode}:{backend}"
            for seed in (0, 1)
            for mode in ("event", "scan")
            for backend in ("engine", "kernel")
        }

    def test_event_driven_axis_expands_and_labels(self):
        campaign = self._campaign(
            backends=("kernel",), event_drivens=(False, True)
        )
        specs = campaign.specs()
        assert len(specs) == 2 * 2
        assert {s.event_driven for s in specs} == {False, True}
        assert any(s.name.endswith(":ed1") for s in specs)
        assert any(s.name.endswith(":ed0") for s in specs)

    def test_default_axes_keep_labels_short(self):
        specs = self._campaign().specs()
        assert {s.name for s in specs} == {"d:s0:vanilla", "d:s1:vanilla"}

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError):
            self._campaign(backends=())

    def test_manifest_records_the_new_axes(self):
        blob = self._campaign(backends=("engine", "kernel")).to_json()
        assert blob["backends"] == ["engine", "kernel"]
        assert blob["event_drivens"] == [None]
