"""The 20-seed differential agreement suite: round backends vs async.

The golden suite pins the round drivers byte-for-byte; it cannot pin the
async backend, whose interleavings are genuinely different schedules.
What *must* hold regardless of schedule — and what this suite sweeps 20
seeds per fault mix to check — is semantic agreement:

* **delivery sets**: every (process, message) delivery the engine run
  produces, the async run produces, and vice versa;
* **per-message ordering properties**: the §2.2 Ordering checker (and
  every other ``repro.props`` checker) passes on the async record —
  conflicting messages reach common destinations in one relative order
  even though the schedule is asynchronous;
* **verdict maps**: the violation-count map of the async run equals the
  round run's, fault mix by fault mix.

Wall-clock nondeterminism is tolerated (round *counts* may differ);
property violations are not.  Crash times deliberately avoid ``t = 1``:
the async clock starts at logical ``t = 1``, so a send scripted at
round 0 is issued at ``t = 1`` there and at ``t = 0`` on the round
backends — a sender crashing exactly at 1 would be alive for one and
dead for the other by construction, which is a modelling corner, not a
disagreement (see DESIGN.md §14).
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.groups import paper_figure1_topology
from repro.props.batch import batch_verdicts, verdicts_ok
from repro.workloads import ScenarioSpec, run_scenario
from repro.workloads.runner import random_sends
from repro.workloads.spec import TopologySpec
from repro.workloads.topologies import disjoint_topology

SEEDS = tuple(range(20))

#: The fault mixes every seed is swept under.  ``None`` is the
#: fault-free baseline; the others cover the link axis (delay, drop,
#: dup), the detector axis (sigma / omega noise) and a combined mix.
FAULT_MIXES = {
    "none": None,
    "links": FaultPlan(
        (
            FaultEvent(kind="link_delay", start=1, until=8, amount=2),
            FaultEvent(kind="link_drop", start=2, until=9, amount=2),
            FaultEvent(kind="link_dup", start=1, until=6, amount=2),
        )
    ),
    "detectors": FaultPlan(
        (
            FaultEvent(kind="sigma_noise", start=2, until=5),
            FaultEvent(kind="omega_late", start=1, until=6, amount=3),
        )
    ),
    "mixed": FaultPlan(
        (
            FaultEvent(kind="link_delay", start=1, until=7, amount=1),
            FaultEvent(kind="link_drop", start=3, until=8, amount=2),
            FaultEvent(kind="omega_late", start=2, until=6, amount=2),
        )
    ),
    # The recovery axis: a healing partition, a flaky-link window and a
    # crash–recovery of p5.  Fate-determined by construction: partition
    # crossings retransmit at heal time, flaky drops carry bounded
    # retransmission deadlines, and the crash_recover victim goes down
    # at t=0 (dead-from-start on the round *and* the async clock — the
    # t=1 corner of the module docstring cannot split the backends) and
    # rejoins as a correct process that must deliver everything.
    "recovery": FaultPlan(
        (
            FaultEvent(kind="partition", start=3, until=7, targets=(4,)),
            FaultEvent(kind="link_flaky", start=2, until=6, amount=2),
            FaultEvent(kind="crash_recover", start=0, until=8, targets=(5,)),
        )
    ),
}

FIGURE1 = TopologySpec.capture(paper_figure1_topology())
FIGURE1_TOPO = paper_figure1_topology()
DISJOINT = TopologySpec.capture(disjoint_topology(3, group_size=3))
DISJOINT_TOPO = disjoint_topology(3, group_size=3)


def _crashes_for(seed: int) -> tuple:
    """A seed-derived crash schedule that keeps every quorum alive.

    On Figure 1 only p4/p5 belong exclusively to the size-3 groups, so
    they are the safe victims.  Crash times alternate between 0 (dead
    from the start) and 4 (mid-run); never 1 (the async clock's first
    instant — see the module docstring).
    """
    phase = seed % 4
    if phase == 0:
        return ()
    if phase == 1:
        return ((5, 0),)
    if phase == 2:
        return ((4, 4),)
    return ((5, 5),)


def _deliveries(result) -> list:
    return sorted(
        (e.process.name, str(e.message.mid)) for e in result.record.deliveries
    )


def _verdicts(result) -> dict:
    return batch_verdicts(result.record)


def _kernel_safe_crashes(seed: int) -> tuple:
    """Crash schedules whose delivery sets are fate-determined.

    A sender that crashes *mid-run* may or may not get its in-flight
    message delivered — both outcomes satisfy §2.2, and which one
    happens depends on the schedule.  Engine-vs-async still agree there
    (same protocol state machine, and the suite checks it), but the
    kernel is a different implementation, so its comparison sticks to
    no crashes or crashes at 0 (a dead-from-the-start sender is simply
    skipped by every backend).
    """
    return () if seed % 2 == 0 else ((4, 0),)


def _spec(
    topology, seed: int, plan, backend: str, topo_live, crashes
) -> ScenarioSpec:
    return ScenarioSpec(
        topology=topology,
        crashes=crashes,
        sends=tuple(random_sends(topo_live, count=4, seed=seed)),
        seed=seed,
        max_rounds=400,
        backend=backend,
        faults=plan,
    )


class TestEngineVsAsync:
    """Figure 1 (intersecting groups): Algorithm 1 proper, both drivers."""

    @pytest.mark.parametrize("mix", sorted(FAULT_MIXES))
    def test_twenty_seeds_agree(self, mix):
        plan = FAULT_MIXES[mix]
        for seed in SEEDS:
            crashes = _crashes_for(seed)
            engine = run_scenario(
                _spec(FIGURE1, seed, plan, "engine", FIGURE1_TOPO, crashes)
            )
            asynch = run_scenario(
                _spec(FIGURE1, seed, plan, "async", FIGURE1_TOPO, crashes)
            )
            assert engine.quiescent and asynch.quiescent, (mix, seed)
            assert _deliveries(engine) == _deliveries(asynch), (mix, seed)
            assert _verdicts(engine) == _verdicts(asynch), (mix, seed)
            assert verdicts_ok(_verdicts(asynch)), (mix, seed)
            # Skip accounting must agree too: a sender alive for one
            # backend but dead for the other is exactly the t=1 corner
            # the crash schedule avoids.
            assert sorted(s.sender for s in engine.skipped_sends) == sorted(
                s.sender for s in asynch.skipped_sends
            ), (mix, seed)

    def test_round_counts_may_differ_but_sets_never(self):
        """Wall-clock nondeterminism shows up as differing round counts
        across delay models — the tolerated axis — while delivery sets
        stay pinned."""
        fingerprints = set()
        rounds = set()
        for dm in (
            ("fixed", 0.5),
            ("uniform", 0.1, 0.9),
            ("exponential", 1.0, 8.0),
        ):
            spec = ScenarioSpec(
                topology=FIGURE1,
                sends=tuple(random_sends(FIGURE1_TOPO, count=4, seed=3)),
                seed=3,
                max_rounds=400,
                backend="async",
                delay_model=dm,
            )
            result = run_scenario(spec)
            assert result.quiescent
            fingerprints.add(tuple(_deliveries(result)))
            rounds.add(result.rounds)
        assert len(fingerprints) == 1
        # Not asserted: len(rounds) > 1 — equal counts are legal too.


class TestKernelVsAsync:
    """Disjoint groups: the Appendix-A kernel vs the async engine run.

    The kernel synthesizes its record from replicated-log applies, so
    agreement here pins the async backend against a *different
    implementation*, not just a different driver.
    """

    @pytest.mark.parametrize("mix", ("none", "links", "recovery"))
    def test_twenty_seeds_agree(self, mix):
        plan = FAULT_MIXES[mix]
        for seed in SEEDS:
            crashes = _kernel_safe_crashes(seed)
            kernel = run_scenario(
                _spec(DISJOINT, seed, plan, "kernel", DISJOINT_TOPO, crashes)
            )
            asynch = run_scenario(
                _spec(DISJOINT, seed, plan, "async", DISJOINT_TOPO, crashes)
            )
            assert kernel.quiescent and asynch.quiescent, (mix, seed)
            assert _deliveries(kernel) == _deliveries(asynch), (mix, seed)
            assert _verdicts(kernel) == _verdicts(asynch), (mix, seed)
            assert verdicts_ok(_verdicts(asynch)), (mix, seed)
