"""The ``backend="async"`` execution backend (spec schema v5).

Covers the runner dispatch, the spec v5 JSON round trip (with v4
backward compatibility and spec-hash pinning), the seeded virtual-clock
determinism contract that makes async counterexamples replayable under
ddmin/repro files, the Campaign ``delay_models`` axis, and a bounded
wall-clock smoke run.
"""

from __future__ import annotations

import signal

import pytest

from repro.campaign.grid import Campaign, case
from repro.faults.plan import FaultEvent, FaultPlan
from repro.faults.shrink import (
    PlanShrinker,
    load_repro,
    replay_repro,
    repro_payload,
    write_repro,
)
from repro.groups import paper_figure1_topology
from repro.model.errors import SimulationError
from repro.props.batch import batch_verdicts, verdicts_ok
from repro.workloads import ScenarioSpec, Send, run_scenario
from repro.workloads.spec import SPEC_SCHEMA_VERSION, TopologySpec

TOPO = TopologySpec.capture(paper_figure1_topology())
SENDS = (Send(1, "g1", 0), Send(2, "g2", 1), Send(1, "g3", 2), Send(4, "g4", 3))


def async_spec(**overrides):
    base = dict(
        topology=TOPO, sends=SENDS, seed=11, backend="async", max_rounds=400
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def trace(result):
    """Full delivery trace including times — the determinism fingerprint."""
    return [
        (e.time, e.process.name, str(e.message.mid))
        for e in result.record.deliveries
    ]


class timeout_guard:
    """SIGALRM-based hard timeout: a liveness bug fails, not hangs."""

    def __init__(self, seconds: int) -> None:
        self.seconds = seconds

    def __enter__(self):
        def expired(signum, frame):
            raise TimeoutError(f"test exceeded {self.seconds}s wall clock")

        self._previous = signal.signal(signal.SIGALRM, expired)
        signal.alarm(self.seconds)
        return self

    def __exit__(self, *exc):
        signal.alarm(0)
        signal.signal(signal.SIGALRM, self._previous)
        return False


class TestAsyncBackend:
    def test_delivers_and_satisfies_properties(self):
        result = run_scenario(async_spec())
        assert result.backend == "async"
        assert result.system is not None and result.kernel is None
        assert result.quiescent and not result.truncated
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))

    def test_crashed_sender_is_skipped_not_fatal(self):
        result = run_scenario(
            async_spec(crashes=((5, 0),), sends=(Send(5, "g4", 2), *SENDS))
        )
        assert [s.sender for s in result.skipped_sends] == [5]
        assert result.quiescent
        assert verdicts_ok(batch_verdicts(result.record))

    def test_survives_mid_run_crash(self):
        result = run_scenario(async_spec(crashes=((4, 4),)))
        assert result.quiescent
        assert verdicts_ok(batch_verdicts(result.record))

    @pytest.mark.parametrize(
        "dm",
        [
            ("fixed", 0.5),
            ("uniform", 0.1, 0.9),
            ("exponential", 1.0, 8.0),
            ("slow_pairs", 4.0, ((1, 2), (2, 1)), 0.1, 0.9),
        ],
        ids=lambda dm: dm[0],
    )
    def test_every_delay_model_terminates_clean(self, dm):
        result = run_scenario(async_spec(delay_model=dm))
        assert result.quiescent and not result.truncated
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))

    def test_fault_plan_rides_along(self):
        plan = FaultPlan(
            (
                FaultEvent(kind="link_delay", start=1, until=8, amount=2),
                FaultEvent(kind="link_drop", start=2, until=9, amount=2),
            )
        )
        result = run_scenario(async_spec(faults=plan))
        assert result.quiescent
        assert verdicts_ok(batch_verdicts(result.record))

    def test_wall_clock_smoke(self):
        # Real time: bounded by the guard so a liveness regression
        # fails fast instead of hanging the runner.
        with timeout_guard(60):
            result = run_scenario(
                async_spec(clock="wall", sends=SENDS[:2], max_rounds=600)
            )
        assert result.quiescent
        assert verdicts_ok(batch_verdicts(result.record))


class TestVirtualClockDeterminism:
    """Satellite: seeded virtual-clock mode makes async runs replayable."""

    def test_same_spec_same_trace(self):
        spec = async_spec(delay_model=("exponential", 1.0, 8.0))
        first = run_scenario(spec)
        second = run_scenario(spec)
        assert trace(first) == trace(second)
        assert first.rounds == second.rounds
        assert first.quiescent == second.quiescent

    def test_seed_moves_the_schedule(self):
        # Different seeds redraw the latency stream; delivery *sets*
        # stay pinned even when the interleaving moves.
        a = run_scenario(async_spec(seed=1))
        b = run_scenario(async_spec(seed=2))
        assert sorted(t[1:] for t in trace(a)) == sorted(
            t[1:] for t in trace(b)
        )

    def test_repro_file_replays_exactly(self, tmp_path):
        plan = FaultPlan(
            (FaultEvent(kind="link_drop", start=2, until=9, amount=2),)
        )
        spec = async_spec(faults=plan)
        payload = repro_payload(spec, plan, plan)
        path = tmp_path / "repro.json"
        write_repro(str(path), payload)
        loaded = load_repro(str(path))
        assert loaded["triage"]["backend"] == "async"
        fresh = replay_repro(loaded)
        assert fresh["verdicts"] == payload["verdicts"]
        assert fresh["truncated"] == payload["truncated"]

    def test_ddmin_runs_over_async_specs(self):
        # The shrinker only needs a deterministic predicate; virtual
        # clock runs qualify.  Predicate: "the plan still drops a
        # datagram", which ddmin minimizes to the single drop event.
        plan = FaultPlan(
            (
                FaultEvent(kind="link_delay", start=1, until=6, amount=1),
                FaultEvent(kind="link_drop", start=2, until=9, amount=2),
                FaultEvent(kind="sigma_noise", start=2, until=4),
            )
        )

        def still_drops(spec: ScenarioSpec) -> bool:
            result = run_scenario(spec)
            assert result.quiescent
            return bool(
                result.injector is not None
                and result.injector.stats["dropped"] > 0
            )

        shrinker = PlanShrinker(async_spec(faults=plan), violates=still_drops)
        minimal = shrinker.shrink(plan)
        assert len(minimal) == 1
        assert minimal.events[0].kind == "link_drop"


class TestSpecSchemaV5:
    def test_schema_version(self):
        # v5 added the async axes below; v6 added the quirks axis
        # (tests/workloads/test_spec_quirks.py).
        assert SPEC_SCHEMA_VERSION == 6

    def test_json_round_trip(self):
        spec = async_spec(
            delay_model=("slow_pairs", 4.0, ((1, 2), (2, 1)), 0.1, 0.9),
            clock="wall",
        )
        loaded = ScenarioSpec.from_json(spec.to_json())
        assert loaded == spec
        assert loaded.spec_hash() == spec.spec_hash()

    def test_old_json_loads_unchanged(self):
        # A pre-v5 payload has no delay_model/clock keys.
        body = ScenarioSpec(topology=TOPO, sends=SENDS, seed=3).to_json()
        del body["delay_model"]
        body.pop("clock", None)
        loaded = ScenarioSpec.from_json(body)
        assert loaded.delay_model is None
        assert loaded.clock == "virtual"

    def test_spec_hash_pinned_for_pre_v5_specs(self):
        # Defaults must not move any existing content address: the hash
        # body drops delay_model=None and clock="virtual" entirely.
        spec = ScenarioSpec(topology=TOPO, sends=SENDS, seed=3)
        explicit = ScenarioSpec(
            topology=TOPO, sends=SENDS, seed=3, delay_model=None, clock="virtual"
        )
        assert spec.spec_hash() == explicit.spec_hash()

    def test_delay_model_and_clock_move_the_hash(self):
        base = async_spec()
        assert (
            async_spec(delay_model=("fixed", 0.5)).spec_hash()
            != base.spec_hash()
        )
        assert async_spec(clock="wall").spec_hash() != base.spec_hash()

    def test_delay_model_is_canonicalized(self):
        # JSON round trips turn tuples into lists; both spell one spec.
        a = async_spec(delay_model=["uniform", 0.1, 0.9])
        b = async_spec(delay_model=("uniform", 0.1, 0.9))
        assert a.delay_model == b.delay_model == ("uniform", 0.1, 0.9)
        assert a.spec_hash() == b.spec_hash()

    def test_bad_delay_model_fails_at_capture(self):
        with pytest.raises(SimulationError):
            async_spec(delay_model=("warp", 9))
        with pytest.raises(SimulationError):
            async_spec(clock="sundial")


class TestCampaignDelayAxis:
    def _campaign(self, **overrides):
        base = dict(
            name="axis",
            cases=(
                case(
                    "fig1",
                    paper_figure1_topology(),
                    sends=(Send(1, "g1", 0),),
                ),
            ),
            backends=("engine", "async"),
            delay_models=(None, ("exponential", 1.0, 8.0)),
        )
        base.update(overrides)
        return Campaign(**base)

    def test_only_async_cells_expand_over_delay_models(self):
        specs = self._campaign().specs()
        engine = [s for s in specs if s.backend == "engine"]
        asynch = [s for s in specs if s.backend == "async"]
        assert len(engine) == 1 and engine[0].delay_model is None
        assert [s.delay_model for s in asynch] == [
            None,
            ("exponential", 1.0, 8.0),
        ]

    def test_labels_name_the_model(self):
        labels = [s.name for s in self._campaign().specs()]
        assert labels == [
            "fig1:s0:vanilla:engine",
            "fig1:s0:vanilla:async:d-default",
            "fig1:s0:vanilla:async:d-exponential",
        ]

    def test_default_axis_keeps_manifest_and_hash(self):
        plain = self._campaign(delay_models=(None,))
        assert "delay_models" not in plain.to_json()
        swept = self._campaign()
        assert "delay_models" in swept.to_json()
        assert plain.campaign_hash() != swept.campaign_hash()

    def test_axis_canonicalizes_list_spelling(self):
        a = self._campaign(delay_models=(["exponential", 1.0, 8.0],))
        b = self._campaign(delay_models=(("exponential", 1.0, 8.0),))
        assert a.campaign_hash() == b.campaign_hash()
