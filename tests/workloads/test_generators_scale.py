"""Topology generators at 100x scale, and the v4 generator-form specs.

The batching/scale PR's topology claims, pinned as invariants at
``k >= 200``: every generator constructs hundreds of groups in
milliseconds, the cyclicity *class* of each shape is what the paper
says it is (rings: one family; chains/disjoint/sparse-overlap: none;
hubs: too dense to enumerate but trivially hamiltonian), and the
intersection graphs stay sparse where the output-sensitive cycle sweep
needs them to.  Plus the spec-addressable API: a recipe round-trips
through JSON unchanged and its scenario hash is stable — the committed
constants below must never drift silently (re-pin them only with a
changelog entry, they are campaign cache keys).
"""

import json

import pytest

from repro.groups.families import intersection_adjacency
from repro.model.errors import SimulationError, TopologyError
from repro.workloads import (
    GENERATORS,
    ScenarioSpec,
    TopologySpec,
    build_generator,
    chain_topology,
    disjoint_topology,
    hub_topology,
    ring_topology,
    sparse_overlap_topology,
)

K = 200


def _degrees(topology):
    adjacency = intersection_adjacency(topology.groups)
    return [len(neighbors) for neighbors in adjacency.values()]


class TestGeneratorInvariantsAtScale:
    def test_ring_200_counts_and_single_cyclic_family(self):
        topo = ring_topology(K)
        assert len(topo.processes) == K
        assert len(topo.groups) == K
        assert all(d == 2 for d in _degrees(topo))
        families = topo.cyclic_families()
        assert len(families) == 1
        assert set(families[0]) == set(topo.groups)

    def test_chain_200_counts_and_no_cyclic_families(self):
        topo = chain_topology(K)
        assert len(topo.processes) == K + 1
        assert len(topo.groups) == K
        assert max(_degrees(topo)) == 2  # a path: end groups have degree 1
        assert topo.cyclic_families() == ()

    def test_disjoint_200_is_edgeless(self):
        topo = disjoint_topology(K, group_size=3)
        assert len(topo.processes) == 3 * K
        assert len(topo.groups) == K
        assert all(d == 0 for d in _degrees(topo))
        assert topo.cyclic_families() == ()

    def test_hub_200_is_hamiltonian_but_unenumerable(self):
        # K200 intersection graph: the complete-graph certificate settles
        # hamiltonicity instantly, while exhaustive family enumeration
        # must refuse (2^200 families) instead of hanging.
        from repro.groups.families import has_hamiltonian_cycle

        topo = hub_topology(K)
        assert len(topo.groups) == K
        adjacency = intersection_adjacency(topo.groups)
        assert all(d == K - 1 for d in _degrees(topo))
        assert has_hamiltonian_cycle(adjacency)
        with pytest.raises(TopologyError):
            topo.cyclic_families()

    def test_sparse_overlap_200_stays_sparse_and_acyclic(self):
        topo = sparse_overlap_topology(K, group_size=3, seed=7)
        assert len(topo.groups) == K
        # Each overlap saves exactly one process over the disjoint layout.
        overlaps = 3 * K - len(topo.processes)
        assert 0 < overlaps < K
        # Consecutive-only sharing: a disjoint union of paths, degree <= 2.
        assert max(_degrees(topo)) <= 2
        assert topo.cyclic_families() == ()

    def test_sparse_overlap_is_seeded(self):
        a = sparse_overlap_topology(K, seed=3)
        b = sparse_overlap_topology(K, seed=3)
        c = sparse_overlap_topology(K, seed=4)
        as_map = lambda t: {  # noqa: E731
            g.name: tuple(sorted(p.index for p in g.members)) for g in t.groups
        }
        assert as_map(a) == as_map(b)
        assert as_map(a) != as_map(c)


class TestGeneratorRegistry:
    def test_every_registered_kind_builds(self):
        recipes = {
            "ring": {"k": K},
            "chain": {"k": K},
            "disjoint": {"k": K},
            "hub": {"k": K},
            "random": {"seed": 1, "process_count": 40, "group_count": 20},
            "sparse_overlap": {"k": K},
        }
        assert set(recipes) == set(GENERATORS)
        for kind, params in recipes.items():
            topology = build_generator({"kind": kind, **params})
            assert len(topology.groups) >= 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown topology generator"):
            build_generator({"kind": "torus", "k": 4})

    def test_missing_kind_rejected(self):
        with pytest.raises(SimulationError, match="kind"):
            build_generator({"k": 4})

    def test_bad_parameters_rejected(self):
        with pytest.raises(SimulationError, match="bad parameters"):
            build_generator({"kind": "ring", "k": 4, "sides": 6})


class TestGeneratorSpecs:
    def test_generator_spec_builds_the_same_topology_as_explicit(self):
        recipe = {"kind": "ring", "k": K}
        by_recipe = TopologySpec.from_generator(recipe).build()
        explicit = TopologySpec.capture(ring_topology(K)).build()
        as_map = lambda t: {  # noqa: E731
            g.name: tuple(sorted(p.index for p in g.members)) for g in t.groups
        }
        assert as_map(by_recipe) == as_map(explicit)

    @pytest.mark.parametrize(
        "recipe",
        [
            {"kind": "ring", "k": K},
            {"kind": "sparse_overlap", "k": K, "group_size": 4, "seed": 9},
            {"kind": "random", "seed": 2, "process_count": 30, "group_count": 10},
        ],
    )
    def test_round_trip_through_json(self, recipe):
        spec = TopologySpec.from_generator(recipe)
        assert spec.groups == ()
        payload = json.loads(json.dumps(spec.to_json()))
        assert TopologySpec.from_json(payload) == spec
        assert payload["generator"] == recipe

    def test_hash_ignores_recipe_key_order(self):
        a = ScenarioSpec(topology=TopologySpec.from_generator({"kind": "ring", "k": K}))
        b = ScenarioSpec(
            topology=TopologySpec(
                process_count=K, generator=tuple(sorted({"k": K, "kind": "ring"}.items()))
            )
        )
        assert a.spec_hash() == b.spec_hash()

    def test_generator_and_explicit_specs_hash_differently(self):
        # The recipe is the content, not the expansion: addressing the
        # same topology by map and by recipe are distinct scenarios.
        by_recipe = ScenarioSpec(topology=TopologySpec.from_generator({"kind": "ring", "k": K}))
        explicit = ScenarioSpec(topology=TopologySpec.capture(ring_topology(K)))
        assert by_recipe.spec_hash() != explicit.spec_hash()

    def test_generator_spec_hash_is_frozen(self):
        # Campaign caches key on this address: silent drift invalidates
        # every stored sweep.  Re-pin only with a changelog entry.
        spec = ScenarioSpec(
            topology=TopologySpec.from_generator({"kind": "ring", "k": K})
        )
        assert spec.spec_hash() == (
            "c4b001d866956e5dde6dcdd70ee9539fce633366fd5195373394ba3958afce7d"
        )

    def test_explicit_map_specs_still_load_v1_payloads(self):
        # A v1-style payload (no generator key) must keep round-tripping.
        topo = chain_topology(3)
        spec = TopologySpec.capture(topo)
        payload = json.loads(json.dumps(spec.to_json()))
        assert "generator" not in payload
        assert TopologySpec.from_json(payload) == spec
