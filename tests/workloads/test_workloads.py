"""Tests for topology generators and the scenario runner."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok
from repro.workloads import (
    Send,
    chain_topology,
    disjoint_topology,
    hub_topology,
    random_sends,
    random_topology,
    ring_topology,
    run_scenario,
)


class TestGenerators:
    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            ring_topology(2)

    def test_ring_structure(self):
        topo = ring_topology(5)
        assert len(topo.groups) == 5
        assert len(topo.processes) == 5
        assert len(topo.intersecting_pairs()) == 5

    def test_chain_structure(self):
        topo = chain_topology(4, group_size=3)
        assert len(topo.groups) == 4
        # Consecutive groups share exactly group_size - 1 ... no: stride
        # construction shares one process between neighbours.
        pairs = topo.intersecting_pairs()
        assert len(pairs) == 3
        assert topo.cyclic_families() == ()

    def test_chain_minimum(self):
        with pytest.raises(ValueError):
            chain_topology(1)

    def test_disjoint_structure(self):
        topo = disjoint_topology(4, group_size=3)
        assert len(topo.processes) == 12
        assert topo.intersecting_pairs() == ()

    def test_disjoint_minimum(self):
        with pytest.raises(ValueError):
            disjoint_topology(0)

    def test_hub_shares_p1(self):
        topo = hub_topology(4)
        p1 = sorted(topo.processes)[0]
        for group in topo.groups:
            assert p1 in group

    def test_hub_minimum(self):
        with pytest.raises(ValueError):
            hub_topology(1)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10**6))
    def test_random_topology_is_well_formed(self, seed):
        topo = random_topology(seed)
        assert 1 <= len(topo.groups) <= 4
        for group in topo.groups:
            assert group.members <= topo.processes


class TestSendScripts:
    def test_random_sends_respect_closed_model(self):
        topo = ring_topology(4)
        for send in random_sends(topo, 20, seed=3):
            group = topo.group(send.group)
            assert any(p.index == send.sender for p in group.members)

    def test_random_sends_are_seeded(self):
        topo = ring_topology(4)
        assert random_sends(topo, 10, seed=5) == random_sends(topo, 10, seed=5)


class TestScenarioRunner:
    def test_sends_at_later_rounds_are_issued(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        result = run_scenario(
            topo,
            failure_free(pset(procs)),
            [Send(1, "g1", 0), Send(3, "g2", 4)],
            seed=1,
        )
        assert len(result.messages) == 2
        assert result.delivered_everywhere()
        assert_run_ok(result.record)

    def test_crashed_senders_are_skipped(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        pattern = crash_pattern(pset(procs), {procs[0]: 1})
        result = run_scenario(
            topo, pattern, [Send(1, "g1", 5)], seed=2
        )
        assert result.skipped_sends
        assert result.messages == []

    def test_unknown_sender_index_rejected(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        with pytest.raises(ValueError):
            run_scenario(
                topo,
                failure_free(pset(procs)),
                [Send(9, "g1", 0)],
            )

    def test_empty_script_is_fine(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        result = run_scenario(topo, failure_free(pset(procs)), [], seed=3)
        assert result.messages == []
        assert_run_ok(result.record)
