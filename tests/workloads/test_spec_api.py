"""The redesigned run_scenario API: spec form, shim, truncation clamp."""

import warnings

import pytest

from repro.model import failure_free, make_processes, pset
from repro.workloads import (
    ScenarioSpec,
    Send,
    chain_topology,
    run_scenario,
)


def _fixture():
    topo = chain_topology(2)
    procs = make_processes(3)
    return topo, failure_free(pset(procs)), [Send(1, "g1", 0), Send(3, "g2", 4)]


class TestSpecForm:
    def test_spec_and_legacy_forms_agree(self):
        topo, pattern, sends = _fixture()
        legacy = run_scenario(topo, pattern, sends, seed=2)
        spec = ScenarioSpec.capture(topo, pattern, sends, seed=2)
        modern = run_scenario(spec)
        assert modern.rounds == legacy.rounds
        assert modern.record.deliveries == legacy.record.deliveries
        assert modern.record.step_counts() == legacy.record.step_counts()

    def test_result_self_describes_its_spec(self):
        topo, pattern, sends = _fixture()
        legacy = run_scenario(topo, pattern, sends, seed=2)
        assert legacy.spec is not None
        assert legacy.spec == ScenarioSpec.capture(topo, pattern, sends, seed=2)
        modern = run_scenario(legacy.spec)
        assert modern.spec == legacy.spec
        row = modern.to_row()
        assert row["spec_hash"] == legacy.spec.spec_hash()
        assert row["status"] == "ok"

    def test_spec_form_rejects_extra_arguments(self):
        topo, pattern, sends = _fixture()
        spec = ScenarioSpec.capture(topo, pattern, sends)
        with pytest.raises(TypeError):
            run_scenario(spec, pattern)
        with pytest.raises(TypeError):
            run_scenario(spec, seed=5)

    def test_spec_form_accepts_trace_path(self, tmp_path):
        topo, pattern, sends = _fixture()
        spec = ScenarioSpec.capture(topo, pattern, sends)
        path = str(tmp_path / "trace.jsonl")
        run_scenario(spec, trace_path=path)
        from repro.metrics import read_jsonl

        records = read_jsonl(path)
        assert records[0]["type"] == "meta"
        assert records[0]["spec_hash"] == spec.spec_hash()


class TestLegacyPositionalRemoval:
    def test_positional_tuning_raises_with_migration_hint(self):
        topo, pattern, sends = _fixture()
        with pytest.raises(TypeError, match="ScenarioSpec"):
            run_scenario(topo, pattern, sends, 2, "vanilla", 0, 0, 300)

    def test_keyword_tuning_does_not_warn(self):
        topo, pattern, sends = _fixture()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            run_scenario(topo, pattern, sends, seed=1, scheduling="event")

    def test_single_positional_extra_rejected(self):
        topo, pattern, sends = _fixture()
        with pytest.raises(TypeError, match="positional"):
            run_scenario(topo, pattern, sends, 2, seed=3)

    def test_missing_scenario_arguments_rejected(self):
        topo, pattern, _ = _fixture()
        with pytest.raises(TypeError):
            run_scenario(topo, pattern)


class TestTruncationClamp:
    def test_issue_loop_consuming_budget_clamps_drain_to_zero(self):
        # The last send lands on the final budgeted round: the issue loop
        # eats the whole budget and the drain must receive 0, not -1.
        topo, pattern, _ = _fixture()
        result = run_scenario(
            topo, pattern, [Send(1, "g1", 4)], seed=1, max_rounds=4
        )
        assert result.unsent_sends  # never reached round 4's issuance
        assert result.truncated
        assert result.rounds == 4

    def test_exhausted_drain_budget_surfaces_as_truncated(self):
        topo, pattern, _ = _fixture()
        result = run_scenario(
            topo, pattern, [Send(1, "g1", 4)], seed=1, max_rounds=5
        )
        assert result.unsent_sends == []  # issued on the last round
        assert result.truncated  # 0 drain rounds left: no quiescence
        assert not result.delivered_everywhere()

    def test_complete_run_is_not_truncated(self):
        topo, pattern, sends = _fixture()
        result = run_scenario(topo, pattern, sends, seed=1)
        assert not result.truncated
        assert result.delivered_everywhere()

    def test_truncated_run_shows_in_row(self):
        topo, pattern, _ = _fixture()
        row = run_scenario(
            topo, pattern, [Send(1, "g1", 4)], seed=1, max_rounds=5
        ).to_row()
        assert row["truncated"] is True
        assert row["delivered_everywhere"] is False
