"""The ``quirks`` axis (spec schema v6) and the supersede-wait quirk.

A quirk re-enables a retired code path so a *fixed* bug stays
reachable as a search target: the explorer's rediscovery gate
(``tests/explore/test_rediscovery.py``) needs the superseded-proposer
stall to exist somewhere.  These tests pin the axis's contract — schema
round-trip, content-address stability for quirk-free specs, validation
— and the quirk's behaviour at the workloads layer: a quirked kernel
run under late-Omega rotation stalls forever, the fixed path and the
quirk-free spec do not.
"""

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.model.errors import SimulationError
from repro.substrates.consensus import ConsensusAutomaton
from repro.workloads.runner import Send, run_scenario
from repro.workloads.spec import KNOWN_QUIRKS, ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))


def kernel_spec(**overrides):
    base = dict(
        topology=TOPO, sends=SENDS, backend="kernel", max_rounds=240
    )
    base.update(overrides)
    return ScenarioSpec(**base)


#: The PR 4 trigger: a late Omega rotating suspicion through g1.
OMEGA_ROTATION = FaultPlan(
    (FaultEvent(kind="omega_late", group="g1", until=24),)
)


class TestQuirksAxis:
    def test_round_trips_through_json(self):
        spec = kernel_spec(quirks=("supersede-wait",))
        twin = ScenarioSpec.from_json(spec.to_json())
        assert twin == spec
        assert twin.quirks == ("supersede-wait",)

    def test_quirk_free_specs_hash_as_they_did_pre_v6(self):
        # The empty quirk tuple is popped from the hash body, so every
        # pre-v6 content address (cached rows, corpus entries, repro
        # files) stays valid.
        spec = kernel_spec()
        assert "quirks" not in spec.to_json() or spec.to_json()["quirks"] == []
        legacy_body = {
            k: v for k, v in spec.to_json().items() if k != "quirks"
        }
        twin = ScenarioSpec.from_json(legacy_body)
        assert twin.spec_hash() == spec.spec_hash()

    def test_quirks_are_part_of_the_content_address(self):
        assert (
            kernel_spec(quirks=("supersede-wait",)).spec_hash()
            != kernel_spec().spec_hash()
        )

    def test_quirks_are_sorted_and_deduplicated(self):
        spec = kernel_spec(
            quirks=("supersede-wait", "supersede-wait")
        )
        assert spec.quirks == ("supersede-wait",)

    def test_unknown_quirks_fail_loudly(self):
        with pytest.raises(SimulationError):
            kernel_spec(quirks=("tabs-vs-spaces",))

    def test_known_quirks_is_the_registry(self):
        assert "supersede-wait" in KNOWN_QUIRKS


class TestSupersedeWait:
    def test_quirked_run_stalls_under_omega_rotation(self):
        result = run_scenario(
            kernel_spec(
                quirks=("supersede-wait",), faults=OMEGA_ROTATION
            )
        )
        assert result.truncated  # the superseded proposer waits forever

    def test_fixed_path_quiesces_under_the_same_rotation(self):
        result = run_scenario(kernel_spec(faults=OMEGA_ROTATION))
        assert not result.truncated
        result.assert_ok()

    def test_quirk_alone_is_benign(self):
        result = run_scenario(kernel_spec(quirks=("supersede-wait",)))
        assert not result.truncated
        result.assert_ok()

    def test_consensus_rejects_unknown_supersede_modes(self):
        from repro.model import make_processes, pset

        scope = pset(make_processes(3))
        pid = next(iter(scope)).index
        with pytest.raises(ValueError):
            ConsensusAutomaton(pid, scope, supersede="retry-forever")
