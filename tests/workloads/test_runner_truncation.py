"""Regression tests: ``run_scenario`` must not silently drop scripted sends.

On the seed code, a script whose later sends lay beyond ``max_rounds``
was silently truncated: the runner broke out of the issue loop, the
sends were never multicast, and ``delivered_everywhere()`` happily
returned True for the few messages that *were* issued.  A truncated run
proves nothing, so the runner now reports the leftovers in
``unsent_sends`` and ``delivered_everywhere()`` refuses success.
"""

from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.workloads import Send, chain_topology, run_scenario


def _topo_and_pattern():
    topo = chain_topology(2)
    procs = make_processes(3)
    return topo, procs, failure_free(pset(procs))


class TestTruncation:
    def test_truncated_script_reports_unsent_sends(self):
        topo, _, pattern = _topo_and_pattern()
        late = Send(3, "g2", at_round=500)
        result = run_scenario(
            topo,
            pattern,
            [Send(1, "g1", 0), late],
            seed=1,
            max_rounds=10,
        )
        assert result.unsent_sends == [late]
        # The late send was never issued, not merely undelivered.
        assert len(result.messages) == 1

    def test_truncated_script_is_not_a_success(self):
        topo, _, pattern = _topo_and_pattern()
        result = run_scenario(
            topo,
            pattern,
            [Send(1, "g1", 0), Send(3, "g2", 500)],
            seed=1,
            max_rounds=10,
        )
        # Seed bug: this returned True because only the issued message
        # was checked.  A run that never issued the whole script must
        # not report success.
        assert not result.delivered_everywhere()

    def test_unsent_and_skipped_are_disjoint(self):
        topo, procs, _ = _topo_and_pattern()
        pattern = crash_pattern(pset(procs), {procs[0]: 1})
        dead = Send(1, "g1", at_round=5)  # sender crashed at round 1
        late = Send(3, "g2", at_round=500)
        result = run_scenario(
            topo, pattern, [dead, late], seed=2, max_rounds=10
        )
        assert result.skipped_sends == [dead]
        assert result.unsent_sends == [late]

    def test_complete_script_has_no_unsent_sends(self):
        topo, _, pattern = _topo_and_pattern()
        result = run_scenario(
            topo,
            pattern,
            [Send(1, "g1", 0), Send(3, "g2", 4)],
            seed=1,
        )
        assert result.unsent_sends == []
        assert result.delivered_everywhere()
