"""Unit coverage for the async driver's parts: delay models, the
virtual clock, the transport, and the driver's validation surface.

The end-to-end semantics (delivery-set agreement with the round
backends, determinism, fault-plan mapping) live in
``tests/workloads/test_async_backend.py`` and
``tests/workloads/test_async_differential.py``; this file pins the
pieces in isolation so a regression names its layer.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.model.errors import SimulationError
from repro.runtime.async_driver import (
    AsyncDriver,
    AsyncTransport,
    derive_async_seed,
)
from repro.runtime.clock import VirtualClock
from repro.runtime.delay import (
    DEFAULT_DELAY_SPEC,
    ExponentialDelay,
    FixedDelay,
    SlowPairsDelay,
    UniformDelay,
    build_delay_model,
    canonical_delay_spec,
    parse_delay_model,
)


class TestDelayModels:
    def test_fixed_is_constant(self):
        model = FixedDelay(0.5)
        rng = random.Random(0)
        assert {model.latency(1, 2, rng) for _ in range(10)} == {0.5}
        assert model.spec() == ("fixed", 0.5)

    def test_uniform_stays_in_range(self):
        model = UniformDelay(0.2, 0.8)
        rng = random.Random(1)
        draws = [model.latency(1, 2, rng) for _ in range(200)]
        assert all(0.2 <= d <= 0.8 for d in draws)
        assert model.spec() == ("uniform", 0.2, 0.8)

    def test_exponential_is_capped(self):
        model = ExponentialDelay(mean=1.0, cap=2.0)
        rng = random.Random(2)
        draws = [model.latency(1, 2, rng) for _ in range(500)]
        assert max(draws) <= 2.0
        # The cap actually binds somewhere in 500 draws of mean 1.
        assert any(d == 2.0 for d in draws)

    def test_slow_pairs_multiplies_only_named_pairs(self):
        model = SlowPairsDelay(4.0, [(1, 2)], lo=0.5, hi=0.5)
        rng = random.Random(3)
        assert model.latency(1, 2, rng) == pytest.approx(2.0)
        assert model.latency(2, 1, rng) == pytest.approx(0.5)
        assert model.latency(3, 4, rng) == pytest.approx(0.5)

    @pytest.mark.parametrize(
        "bad",
        [
            ("fixed", -1),
            ("uniform", 0.9, 0.1),
            ("uniform", -0.1, 0.5),
            ("exponential", 0, 8),
            ("slow_pairs", 0.5, ((1, 2),)),
            ("slow_pairs", 4.0, ()),
            ("warp", 1),
            42,
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises((SimulationError, ValueError, TypeError)):
            build_delay_model(bad)

    def test_none_means_default(self):
        assert build_delay_model(None).spec() == DEFAULT_DELAY_SPEC

    def test_canonicalization_normalizes_lists(self):
        assert canonical_delay_spec(["uniform", "0.1", "0.9"]) == (
            "uniform",
            0.1,
            0.9,
        )
        assert canonical_delay_spec(
            ["slow_pairs", 4, [[2, 1], [1, 2]], 0.1, 0.9]
        ) == ("slow_pairs", 4.0, ((1, 2), (2, 1)), 0.1, 0.9)

    def test_parse_cli_forms(self):
        assert parse_delay_model("fixed:0.5") == ("fixed", 0.5)
        assert parse_delay_model("uniform:0.1:0.9") == ("uniform", 0.1, 0.9)
        assert parse_delay_model("exponential:1.0:8") == (
            "exponential",
            1.0,
            8.0,
        )
        assert parse_delay_model("slow_pairs:4:1-2,2-1") == (
            "slow_pairs",
            4.0,
            ((1, 2), (2, 1)),
            0.1,
            0.9,
        )
        assert parse_delay_model("uniform")[0] == "uniform"
        with pytest.raises(SimulationError):
            parse_delay_model("warp:9")


class TestDerivedSeed:
    def test_pure_function_of_seed_and_spec(self):
        spec = ("uniform", 0.1, 0.9)
        assert derive_async_seed(3, spec) == derive_async_seed(3, spec)
        assert derive_async_seed(3, spec) != derive_async_seed(4, spec)
        assert derive_async_seed(3, spec) != derive_async_seed(
            3, ("fixed", 0.5)
        )


class TestVirtualClock:
    def test_sleep_advances_virtual_time_instantly(self):
        loop = asyncio.new_event_loop()
        try:
            VirtualClock().install(loop)
            start = loop.time()
            loop.run_until_complete(asyncio.sleep(1000.0))
            assert loop.time() - start >= 1000.0
        finally:
            loop.close()

    def test_timer_ordering_is_preserved(self):
        loop = asyncio.new_event_loop()
        try:
            VirtualClock().install(loop)
            order = []

            async def scenario():
                loop.call_later(5.0, order.append, "late")
                loop.call_later(1.0, order.append, "early")
                await asyncio.sleep(10.0)

            loop.run_until_complete(scenario())
            assert order == ["early", "late"]
        finally:
            loop.close()


class TestAsyncTransport:
    def _run(self, coro):
        loop = asyncio.new_event_loop()
        try:
            VirtualClock().install(loop)
            return loop.run_until_complete(coro(loop))
        finally:
            loop.close()

    def test_deliver_at_tracks_in_flight(self):
        async def scenario(loop):
            transport = AsyncTransport(loop, ["a", "b"])
            transport.deliver_at(loop.time() + 2.0, "a")
            assert transport.in_flight == 1
            await asyncio.sleep(3.0)
            assert transport.in_flight == 0
            assert transport.delivered == 1
            assert transport.events["a"].is_set()
            assert not transport.events["b"].is_set()

        self._run(scenario)

    def test_wait_consumes_the_wake(self):
        async def scenario(loop):
            transport = AsyncTransport(loop, ["a"])
            transport.deliver_now("a")
            await transport.wait("a", timeout=1.0)
            assert not transport.events["a"].is_set()

        self._run(scenario)

    def test_wait_times_out_quietly(self):
        async def scenario(loop):
            transport = AsyncTransport(loop, ["a"])
            before = loop.time()
            await transport.wait("a", timeout=2.0)
            assert loop.time() - before >= 2.0

        self._run(scenario)

    def test_unknown_destination_is_a_noop(self):
        async def scenario(loop):
            transport = AsyncTransport(loop, ["a"])
            transport.deliver_now("ghost")
            transport.deliver_at(loop.time() + 1.0, "ghost")
            assert transport.in_flight == 0

        self._run(scenario)


class TestDriverValidation:
    def _system(self):
        from repro.core.engine import MulticastSystem
        from repro.groups import paper_figure1_topology
        from repro.model.failures import FailurePattern

        topology = paper_figure1_topology()
        return MulticastSystem(
            topology, FailurePattern(topology.processes, {})
        )

    def test_unknown_clock_raises(self):
        with pytest.raises(SimulationError):
            AsyncDriver(self._system(), clock="sundial")

    def test_nonpositive_round_duration_raises(self):
        with pytest.raises(SimulationError):
            AsyncDriver(self._system(), round_duration=0)

    def test_wake_listener_cleared_after_run(self):
        system = self._system()
        driver = AsyncDriver(system, seed=1)
        outcome = driver.run(max_rounds=50)
        assert system.wake_listener is None
        assert outcome.quiescent
