"""The runtime differential suite: the refactor's byte-identity proof.

``golden.json`` holds fingerprints of every scenario in
:mod:`tests.runtime._scenarios`, produced by the **pre-refactor** engine
and kernel (the loops duplicated in ``MulticastSystem.tick`` and
``Kernel.round`` before the ``repro.runtime.Scheduler`` extraction).
These tests re-run the same scenarios on the current tree and demand:

* **engine, scan mode** — identical :class:`RunRecord` *and* identical
  per-round :class:`TraceRecorder` stream (the trace pins the shuffle
  order, the scan accounting and the quiescence point);
* **engine, event mode** — identical :class:`RunRecord` and round count
  (the RNG-compatibility invariant: the wake-index skips happen *after*
  the full-set shuffle, so the schedule of the processes that do act is
  the scan schedule);
* **kernel, both modes** — identical output queues and message-buffer
  accounting (``sent_count`` / ``received_count`` — this is also the
  satellite guarantee that the crash-time-driven drop schedule changes
  no message count), with scan mode additionally pinned to the exact
  pre-refactor step total.

A failure here means the shared scheduler changed an observable
schedule.  Fix the scheduler — never regenerate ``golden.json`` to make
a failure disappear.
"""

from __future__ import annotations

import json
import os

import pytest

from tests.runtime._scenarios import (
    canonical_hash,
    engine_scenarios,
    kernel_fingerprint,
    kernel_scenarios,
    record_fingerprint,
    trace_fingerprint,
)

GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden.json")
with open(GOLDEN_PATH, encoding="utf-8") as fh:
    GOLDEN = json.load(fh)

ENGINE_RUNS = dict(engine_scenarios())
KERNEL_RUNS = dict(kernel_scenarios())


def test_matrix_meets_acceptance_floor():
    """>= 20 seeds x >= 3 topologies, crashes and participation included."""
    keys = set(GOLDEN["engine"])
    assert len({k.split(":")[3] for k in keys if k.count(":") == 3}) >= 20
    assert len({k.split(":")[1] for k in keys}) >= 4
    assert any(":crash:" in k for k in keys)
    assert any(":participation:" in k for k in keys)
    assert set(ENGINE_RUNS) == keys
    assert set(KERNEL_RUNS) == set(GOLDEN["kernel"])


@pytest.mark.parametrize("key", sorted(GOLDEN["engine"]))
def test_engine_matches_pre_refactor(key):
    golden = GOLDEN["engine"][key]

    scan = ENGINE_RUNS[key]("scan")
    assert canonical_hash(record_fingerprint(scan.record)) == golden["record"]
    assert canonical_hash(trace_fingerprint(scan.tracer)) == golden["trace"]
    assert len(scan.tracer.rounds) == golden["rounds"]

    event = ENGINE_RUNS[key]("event")
    assert canonical_hash(record_fingerprint(event.record)) == golden["record"]
    assert len(event.tracer.rounds) == golden["rounds"]


@pytest.mark.parametrize("key", sorted(GOLDEN["kernel"]))
def test_kernel_matches_pre_refactor(key):
    golden = GOLDEN["kernel"][key]

    scan = KERNEL_RUNS[key](False)
    assert canonical_hash(kernel_fingerprint(scan)) == golden["outputs"]
    assert sum(scan.steps_taken.values()) == golden["steps"]

    event = KERNEL_RUNS[key](True)
    # Outputs AND buffer accounting identical: skipping idle automata
    # and dropping crashed inboxes by schedule change no observable.
    assert canonical_hash(kernel_fingerprint(event)) == golden["outputs"]
    assert sum(event.steps_taken.values()) <= golden["steps"]
