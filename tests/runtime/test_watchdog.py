"""The stall watchdog and the async retransmission policy.

Unit half: :class:`StallWatchdog` fires exactly at its no-progress
window (never during grace, never while the fingerprint moves) and
:class:`RetransmitPolicy` draws deterministic, strictly increasing
backoff ladders.  Integration half: the planted ``supersede-wait``
stall — the retained PR 4 liveness bug — converts from a 240-round
budget burn into a :class:`StallError` carrying the wait-reason
histogram, while the *fixed* protocol under the identical watchdog is
untouched, and a fault-free engine run produces a byte-identical row
with and without the watchdog (the watchdog is a harness concern, not
part of the scenario).
"""

import random

import pytest

from repro.faults.plan import FaultEvent, FaultPlan
from repro.model.errors import SimulationError
from repro.runtime.async_driver import RetransmitPolicy
from repro.runtime.watchdog import StallError, StallWatchdog
from repro.workloads.runner import Send, run_scenario
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))

#: The PR 4 trigger: a late Omega rotating suspicion through g1 makes
#: the quirked proposer wait forever on promises that cannot arrive.
OMEGA_ROTATION = FaultPlan(
    (FaultEvent(kind="omega_late", group="g1", until=24),)
)


def kernel_spec(**overrides):
    base = dict(
        topology=TOPO, sends=SENDS, backend="kernel", max_rounds=240
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestStallWatchdog:
    def test_fires_after_window_of_no_progress(self):
        dog = StallWatchdog(lambda: 0, window=5)
        for t in range(1, 5):
            dog.check(t)
        with pytest.raises(StallError) as err:
            dog.check(5)
        assert err.value.stalled_checks == 5
        assert err.value.at_time == 5

    def test_progress_resets_the_window(self):
        progress = [0]
        dog = StallWatchdog(lambda: progress[0], window=3)
        dog.check(1)
        dog.check(2)
        progress[0] += 1  # progress: the idle streak restarts
        dog.check(3)
        dog.check(4)
        dog.check(5)
        with pytest.raises(StallError):
            dog.check(6)

    def test_grace_period_never_fires(self):
        """Detector-blocked idling during stabilization is convergence,
        not a stall — checks at ``t <= grace`` do not count."""
        dog = StallWatchdog(lambda: 0, window=2, grace=10)
        for t in range(1, 11):
            dog.check(t)
        dog.check(11)
        with pytest.raises(StallError):
            dog.check(12)

    def test_wall_budget_fires_on_a_frozen_clock(self):
        clock = [0.0]
        dog = StallWatchdog(
            lambda: 0, window=1000, wall_budget=5.0, clock=lambda: clock[0]
        )
        dog.check(1)
        clock[0] = 6.0
        with pytest.raises(StallError) as err:
            dog.check(2)
        assert err.value.wall_elapsed == pytest.approx(6.0)
        assert "wall_elapsed" in err.value.to_triage()

    def test_triage_payload_carries_the_histogram(self):
        dog = StallWatchdog(
            lambda: 0,
            window=1,
            wait_reasons=lambda: {"supersede": 7, "idle": 3},
        )
        with pytest.raises(StallError) as err:
            dog.check(1)
        triage = err.value.to_triage()
        assert triage["wait_reasons"] == {"supersede": 7, "idle": 3}
        assert triage["at_time"] == 1
        assert triage["stalled_checks"] == 1

    def test_stop_when_probe_raises_not_stops(self):
        dog = StallWatchdog(lambda: 0, window=1)
        probe = dog.stop_when(lambda: 9)
        with pytest.raises(StallError):
            probe()

    def test_rejects_degenerate_settings(self):
        with pytest.raises(SimulationError):
            StallWatchdog(lambda: 0, window=0)
        with pytest.raises(SimulationError):
            StallWatchdog(lambda: 0, wall_budget=0.0)


class TestRetransmitPolicy:
    def test_offsets_are_deterministic_per_seed(self):
        policy = RetransmitPolicy()
        a = policy.offsets(random.Random(42))
        b = policy.offsets(random.Random(42))
        assert a == b
        assert a != policy.offsets(random.Random(43))

    def test_offsets_are_strictly_increasing_and_bounded(self):
        policy = RetransmitPolicy(base=0.5, factor=2.0, jitter=0.25, budget=4)
        offsets = policy.offsets(random.Random(7))
        assert len(offsets) == policy.budget
        assert all(b > a for a, b in zip(offsets, offsets[1:]))
        assert offsets[0] > 0.0

    def test_rejects_degenerate_settings(self):
        with pytest.raises(SimulationError):
            RetransmitPolicy(base=0.0)
        with pytest.raises(SimulationError):
            RetransmitPolicy(factor=0.5)
        with pytest.raises(SimulationError):
            RetransmitPolicy(jitter=-0.1)
        with pytest.raises(SimulationError):
            RetransmitPolicy(budget=-1)


class TestPlantedStall:
    """The supersede-wait stall under the runner's watchdog."""

    def test_stall_converts_to_stall_error_with_histogram(self):
        spec = kernel_spec(
            quirks=("supersede-wait",), faults=OMEGA_ROTATION
        )
        with pytest.raises(StallError) as err:
            run_scenario(spec, stall_window=100)
        assert err.value.at_time < spec.max_rounds
        assert err.value.stalled_checks >= 100
        assert sum(err.value.wait_reasons.values()) > 0

    def test_without_watchdog_the_stall_burns_the_budget(self):
        result = run_scenario(
            kernel_spec(quirks=("supersede-wait",), faults=OMEGA_ROTATION)
        )
        assert result.rounds == 240
        assert not result.quiescent

    def test_fixed_path_is_untouched_by_the_same_watchdog(self):
        spec = kernel_spec(faults=OMEGA_ROTATION)
        watched = run_scenario(spec, stall_window=100)
        plain = run_scenario(spec)
        assert watched.quiescent and plain.quiescent
        assert watched.rounds == plain.rounds
        assert watched.to_row() == plain.to_row()

    def test_fault_free_engine_row_is_byte_identical_under_watchdog(self):
        """The watchdog is not part of the spec: hashes, rows and
        traces of a healthy run cannot depend on whether it was armed."""
        from repro.groups import paper_figure1_topology
        from repro.workloads.runner import random_sends

        topo = paper_figure1_topology()
        spec = ScenarioSpec(
            topology=TopologySpec.capture(topo),
            sends=tuple(random_sends(topo, count=3, seed=5)),
            seed=5,
            max_rounds=200,
            backend="engine",
        )
        assert (
            run_scenario(spec, stall_window=64).to_row()
            == run_scenario(spec).to_row()
        )


class TestAsyncRetransmission:
    """Seeded retransmission under VirtualClock is a pure function of
    the spec: delivery sets *and* transport counters replay exactly."""

    #: Lossy windows anchored at t=1: the async backend resolves each
    #: consensus instance within one logical round (protocol hops are
    #: fractions of a round), so the whole datagram burst happens at
    #: t=1 and windows opening later never see traffic.  The flaky
    #: jitter spread (``amount=4``) pushes some fair-lossy backstops
    #: past the window close, which is what lets a *clear* early
    #: backoff rung beat them — exercising ``retries_scheduled`` and
    #: ``retries_cancelled``, not just the backstop path.
    RECOVERY = FaultPlan(
        (
            FaultEvent(kind="partition", start=1, until=4, targets=(4,)),
            FaultEvent(kind="link_flaky", start=1, until=3, amount=4),
            FaultEvent(
                kind="crash_recover", start=0, until=8, targets=(5,)
            ),
        )
    )

    def _spec(self):
        return ScenarioSpec(
            topology=TOPO,
            sends=SENDS,
            seed=9,
            max_rounds=400,
            backend="async",
            faults=self.RECOVERY,
        )

    def test_virtual_clock_replay_is_exact(self):
        first = run_scenario(self._spec(), stall_window=150)
        second = run_scenario(self._spec(), stall_window=150)
        assert first.quiescent and second.quiescent
        deliveries = lambda r: sorted(  # noqa: E731
            (e.process.name, str(e.message.mid))
            for e in r.record.deliveries
        )
        assert deliveries(first) == deliveries(second)
        assert first.transport_stats == second.transport_stats

    def test_lossy_run_schedules_and_resolves_retries(self):
        result = run_scenario(self._spec())
        stats = result.transport_stats
        assert stats is not None
        # The plan drops datagrams at t=1 (flaky window + partition
        # cut), so every ladder lands exactly once ("acked"), in-window
        # backoff probes are presumed lost ("retries_lost"), and the
        # spread flaky backstops leave room for clear early rungs.
        assert stats["acked"] > 0
        assert stats["retries_lost"] > 0
        assert stats["retries_scheduled"] > 0
        # An early rung is strictly earlier than the backstop it rides
        # with, so each scheduled retry cancels exactly one rung.
        assert stats["retries_cancelled"] == stats["retries_scheduled"]
        assert result.to_row()["transport"] == stats
