"""Unit tests of the shared :class:`repro.runtime.Scheduler`.

The differential suite (``test_differential.py``) proves the scheduler
reproduces the seed loops on real hosts; these tests pin the contract
itself on stub actors — RNG draw order, skip soundness, full-scan
triggers, quiescence semantics and the tracer accounting — so a future
change that breaks the contract fails here with a readable message, not
just as a hash mismatch.
"""

from __future__ import annotations

import random

import pytest

from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.runtime import Actor, RunOutcome, Scheduler, SystemActor


class CountdownActor(Actor):
    """Fires productively ``n`` times, then reports itself parked."""

    SKIP_WAIT = ("drained",)

    def __init__(self, n, log=None, key=None):
        self.left = n
        self.log = log if log is not None else []
        self.key = key

    def parked(self, t):
        return self.left <= 0

    def fire(self, t, budget=None, parked=None):
        self.log.append((t, self.key))
        if self.left > 0:
            self.left -= 1
            return 1
        return 0

    def wait_reasons(self):
        return ("drained",)


def make(actors, seed=7, scheduling="event", **kwargs):
    return Scheduler(
        actors,
        rng=random.Random(seed),
        tracer=TraceRecorder(),
        is_alive=kwargs.pop("is_alive", lambda _key, _t: True),
        scheduling=scheduling,
        **kwargs,
    )


def test_unknown_mode_rejected_at_construction():
    with pytest.raises(SimulationError):
        make({"a": CountdownActor(1)}, scheduling="turbo")


def test_one_shuffle_of_the_sorted_set_per_round():
    """The scheduler's only RNG use: sort the eligible keys, shuffle."""
    log = []
    actors = {k: CountdownActor(99, log, k) for k in ("c", "a", "b")}
    sched = make(actors, seed=42, scheduling="scan")
    sched.round()
    sched.round()

    reference = random.Random(42)
    expected = []
    for t in (1, 2):
        order = sorted(actors)
        reference.shuffle(order)
        expected.extend((t, k) for k in order)
    assert log == expected


def test_parked_actors_skipped_after_the_shuffle():
    """Parking changes who acts, never the RNG stream."""
    log_a, log_b = [], []
    sched_a = make({k: CountdownActor(99, log_a, k) for k in "abc"}, seed=5)
    sched_b = make(
        {
            "a": CountdownActor(99, log_b, "a"),
            "b": CountdownActor(0, log_b, "b"),  # parks immediately
            "c": CountdownActor(99, log_b, "c"),
        },
        seed=5,
    )
    for _ in range(4):
        sched_a.round()
        sched_b.round()
    # Identical RNG consumption: the surviving actors fire in the same
    # relative order in both runs.
    assert [e for e in log_a if e[1] != "b"] == [
        e for e in log_b if e[1] != "b"
    ]
    # Round 1 is a full scan (first fingerprint); later rounds skip b.
    assert [e for e in log_b if e[1] == "b"] == [(1, "b")]
    assert sum(r.skipped for r in sched_b.tracer.rounds) == 3


def test_scan_mode_never_skips():
    sched = make({k: CountdownActor(0) for k in "ab"}, scheduling="scan")
    for _ in range(3):
        sched.round()
    for r in sched.tracer.rounds:
        assert r.scanned == r.eligible == 2
        assert r.skipped == 0


def test_participation_change_forces_full_scan():
    sched = make({k: CountdownActor(0) for k in "ab"})
    sched.round()  # round 1: full scan, first fingerprint
    sched.round()  # steady state: both parked, both skipped
    assert sched.tracer.rounds[-1].skipped == 2
    sched.round(participation=("a",))  # new scheduled set: rescan
    assert sched.tracer.rounds[-1].full_scan
    assert sched.tracer.rounds[-1].scanned == 1


def test_settle_horizon_forces_scans_and_defers_quiescence():
    horizon = 3
    sched = make(
        {"a": CountdownActor(0)},
        settle_horizon=lambda: horizon,
        scheduling="event",
    )
    outcome = sched.run(max_rounds=10, quiescent_rounds=2)
    # Idle rounds strictly before the horizon do not count toward
    # quiescence; every round up to it is a forced full scan.
    assert outcome.quiescent
    assert outcome.rounds == 4  # idle streak starts at t = horizon
    assert all(r.full_scan for r in sched.tracer.rounds[:horizon])


def test_run_halts_on_quiescence_and_reports_outcome():
    sched = make({"a": CountdownActor(3)})
    outcome = sched.run(max_rounds=50, quiescent_rounds=2)
    assert isinstance(outcome, RunOutcome)
    assert outcome.fired == 3
    assert outcome.rounds == 5  # 3 productive + 2 idle
    assert outcome.quiescent
    assert sched.last_run_quiescent


def test_fixed_budget_run_reports_end_state_quiescence():
    sched = make({"a": CountdownActor(2)})
    outcome = sched.run(max_rounds=6, halt_on_quiescence=False)
    assert outcome.rounds == 6  # the full budget, no early halt
    assert outcome.quiescent  # ...but it *ended* idle
    busy = make({"a": SystemActor(lambda t: 1)})
    outcome = busy.run(max_rounds=6, halt_on_quiescence=False)
    assert outcome.rounds == 6
    assert not outcome.quiescent
    assert not busy.last_run_quiescent


def test_stop_when_cuts_short_without_claiming_quiescence():
    sched = make({"a": SystemActor(lambda t: 1)})
    outcome = sched.run(max_rounds=50, stop_when=lambda: sched.time >= 4)
    assert outcome.rounds == 4
    assert not outcome.quiescent


def test_pre_round_hook_sees_the_advanced_clock():
    seen = []
    sched = make({"a": CountdownActor(1)}, pre_round=seen.append)
    sched.round()
    sched.round()
    assert seen == [1, 2]


def test_responders_filtered_by_liveness_and_default_to_scheduled():
    alive = {"a": True, "b": True}
    sched = make(
        {k: CountdownActor(9) for k in "ab"},
        is_alive=lambda key, _t: alive[key],
    )
    sched.round()
    assert sched.responders == frozenset("ab")
    sched.round(responders=("a", "b"))
    assert sched.responders == frozenset("ab")
    alive["b"] = False
    sched.round(responders=("a", "b"))
    assert sched.responders == frozenset("a")


def test_zero_action_budget_forces_full_scan():
    sched = make({k: CountdownActor(0) for k in "ab"})
    sched.round()
    sched.round(action_budget=0)
    assert sched.tracer.rounds[-1].full_scan
    assert sched.tracer.rounds[-1].scanned == 2


def test_pending_work_defers_quiescence():
    # An idle round with backlogged work (e.g. datagrams a link fault is
    # still sequestering) must not count toward quiescence.
    backlog = {"n": 3}

    def drain():
        if backlog["n"] > 0:
            backlog["n"] -= 1
            return 1
        return 0

    sched = make({"a": CountdownActor(0)}, pending_work=drain)
    outcome = sched.run(max_rounds=20, quiescent_rounds=2)
    assert outcome.quiescent
    # Three zero-fired rounds are spent waiting out the backlog before
    # the idle streak may start; then 2 genuinely idle rounds.
    assert outcome.rounds == 5


def test_pending_work_combines_with_settle_horizon():
    sched = make(
        {"a": CountdownActor(0)},
        settle_horizon=lambda: 3,
        pending_work=lambda: 0,
    )
    outcome = sched.run(max_rounds=10, quiescent_rounds=2)
    assert outcome.quiescent
    assert outcome.rounds == 4  # horizon still gates the idle streak
