"""The shared scenario matrix of the runtime differential suite.

This module defines, as *data plus builders*, every scenario the
``repro.runtime`` refactor must reproduce byte-for-byte:

* **engine scenarios** — Algorithm 1 deployments over several topologies,
  seeds, failure patterns and participation restrictions, fingerprinted
  by their :class:`repro.model.RunRecord` (every multicast, delivery and
  charged step, in order) and, for ``scheduling="scan"``, by the
  :class:`repro.metrics.trace.TraceRecorder` round stream;
* **kernel scenarios** — Appendix-A automata (a ping/pong mesh and a
  replicated-log cluster), fingerprinted by their output queues, step
  counts and message-buffer accounting.

``generate_golden.py`` ran these builders against the **pre-refactor**
engine and kernel (commit 91a52c1) and froze the resulting hashes into
``golden.json``; ``test_differential.py`` re-runs them against the
current tree and compares.  A mismatch means the shared scheduler
changed an observable schedule — the one thing the refactor promised
not to do.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.sim import Automaton, Kernel
from repro.substrates import ReplicatedLogCluster
from repro.workloads import (
    chain_topology,
    disjoint_topology,
    random_sends,
    ring_topology,
)

#: Seeds of the differential matrix (acceptance floor: >= 20).
SEEDS = tuple(range(20))

#: (name, factory) pairs — the topology axis (acceptance floor: >= 3).
TOPOLOGIES = (
    ("figure1", paper_figure1_topology),
    ("ring4", lambda: ring_topology(4)),
    ("chain3", lambda: chain_topology(3)),
    ("disjoint3x2", lambda: disjoint_topology(3, group_size=2)),
)


def canonical_hash(payload) -> str:
    """sha256 of the canonical-JSON rendering of ``payload``."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=str)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# -- Engine scenarios ---------------------------------------------------------


def record_fingerprint(record):
    """Every observable event of a run, in order, as plain data."""
    return {
        "multicasts": [
            [e.time, e.process.name, str(e.message.mid)] for e in record.multicasts
        ],
        "deliveries": [
            [e.time, e.process.name, str(e.message.mid)] for e in record.deliveries
        ],
        "steps": [[s.time, s.process.name, s.received] for s in record.steps],
    }


def trace_fingerprint(tracer):
    """The per-round trace stream as plain data (JSONL body, no meta)."""
    return [asdict(r) for r in tracer.rounds]


def engine_scenarios():
    """Yield ``(key, run)`` pairs; ``run(scheduling)`` returns the system.

    The matrix crosses topologies x seeds x {failure-free, crashy}, plus
    a participation-restricted family on the Figure 1 topology.
    """
    for topo_name, factory in TOPOLOGIES:
        for seed in SEEDS:
            for pattern_name in ("ff", "crash"):
                key = f"engine:{topo_name}:{pattern_name}:s{seed}"
                yield key, _engine_runner(factory, pattern_name, seed)
    # Participation-restricted runs: the last process never takes a step
    # (it may still serve quorums — responders default to participation,
    # reproducing the P-fair sub-runs of the necessity constructions).
    for seed in SEEDS[:8]:
        key = f"engine:figure1:participation:s{seed}"
        yield key, _participation_runner(seed)


def _engine_runner(factory, pattern_name, seed):
    def run(scheduling):
        topology = factory()
        processes = sorted(topology.processes)
        if pattern_name == "crash":
            pattern = crash_pattern(
                topology.processes, {processes[1]: 4, processes[-1]: 9}
            )
        else:
            pattern = failure_free(topology.processes)
        # golden.json was frozen before the ROADMAP item 6 gamma-scoping
        # fix; the suite pins the *runtime loop*, so the fixture replays
        # the pre-fix per-process scoping explicitly.
        system = MulticastSystem(
            topology,
            pattern,
            seed=seed,
            scheduling=scheduling,
            gamma_scope="process",
        )
        amc = AtomicMulticast(system)
        for send in random_sends(topology, 6, seed=seed):
            sender = next(p for p in processes if p.index == send.sender)
            if system.is_alive(sender):
                amc.multicast(sender, send.group, payload=send.payload)
        amc.run()
        return system

    return run


def _participation_runner(seed):
    def run(scheduling):
        topology = paper_figure1_topology()
        processes = sorted(topology.processes)
        pattern = failure_free(topology.processes)
        system = MulticastSystem(
            topology,
            pattern,
            seed=seed,
            scheduling=scheduling,
            gamma_scope="process",  # pre-fix scoping; see _engine_runner
        )
        amc = AtomicMulticast(system)
        participation = pset(processes[:-1])
        amc.multicast(processes[0], topology.groups[0].name)
        amc.multicast(processes[2], topology.groups[1].name)
        system.run(max_rounds=400, participation=participation)
        return system

    return run


# -- Kernel scenarios ---------------------------------------------------------


class PingEcho(Automaton):
    """Replies PONG to every PING."""

    def on_step(self, ctx, datagram):
        if datagram is None:
            return
        if datagram.tag == "PING":
            ctx.send(datagram.src, "PONG")
        ctx.output(datagram.tag)

    def idle(self):
        return True


class PingChatter(Automaton):
    """Broadcasts PING to its peers once, then idles."""

    def __init__(self, peers):
        self.peers = peers
        self.sent = False

    def on_step(self, ctx, datagram):
        if not self.sent:
            self.sent = True
            ctx.broadcast(self.peers, "PING")
        if datagram is not None:
            ctx.output(datagram.tag)

    def idle(self):
        return self.sent


def kernel_fingerprint(kernel):
    """Outputs, step counts and buffer accounting as plain data."""
    return {
        "outputs": {
            p.name: [[t, str(v)] for t, v in values]
            for p, values in sorted(kernel.outputs.items())
        },
        "sent": kernel.buffer.sent_count,
        "received": kernel.buffer.received_count,
    }


def kernel_scenarios():
    """Yield ``(key, run)``; ``run(event_driven)`` returns the kernel."""
    for size in (3, 5):
        for seed in SEEDS:
            for pattern_name in ("ff", "crash"):
                key = f"kernel:pingpong{size}:{pattern_name}:s{seed}"
                yield key, _pingpong_runner(size, pattern_name, seed)
    for seed in SEEDS[:10]:
        for pattern_name in ("ff", "crash"):
            key = f"kernel:replog3:{pattern_name}:s{seed}"
            yield key, _replog_runner(pattern_name, seed)


def _pingpong_runner(size, pattern_name, seed):
    def run(event_driven):
        procs = make_processes(size)
        universe = pset(procs)
        if pattern_name == "crash":
            pattern = crash_pattern(universe, {procs[1]: 3})
        else:
            pattern = failure_free(universe)
        automata = {procs[0]: PingChatter(procs[1:])}
        for p in procs[1:]:
            automata[p] = PingEcho()
        kernel = Kernel(
            pattern, automata, seed=seed, event_driven=event_driven
        )
        kernel.run(12)
        return kernel

    return run


def _replog_runner(pattern_name, seed):
    def run(event_driven):
        procs = make_processes(3)
        universe = pset(procs)
        if pattern_name == "crash":
            pattern = crash_pattern(universe, {procs[2]: 6})
        else:
            pattern = failure_free(universe)
        cluster = ReplicatedLogCluster(pattern, universe)
        cluster.append(procs[0], f"a{seed}")
        cluster.append(procs[1], f"b{seed}")
        kernel = Kernel(
            pattern,
            cluster.automata,
            cluster.detectors,
            seed=seed,
            event_driven=event_driven,
        )
        kernel.run(40)
        return kernel

    return run
