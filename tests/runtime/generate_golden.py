"""Regenerate ``golden.json`` — the pre-refactor fingerprints.

Usage::

    PYTHONPATH=src:tests python tests/runtime/generate_golden.py

The committed ``golden.json`` was produced by running this script at the
last commit *before* the ``repro.runtime`` extraction (91a52c1), so the
differential suite proves the shared scheduler reproduces the seed
engine's and kernel's observable behaviour exactly.  Re-running it on a
later tree only confirms self-consistency — never regenerate it to
paper over a differential failure.
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", ".."))
sys.path.insert(
    0, os.path.join(os.path.dirname(__file__), "..", "..", "src")
)

from _scenarios import (  # noqa: E402
    canonical_hash,
    engine_scenarios,
    kernel_fingerprint,
    kernel_scenarios,
    record_fingerprint,
    trace_fingerprint,
)

OUT = os.path.join(os.path.dirname(__file__), "golden.json")


def main() -> None:
    golden = {"engine": {}, "kernel": {}}
    for key, run in engine_scenarios():
        system = run("scan")
        golden["engine"][key] = {
            "record": canonical_hash(record_fingerprint(system.record)),
            "trace": canonical_hash(trace_fingerprint(system.tracer)),
            "rounds": len(system.tracer.rounds),
        }
    for key, run in kernel_scenarios():
        kernel = run(False)
        golden["kernel"][key] = {
            "outputs": canonical_hash(kernel_fingerprint(kernel)),
            "steps": sum(kernel.steps_taken.values()),
        }
    with open(OUT, "w", encoding="utf-8") as fh:
        json.dump(golden, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(
        f"wrote {OUT}: {len(golden['engine'])} engine + "
        f"{len(golden['kernel'])} kernel scenarios"
    )


if __name__ == "__main__":
    main()
