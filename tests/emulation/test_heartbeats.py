"""Tests for the heartbeat ranking function of [6] (Algorithm 2)."""

from repro.emulation import HeartbeatRanking
from repro.model import by_indices, crash_pattern, failure_free, make_processes, pset

PROCS = make_processes(3)
ALL = pset(PROCS)
P1, P2, P3 = PROCS


def test_ranks_grow_while_alive():
    ranking = HeartbeatRanking(failure_free(ALL))
    for t in range(1, 6):
        ranking.advance(t)
    assert ranking.rank_of(P1) == 5
    assert ranking.rank([P1, P2]) == 5


def test_crashed_process_rank_stalls():
    pattern = crash_pattern(ALL, {P2: 3})
    ranking = HeartbeatRanking(pattern)
    for t in range(1, 10):
        ranking.advance(t)
    assert ranking.rank_of(P2) == 2  # beats at t=1, 2 only
    assert ranking.rank_of(P1) == 9


def test_set_rank_is_minimum_of_members():
    pattern = crash_pattern(ALL, {P3: 1})
    ranking = HeartbeatRanking(pattern)
    for t in range(1, 8):
        ranking.advance(t)
    assert ranking.rank(by_indices(1, 3)) == 0
    assert ranking.rank(by_indices(1, 2)) == 7


def test_empty_set_rank_is_zero():
    ranking = HeartbeatRanking(failure_free(ALL))
    ranking.advance(1)
    assert ranking.rank([]) == 0


def test_key_property_correct_sets_dominate_eventually():
    """rank(x) grows forever iff x is all-correct: after enough rounds a
    correct set outranks any set with a faulty member."""
    pattern = crash_pattern(ALL, {P3: 5})
    ranking = HeartbeatRanking(pattern)
    for t in range(1, 20):
        ranking.advance(t)
    assert ranking.rank(by_indices(1, 2)) > ranking.rank(by_indices(1, 3))
