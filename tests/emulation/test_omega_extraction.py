"""Tests for Algorithm 5: the CHT-style emulated Omega_{g∩h}."""

import pytest

from repro.detectors import BOTTOM, check_omega
from repro.emulation.omega_extraction import OmegaExtraction
from repro.groups import topology_from_indices
from repro.model import (
    DetectorError,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)

TOPO = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
PROCS = make_processes(4)
P1, P2, P3, P4 = PROCS


def test_disjoint_groups_rejected():
    disjoint = topology_from_indices(4, {"g": [1, 2], "h": [3, 4]})
    with pytest.raises(DetectorError):
        OmegaExtraction(
            disjoint, failure_free(pset(PROCS)), "g", "h"
        )


def test_bottom_outside_scope():
    ext = OmegaExtraction(TOPO, failure_free(pset(PROCS)), "g", "h", seed=1)
    assert ext.query(P1, 0) is BOTTOM


def test_configuration_roots_have_textbook_valencies():
    """J_0 (all to g) is g-valent, J_v (all to h) is h-valent, and some
    configuration in between is bivalent or the chain flips univalently —
    the premise of Proposition 70."""
    ext = OmegaExtraction(TOPO, failure_free(pset(PROCS)), "g", "h", seed=2)
    ext.run(4)
    first = ext.root_valency(ext.configs[0])
    last = ext.root_valency(ext.configs[-1])
    assert first == frozenset(("g",))
    assert last == frozenset(("h",))


def test_failure_free_members_agree_on_a_correct_leader():
    ext = OmegaExtraction(TOPO, failure_free(pset(PROCS)), "g", "h", seed=3)
    ext.run(4)
    leaders = {p: ext.query(p, ext.time) for p in (P2, P3)}
    assert leaders[P2] == leaders[P3]
    assert leaders[P2] in ext.scope


def test_leader_converges_after_member_crash():
    pattern = crash_pattern(pset(PROCS), {P2: 3})
    ext = OmegaExtraction(TOPO, pattern, "g", "h", seed=4)
    history = []
    for r in range(10):
        ext.tick()
        if r >= 6:
            history.append((P3, ext.time, ext.query(P3, ext.time)))
    assert check_omega(history, pattern, ext.scope) == []
    assert history[-1][2] == P3


def test_singleton_intersection_is_trivial():
    topo = topology_from_indices(3, {"g": [1, 2], "h": [2, 3]})
    procs = make_processes(3)
    ext = OmegaExtraction(
        topo, failure_free(pset(procs)), "g", "h", seed=5, max_depth=4
    )
    ext.run(3)
    assert ext.query(procs[1], ext.time) == procs[1]


def test_alive_view_tracks_crashes():
    pattern = crash_pattern(pset(PROCS), {P4: 2})
    ext = OmegaExtraction(TOPO, pattern, "g", "h", seed=6)
    ext.run(8)
    assert P4 not in ext._alive_view()
    assert P2 in ext._alive_view()
