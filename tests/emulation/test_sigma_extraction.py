"""Tests for Algorithm 2: the emulated Sigma_{g∩h} must satisfy the
quorum-detector properties (validated with the same harness as oracles)."""

import pytest

from repro.detectors import BOTTOM, check_sigma
from repro.emulation import SigmaExtraction
from repro.groups import paper_figure1_topology, topology_from_indices
from repro.model import (
    DetectorError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)


def drive(extraction, pattern, rounds, sample_every=5):
    """Run the extraction, sampling the scope's live members."""
    history = []
    for r in range(rounds):
        extraction.tick()
        if r % sample_every == 0:
            for p in sorted(extraction.scope):
                if pattern.is_alive(p, extraction.time):
                    history.append(
                        (p, extraction.time, extraction.query(p, extraction.time))
                    )
    return history


@pytest.fixture()
def wide_intersection():
    """g = {p1,p2,p3}, h = {p2,p3,p4}: scope g∩h = {p2,p3}."""
    return topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})


class TestConstruction:
    def test_requires_one_or_two_groups(self, wide_intersection):
        procs = make_processes(4)
        pattern = failure_free(pset(procs))
        with pytest.raises(DetectorError):
            SigmaExtraction(wide_intersection, pattern, [])

    def test_disjoint_groups_rejected(self):
        topo = topology_from_indices(4, {"g": [1, 2], "h": [3, 4]})
        pattern = failure_free(pset(make_processes(4)))
        with pytest.raises(DetectorError):
            SigmaExtraction(topo, pattern, ["g", "h"])

    def test_bottom_outside_scope(self, wide_intersection):
        procs = make_processes(4)
        pattern = failure_free(pset(procs))
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=1)
        assert ext.query(procs[0], 0) is BOTTOM  # p1 not in g∩h


class TestEmulatedProperties:
    def test_failure_free_history_is_admissible(self, wide_intersection):
        procs = make_processes(4)
        pattern = failure_free(pset(procs))
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=2)
        history = drive(ext, pattern, rounds=30)
        assert check_sigma(history, pattern, ext.scope) == []

    def test_crash_outside_intersection_is_tolerated(self, wide_intersection):
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[0]: 6})
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=3)
        history = drive(ext, pattern, rounds=40)
        assert check_sigma(history, pattern, ext.scope) == []

    def test_liveness_quorum_becomes_correct(self, wide_intersection):
        """After p2 (in the scope) crashes, the emulated quorum at the
        correct member p3 eventually contains only correct processes."""
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[1]: 5})
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=4)
        history = drive(ext, pattern, rounds=60)
        assert check_sigma(history, pattern, ext.scope) == []
        final = ext.query(procs[2], ext.time)
        assert final <= pattern.correct

    def test_single_group_mode_emulates_sigma_g(self):
        topo = topology_from_indices(3, {"g": [1, 2, 3]})
        procs = make_processes(3)
        pattern = crash_pattern(pset(procs), {procs[0]: 4})
        ext = SigmaExtraction(topo, pattern, ["g"], seed=5)
        assert ext.scope == by_indices(1, 2, 3)
        history = drive(ext, pattern, rounds=50)
        assert check_sigma(history, pattern, ext.scope) == []

    def test_figure1_singleton_intersection(self):
        topo = paper_figure1_topology()
        procs = make_processes(5)
        pattern = crash_pattern(pset(procs), {procs[1]: 5})
        ext = SigmaExtraction(topo, pattern, ["g1", "g3"], seed=6)
        assert ext.scope == by_indices(1)
        history = drive(ext, pattern, rounds=40)
        assert check_sigma(history, pattern, ext.scope) == []
        # p1 is correct: its quorum stabilizes to itself.
        assert ext.query(procs[0], ext.time) == by_indices(1)


class TestResponsiveness:
    def test_only_quorate_subsets_become_responsive(self, wide_intersection):
        """In a failure-free run, a strict subset of g cannot deliver:
        the silent members block its Sigma quorums."""
        procs = make_processes(4)
        pattern = failure_free(pset(procs))
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=7)
        ext.run(30)
        g = wide_intersection.group("g")
        responsive = ext._responsive_sets(procs[1], g)
        proper = [x for x in responsive if x != g.members]
        assert proper == []

    def test_crash_makes_survivor_subset_responsive(self, wide_intersection):
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[0]: 3})
        ext = SigmaExtraction(wide_intersection, pattern, ["g", "h"], seed=8)
        ext.run(60)
        g = wide_intersection.group("g")
        responsive = ext._responsive_sets(procs[1], g)
        assert by_indices(2, 3) in responsive
