"""Tests for Algorithms 3 and 4: emulated gamma and 1^{g∩h}."""

import pytest

from repro.detectors import check_gamma, check_indicator
from repro.emulation import GammaExtraction, IndicatorExtraction
from repro.groups import paper_figure1_topology
from repro.model import (
    DetectorError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.workloads import chain_topology, ring_topology


def drive_gamma(extraction, pattern, rounds):
    history = []
    for _ in range(rounds):
        extraction.tick()
        for p in sorted(pattern.processes):
            if pattern.is_alive(p, extraction.time):
                history.append(
                    (p, extraction.time, extraction.query(p, extraction.time))
                )
    return history


class TestGammaExtraction:
    def test_failure_free_family_stays_output(self):
        topo = ring_topology(3)
        procs = make_processes(3)
        pattern = failure_free(pset(procs))
        ext = GammaExtraction(topo, pattern, seed=1)
        history = drive_gamma(ext, pattern, rounds=30)
        assert check_gamma(history, pattern, topo) == []
        assert len(ext.query(procs[0], ext.time)) == 1

    def test_ring_edge_death_excludes_the_family(self):
        topo = ring_topology(3)
        procs = make_processes(3)
        pattern = crash_pattern(pset(procs), {procs[1]: 5})
        ext = GammaExtraction(topo, pattern, seed=2)
        history = drive_gamma(ext, pattern, rounds=60)
        assert check_gamma(history, pattern, topo) == []
        for p in (procs[0], procs[2]):
            assert ext.query(p, ext.time) == frozenset()

    def test_ring4_single_edge_death_detected_via_chain(self):
        """In a 4-ring, killing one intersection leaves three live edges:
        the chain must relay across them to reach the far observers."""
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[2]: 4})  # kills g2∩g3
        ext = GammaExtraction(topo, pattern, seed=3)
        history = drive_gamma(ext, pattern, rounds=90)
        assert check_gamma(history, pattern, topo) == []
        for p in pattern.correct:
            if topo.families_of_process(p):
                assert ext.query(p, ext.time) == frozenset()

    def test_two_dead_edges_converse_chains(self):
        """Two opposite intersections die: no single chain can complete,
        so exclusion relies on the converse-direction rule."""
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[0]: 4, procs[2]: 4})
        ext = GammaExtraction(topo, pattern, seed=4)
        history = drive_gamma(ext, pattern, rounds=120)
        assert check_gamma(history, pattern, topo) == []

    def test_figure1_scenario(self):
        """Correct = {p1, p4, p5}: eventually only f' remains at p1."""
        topo = paper_figure1_topology()
        procs = make_processes(5)
        pattern = crash_pattern(pset(procs), {procs[1]: 6, procs[2]: 6})
        ext = GammaExtraction(topo, pattern, seed=5)
        history = drive_gamma(ext, pattern, rounds=150)
        assert check_gamma(history, pattern, topo) == []
        final = ext.query(procs[0], ext.time)
        names = {frozenset(g.name for g in fam) for fam in final}
        assert names == {frozenset({"g1", "g3", "g4"})}


class TestIndicatorExtraction:
    def test_requires_intersecting_groups(self):
        from repro.groups import topology_from_indices

        disjoint = topology_from_indices(4, {"a": [1, 2], "b": [3, 4]})
        with pytest.raises(DetectorError):
            IndicatorExtraction(
                disjoint, failure_free(pset(make_processes(4))), "a", "b"
            )

    def test_never_raises_while_intersection_lives(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        pattern = failure_free(pset(procs))
        ext = IndicatorExtraction(topo, pattern, "g1", "g2", seed=1)
        ext.run(40)
        history = [(p, ext.time, ext.query(p, ext.time)) for p in procs]
        assert check_indicator(history, pattern, ext.watched) == []
        assert not any(ext.query(p, ext.time) for p in procs)

    def test_raises_after_intersection_death(self):
        topo = chain_topology(2)
        procs = make_processes(3)
        pattern = crash_pattern(pset(procs), {procs[1]: 6})
        ext = IndicatorExtraction(topo, pattern, "g1", "g2", seed=2)
        history = []
        for _ in range(80):
            ext.tick()
            for p in procs:
                if pattern.is_alive(p, ext.time):
                    history.append((p, ext.time, ext.query(p, ext.time)))
        assert check_indicator(history, pattern, ext.watched) == []
        assert ext.query(procs[0], ext.time)
        assert ext.query(procs[2], ext.time)

    def test_partial_intersection_death_is_not_reported(self):
        """|g∩h| = 2: killing one member must not raise the indicator."""
        from repro.groups import topology_from_indices

        topo = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[1]: 5})
        ext = IndicatorExtraction(topo, pattern, "g", "h", seed=3)
        history = []
        for _ in range(80):
            ext.tick()
            for p in procs:
                if pattern.is_alive(p, ext.time):
                    history.append((p, ext.time, ext.query(p, ext.time)))
        assert check_indicator(history, pattern, ext.watched) == []
        assert not ext.query(procs[0], ext.time)

    def test_full_wide_intersection_death_is_reported(self):
        from repro.groups import topology_from_indices

        topo = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[1]: 5, procs[2]: 7})
        ext = IndicatorExtraction(topo, pattern, "g", "h", seed=4)
        history = []
        for _ in range(100):
            ext.tick()
            for p in procs:
                if pattern.is_alive(p, ext.time):
                    history.append((p, ext.time, ext.query(p, ext.time)))
        assert check_indicator(history, pattern, ext.watched) == []
        assert ext.query(procs[0], ext.time)
        assert ext.query(procs[3], ext.time)
