"""Regression tests: the delayed-datagram lifecycle under real runs.

Link faults sequester datagrams in the buffer's delay heap.  Two
lifecycle bugs used to hide there: a run could be declared quiescent
while datagrams still sat in the heap (the scheduler only counted
visible queues), and a crashed destination's sequestered datagrams were
released into its dead inbox after the crash (inflating ``in_transit``
and tripping the post-run admissibility audit).  These scenarios pin
the fixes end-to-end: a kernel run under an ``omega_late`` +
``link_delay`` plan — with and without a crash — must terminate
quiescent, deliver everywhere, satisfy the §2.2 properties and pass the
injector audit.
"""

from __future__ import annotations

import pytest

from repro.faults.plan import FaultEvent, plan_of
from repro.props.batch import batch_verdicts, verdicts_ok
from repro.workloads import ScenarioSpec, Send, run_scenario
from repro.workloads.spec import TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0), Send(2, "g1", 1))

#: Delays straddle the omega instability window, so released datagrams
#: land while leadership is still unsettled — the mix that used to fake
#: quiescence.
PLAN = plan_of(
    FaultEvent(kind="link_delay", start=0, until=6, amount=4),
    FaultEvent(kind="omega_late", group="g1", until=8),
)


def faulted_spec(**overrides):
    base = dict(
        topology=TOPO,
        sends=SENDS,
        seed=5,
        backend="kernel",
        faults=PLAN,
        max_rounds=600,
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestQuiescenceAccounting:
    def test_sequestered_traffic_does_not_fake_quiescence(self):
        result = run_scenario(faulted_spec())
        assert result.quiescent and not result.truncated
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))

    @pytest.mark.parametrize("seed", range(4))
    def test_lifecycle_holds_across_seeds(self, seed):
        result = run_scenario(faulted_spec(seed=seed))
        # run_scenario raises AdmissibilityError if any datagram is
        # still sequestered past the horizon — completion alone proves
        # the heap drained before quiescence was declared.
        assert result.quiescent
        assert result.delivered_everywhere()

    def test_crash_purges_sequestered_datagrams(self):
        # One g2 member dies mid-delay-window: datagrams the link fault
        # is still holding for it must be dropped with the crash, not
        # released into a dead inbox afterwards (which would strand the
        # run short of quiescence and fail the audit).
        result = run_scenario(faulted_spec(crashes=((5, 4),)))
        assert result.quiescent and not result.truncated
        assert result.delivered_everywhere()
        assert verdicts_ok(batch_verdicts(result.record))


class _Drain:
    """Minimal actor: consumes its inbox, idle otherwise."""

    SKIP_WAIT = ("inbox",)

    def __init__(self, buffer, p):
        self.buffer = buffer
        self.p = p
        self.got = []

    def parked(self, t):
        return not self.buffer.has_pending(self.p)

    def fire(self, t, budget=None, parked=None):
        fired = 0
        datagram = self.buffer.receive(self.p)
        while datagram is not None:
            self.got.append(datagram.tag)
            fired += 1
            datagram = self.buffer.receive(self.p)
        return fired

    def wait_reasons(self):
        return ("inbox",)


def test_pending_work_guards_an_understated_horizon():
    """Quiescence must track the delay heap itself, not trust the
    horizon: a host that understates its settle horizon (say, a future
    event kind with a miscomputed ``ends_by``) would otherwise go
    quiescent with datagrams still sequestered."""
    import random

    from repro.faults.injector import FaultInjector
    from repro.metrics.trace import TraceRecorder
    from repro.model.messages import MessageBuffer
    from repro.model.processes import make_processes
    from repro.runtime import Scheduler

    p1, p2 = make_processes(2)
    injector = FaultInjector(
        plan_of(FaultEvent(kind="link_delay", start=0, until=2, amount=6)),
        seed=0,
    )
    buffer = MessageBuffer(injector)
    buffer.release(0)
    buffer.send(p1, p2, "SLOW")  # sequestered until t = 6
    assert buffer.delayed_count() == 1

    drain = _Drain(buffer, p2)
    sched = Scheduler(
        {p2.name: drain},
        rng=random.Random(0),
        tracer=TraceRecorder(),
        is_alive=lambda _key, _t: True,
        scheduling="scan",
        pre_round=lambda t: buffer.release(t),
        settle_horizon=lambda: 0,  # deliberately understated
        pending_work=buffer.delayed_count,
    )
    outcome = sched.run(max_rounds=30, quiescent_rounds=2)
    assert outcome.quiescent
    assert drain.got == ["SLOW"]  # delivered, not stranded
    assert buffer.in_transit() == 0
