"""Property test: the faulted buffer still delivers everything.

The fairness condition of Appendix A says every datagram addressed to a
process taking infinitely many receive steps is eventually received.
Link faults bend the route — delays sequester, duplication multiplies,
drops force retransmissions, reordering permutes extraction — but within
the plan's finite horizon every perturbation must be spent: a receiver
that keeps taking steps past ``plan.horizon()`` (plus transit for the
datagrams sent last) drains the buffer completely.
"""

from hypothesis import given, settings, strategies as st

from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultEvent, FaultPlan
from repro.model.messages import MessageBuffer
from repro.model.processes import make_processes

PROCS = make_processes(3)

link_delay = st.builds(
    FaultEvent,
    kind=st.just("link_delay"),
    start=st.integers(0, 6),
    amount=st.integers(1, 4),
    until=st.integers(7, 12),
)
link_reorder = st.builds(
    FaultEvent,
    kind=st.just("link_reorder"),
    start=st.integers(0, 6),
    amount=st.integers(2, 5),
    until=st.integers(7, 12),
)
link_dup = st.builds(
    FaultEvent,
    kind=st.just("link_dup"),
    start=st.integers(0, 6),
    amount=st.integers(1, 3),
    until=st.integers(7, 12),
)
link_drop = st.builds(
    FaultEvent,
    kind=st.just("link_drop"),
    start=st.integers(0, 6),
    amount=st.integers(1, 3),
    until=st.integers(7, 12),
)
plans = st.lists(
    st.one_of(link_delay, link_reorder, link_dup, link_drop),
    min_size=0,
    max_size=6,
).map(lambda events: FaultPlan(tuple(events)))

sends = st.lists(
    st.tuples(
        st.integers(0, 2),  # sender
        st.integers(0, 2),  # receiver
        st.integers(0, 8),  # send time
    ),
    min_size=1,
    max_size=20,
)


@settings(max_examples=60, deadline=None)
@given(plan=plans, script=sends, seed=st.integers(0, 2**16))
def test_adversarial_extraction_delivers_within_the_horizon(
    plan, script, seed
):
    injector = FaultInjector(plan, seed=seed)
    buffer = MessageBuffer(injector)
    last_send = max(t for _, _, t in script)
    # Past the horizon every window is closed and every sequestered
    # datagram released; +2 covers transit of the last benign send.
    settle = max(injector.horizon, last_send) + 2
    received = 0
    for now in range(settle + 1):
        buffer.release(now)
        for src, dst, t in script:
            if t == now:
                buffer.send(PROCS[src], PROCS[dst], "PING", (src, dst, t))
        for p in PROCS:
            while buffer.receive(p) is not None:
                received += 1
    assert buffer.in_transit() == 0
    assert buffer.delayed_count() == 0
    assert received == len(script) + injector.stats["duplicated"]
    assert injector.audit(settle, buffer=buffer) == []
