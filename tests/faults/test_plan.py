"""Tests for fault plans as value objects."""

import pytest

from repro.faults.plan import (
    DETECTOR_KINDS,
    EVENT_KINDS,
    LINK_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    plan_of,
)

DELAY = FaultEvent(kind="link_delay", start=2, until=6, amount=3)
REORDER = FaultEvent(kind="link_reorder", start=1, until=5, amount=2)
DROP = FaultEvent(kind="link_drop", start=3, until=7, amount=1)
NOISE = FaultEvent(kind="sigma_noise", group="g1", start=2, until=4)
BURST = FaultEvent(kind="crash_burst", start=4, amount=2, targets=(1, 3))


class TestFaultEvent:
    def test_unknown_kind_is_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="link_teleport")

    def test_negative_window_is_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="link_delay", start=-1, until=3)

    def test_inverted_window_is_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="link_delay", start=5, until=2)

    def test_reorder_needs_a_pick_window(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="link_reorder", start=0, until=4, amount=1)

    def test_crash_burst_needs_targets(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="crash_burst", start=2)
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="crash_burst", start=2, targets=(1, 1))

    def test_link_events_take_no_targets(self):
        with pytest.raises(FaultPlanError):
            FaultEvent(kind="link_delay", until=3, targets=(1,))

    def test_active_is_half_open(self):
        assert not DELAY.active(1)
        assert DELAY.active(2)
        assert DELAY.active(5)
        assert not DELAY.active(6)

    def test_matches_link_wildcards(self):
        any_link = FaultEvent(kind="link_delay", until=3, amount=1)
        assert any_link.matches_link(1, 2)
        pinned = FaultEvent(kind="link_delay", src=1, dst=2, until=3, amount=1)
        assert pinned.matches_link(1, 2)
        assert not pinned.matches_link(2, 1)

    def test_ends_by_covers_the_last_effect(self):
        # A datagram sent at until-1 with delay `amount` is receivable at
        # until-1+amount; the event is over one round later.
        assert DELAY.ends_by() >= DELAY.until - 1 + DELAY.amount
        # A drop retransmits at the window close plus transit.
        assert DROP.ends_by() == DROP.until + 1
        # A staggered burst finishes at start + (len-1)*gap.
        assert BURST.ends_by() == 4 + 1 * 2 + 1

    def test_json_round_trip(self):
        for event in (DELAY, REORDER, DROP, NOISE, BURST):
            assert FaultEvent.from_json(event.to_json()) == event


class TestFaultPlan:
    def test_event_order_does_not_matter(self):
        a = FaultPlan((DELAY, NOISE, BURST))
        b = FaultPlan((BURST, DELAY, NOISE))
        assert a == b
        assert hash(a) == hash(b)
        assert a.plan_hash() == b.plan_hash()

    def test_different_plans_hash_differently(self):
        assert plan_of(DELAY).plan_hash() != plan_of(DROP).plan_hash()
        assert plan_of(DELAY).plan_hash() != FaultPlan().plan_hash()

    def test_json_round_trip_preserves_identity(self):
        plan = FaultPlan((DELAY, REORDER, DROP, NOISE, BURST))
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan
        assert again.plan_hash() == plan.plan_hash()

    def test_horizon_is_the_max_over_events(self):
        plan = FaultPlan((DELAY, DROP, BURST))
        assert plan.horizon() == max(
            DELAY.ends_by(), DROP.ends_by(), BURST.ends_by()
        )
        assert FaultPlan().horizon() == 0

    def test_by_kind_slices(self):
        plan = FaultPlan((DELAY, NOISE, BURST, DROP))
        assert plan.by_kind(*LINK_KINDS) == (DELAY, DROP)
        assert plan.by_kind(*DETECTOR_KINDS) == (NOISE,)

    def test_subset_and_without(self):
        plan = FaultPlan((DELAY, NOISE, BURST))
        assert len(plan.subset([0, 2])) == 2
        assert plan.without(NOISE) == FaultPlan((DELAY, BURST))
        assert plan.is_empty() is False
        assert FaultPlan().is_empty() is True

    def test_every_kind_is_constructible(self):
        for kind in EVENT_KINDS:
            kwargs = {"kind": kind, "start": 1, "until": 4}
            if kind == "link_reorder":
                kwargs["amount"] = 2
            if kind in ("crash_burst", "churn", "partition"):
                kwargs["targets"] = (1,)
            if kind == "crash_recover":
                kwargs["targets"] = (1,)
                kwargs["until"] = 4
            event = FaultEvent(**kwargs)
            assert FaultEvent.from_json(event.to_json()) == event
