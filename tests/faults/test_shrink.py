"""Tests for ddmin counterexample shrinking and repro files."""

import pytest

from repro.faults.nemesis import random_plan
from repro.faults.plan import FaultEvent, FaultPlan, plan_of
from repro.faults.shrink import (
    PlanShrinker,
    ShrinkCache,
    ensure_shrink_cache,
    harness_violates,
    load_repro,
    replay_repro,
    repro_payload,
    run_harness,
    shrink_plan,
    write_repro,
)
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPOLOGY = TopologySpec.capture(disjoint_topology(2, group_size=3))


def spec_with(plan=None, sends=(Send(1, "g1", 0),), **kwargs):
    return ScenarioSpec(
        topology=TOPOLOGY, sends=tuple(sends), faults=plan, **kwargs
    )


def noise_events(n):
    """n distinct, individually inert events for synthetic predicates."""
    return [
        FaultEvent(kind="gamma_delay", amount=i + 1) for i in range(n)
    ]


CULPRIT_A = FaultEvent(kind="link_delay", start=1, until=4, amount=2)
CULPRIT_B = FaultEvent(kind="sigma_noise", start=2, until=5)


class TestDdmin:
    def test_shrinks_to_the_exact_culprit_pair(self):
        # Synthetic failure: the run "violates" iff both culprits are in
        # the plan.  ddmin must isolate exactly that pair.
        plan = FaultPlan(tuple(noise_events(6)) + (CULPRIT_A, CULPRIT_B))

        def violates(spec):
            events = set(spec.faults or FaultPlan())
            return CULPRIT_A in events and CULPRIT_B in events

        shrinker = PlanShrinker(spec_with(), violates)
        minimal = shrinker.shrink(plan)
        assert minimal == plan_of(CULPRIT_A, CULPRIT_B)
        assert len(minimal) <= 3

    def test_single_culprit(self):
        plan = FaultPlan(tuple(noise_events(7)) + (CULPRIT_A,))

        def violates(spec):
            return CULPRIT_A in set(spec.faults or FaultPlan())

        minimal = PlanShrinker(spec_with(), violates).shrink(plan)
        assert minimal == plan_of(CULPRIT_A)

    def test_intrinsic_failure_shrinks_to_the_empty_plan(self):
        shrinker = PlanShrinker(spec_with(), lambda spec: True)
        minimal = shrinker.shrink(FaultPlan(tuple(noise_events(5))))
        assert minimal.is_empty()
        # One evaluation for the starting plan, one for the empty plan.
        assert shrinker.evaluations == 2

    def test_passing_plan_is_rejected(self):
        with pytest.raises(ValueError):
            PlanShrinker(spec_with(), lambda spec: False).shrink(
                FaultPlan(tuple(noise_events(3)))
            )

    def test_evaluations_are_memoized(self):
        seen = []

        def violates(spec):
            plan = spec.faults or FaultPlan()
            seen.append(plan.plan_hash())
            return CULPRIT_A in set(plan)

        shrinker = PlanShrinker(spec_with(), violates)
        shrinker.shrink(FaultPlan((CULPRIT_A,) + tuple(noise_events(4))))
        assert len(seen) == len(set(seen))
        assert shrinker.evaluations == len(seen)


class TestBroadcastBaseline:
    """The §2.3 non-genuine baseline: the canonical shrinker fixture."""

    def test_violation_is_intrinsic_so_minimal_plan_is_empty(self):
        plan = random_plan(7, "full", process_count=6, groups=("g1", "g2"))
        spec = spec_with(plan)
        minimal, shrinker = shrink_plan(spec, harness="broadcast")
        assert minimal.is_empty()
        assert len(minimal) <= 3
        assert shrinker.evaluations == 2

    def test_repro_file_round_trips_and_replays(self, tmp_path):
        plan = random_plan(7, "full", process_count=6, groups=("g1", "g2"))
        spec = spec_with(plan)
        minimal, _ = shrink_plan(spec, harness="broadcast")
        payload = repro_payload(spec, minimal, plan, harness="broadcast")
        assert payload["kind"] == "fault-repro"
        assert payload["original_events"] == len(plan)
        assert payload["minimal_events"] == 0
        assert payload["verdicts"]["minimality"] > 0

        path = tmp_path / "repro.json"
        write_repro(str(path), payload)
        loaded = load_repro(str(path))
        assert loaded == payload
        replay = replay_repro(loaded)
        assert replay["verdicts"] == payload["verdicts"]
        assert replay["truncated"] == payload["truncated"]

    def test_genuine_scenario_passes_the_broadcast_spec(self):
        # Sanity: the same spec under the real protocol has no violation,
        # so the shrinker correctly refuses to "shrink" it.
        spec = spec_with(None)
        outcome = run_harness("scenario", spec)
        assert not outcome["truncated"]
        assert all(v == 0 for v in outcome["verdicts"].values())
        assert not harness_violates("scenario")(spec)

    def test_unknown_harness_is_rejected(self):
        with pytest.raises(ValueError):
            run_harness("chaos", spec_with())


class TestShrinkCache:
    """Persistent memoization of shrink verdicts across invocations."""

    def _plan(self):
        return random_plan(7, "full", process_count=6, groups=("g1", "g2"))

    def test_second_shrink_costs_zero_evaluations(self, tmp_path):
        cache = str(tmp_path / "shrink-cache")
        spec = spec_with(self._plan())
        first_minimal, first = shrink_plan(
            spec, harness="broadcast", cache=cache
        )
        assert first.evaluations > 0
        second_minimal, second = shrink_plan(
            spec, harness="broadcast", cache=cache
        )
        assert second_minimal == first_minimal
        assert second.evaluations == 0
        assert second.cache_hits == second.probes

    def test_verdicts_are_namespaced_by_harness(self, tmp_path):
        cache = ShrinkCache(str(tmp_path / "shrink-cache"))
        spec = spec_with(self._plan())
        cache.put("broadcast", spec, True)
        assert cache.get("broadcast", spec) is True
        assert cache.get("scenario", spec) is None

    def test_corruption_is_a_miss(self, tmp_path):
        cache = ShrinkCache(str(tmp_path / "shrink-cache"))
        spec = spec_with(self._plan())
        cache.put("broadcast", spec, True)
        with open(cache.path_for("broadcast", spec), "w") as fh:
            fh.write("{torn")
        assert cache.get("broadcast", spec) is None
        assert cache.misses == 1

    def test_cache_argument_coercion(self, tmp_path):
        cache = ShrinkCache(str(tmp_path / "c"))
        assert ensure_shrink_cache(cache) is cache
        assert ensure_shrink_cache(None) is None
        assert isinstance(ensure_shrink_cache(str(tmp_path)), ShrinkCache)
        with pytest.raises(TypeError):
            ensure_shrink_cache(42)

    def test_stats_ride_the_repro_payload(self):
        spec = spec_with(self._plan())
        minimal, shrinker = shrink_plan(spec, harness="broadcast")
        payload = repro_payload(
            spec, minimal, spec.faults, harness="broadcast",
            shrinker=shrinker,
        )
        stats = payload["shrink"]
        assert stats["probes"] >= stats["evaluations"]
        assert stats["reduction"] == 1.0  # intrinsic: shrinks to empty
