"""Tests for the fault injector: hooks, budgets, audit."""

import pytest

from repro.faults.injector import (
    AdmissibilityError,
    BENIGN_SEND,
    FaultInjector,
    derive_injector_seed,
    group_index_map,
    injector_for,
)
from repro.faults.plan import FaultEvent, FaultPlan, plan_of
from repro.model.failures import crash_pattern, failure_free
from repro.model.messages import MessageBuffer
from repro.model.processes import make_processes, pset
from repro.workloads.topologies import disjoint_topology

PROCS = make_processes(4)
ALL = pset(PROCS)
P1, P2, P3, P4 = PROCS


def make_injector(*events, seed=0):
    return FaultInjector(plan_of(*events), seed=seed)


class TestSeedDerivation:
    def test_pure_function_of_plan_and_seed(self):
        plan = plan_of(FaultEvent(kind="link_delay", until=4, amount=2))
        assert derive_injector_seed(plan, 3) == derive_injector_seed(plan, 3)
        assert derive_injector_seed(plan, 3) != derive_injector_seed(plan, 4)
        other = plan_of(FaultEvent(kind="link_delay", until=5, amount=2))
        assert derive_injector_seed(plan, 3) != derive_injector_seed(other, 3)

    def test_injector_for_returns_none_without_plan(self):
        topology = disjoint_topology(2, group_size=3)
        assert injector_for(None, topology) is None
        injector = injector_for(FaultPlan(), topology, seed=7)
        assert injector is not None
        assert injector.groups == group_index_map(topology)


class TestLinkHooks:
    def test_delay_is_the_max_over_active_windows(self):
        injector = make_injector(
            FaultEvent(kind="link_delay", start=0, until=10, amount=2),
            FaultEvent(kind="link_delay", start=0, until=10, amount=5),
        )
        verdict = injector.on_send(1, 2, 3)
        assert verdict.delay == 5
        assert injector.on_send(1, 2, 50) is BENIGN_SEND

    def test_drop_budget_is_bounded_and_always_retransmits(self):
        event = FaultEvent(kind="link_drop", start=0, until=10, amount=2)
        injector = make_injector(event)
        drops = [
            v for t in range(10) for v in [injector.on_send(1, 2, t)] if v.dropped
        ]
        assert len(drops) <= 2
        assert injector.stats["dropped"] == injector.stats["retransmitted"]
        for verdict in drops:
            assert verdict.retransmit_at is not None
            assert verdict.retransmit_at >= event.until or verdict.retransmit_at > 0

    def test_dup_budget_is_bounded(self):
        injector = make_injector(
            FaultEvent(kind="link_dup", start=0, until=20, amount=3)
        )
        copies = sum(injector.on_send(1, 2, t).copies for t in range(20))
        assert copies <= 3
        assert injector.stats["duplicated"] == copies

    def test_pick_receive_is_fifo_outside_windows(self):
        injector = make_injector(
            FaultEvent(kind="link_reorder", start=5, until=8, amount=3)
        )
        assert injector.pick_receive(1, 4, 0) == 0
        assert injector.pick_receive(1, 4, 9) == 0

    def test_pick_receive_stays_inside_the_window(self):
        injector = make_injector(
            FaultEvent(kind="link_reorder", start=0, until=50, amount=3)
        )
        picks = {injector.pick_receive(1, 10, t) for t in range(50)}
        assert picks <= {0, 1, 2}
        assert len(picks) > 1  # the adversary actually reorders

    def test_single_candidate_is_never_reordered(self):
        injector = make_injector(
            FaultEvent(kind="link_reorder", start=0, until=50, amount=4)
        )
        assert all(injector.pick_receive(1, 1, t) == 0 for t in range(50))


class TestScheduleHooks:
    def test_churn_suppresses_targets_inside_the_window(self):
        injector = make_injector(
            FaultEvent(kind="churn", start=3, until=6, targets=(2,))
        )
        assert injector.suppresses(P2, 4)
        assert not injector.suppresses(P2, 2)
        assert not injector.suppresses(P2, 6)
        assert not injector.suppresses(P1, 4)
        assert not injector.suppresses(object(), 4)  # indexless actor

    def test_crash_burst_staggers_crashes(self):
        injector = make_injector(
            FaultEvent(kind="crash_burst", start=5, amount=3, targets=(2, 4))
        )
        pattern = injector.perturb_pattern(failure_free(ALL))
        assert pattern.crash_times[P2] == 5
        assert pattern.crash_times[P4] == 8

    def test_crash_burst_keeps_monotonicity(self):
        injector = make_injector(
            FaultEvent(kind="crash_burst", start=9, amount=0, targets=(1,))
        )
        base = crash_pattern(ALL, {P1: 4})
        assert injector.perturb_pattern(base).crash_times[P1] == 4

    def test_unknown_burst_target_is_rejected(self):
        injector = make_injector(
            FaultEvent(kind="crash_burst", start=1, targets=(9,))
        )
        with pytest.raises(AdmissibilityError):
            injector.perturb_pattern(failure_free(ALL))


class TestDetectorHooks:
    def test_sigma_noise_scopes_by_group(self):
        plan = plan_of(
            FaultEvent(kind="sigma_noise", group="g1", start=2, until=5)
        )
        injector = FaultInjector(
            plan, {"g1": frozenset({1, 2}), "g2": frozenset({3, 4})}
        )
        assert injector.sigma_noisy(frozenset({1, 2}), 3)
        assert not injector.sigma_noisy(frozenset({3, 4}), 3)
        assert not injector.sigma_noisy(frozenset({1, 2}), 5)

    def test_global_sigma_noise_covers_every_scope(self):
        injector = make_injector(
            FaultEvent(kind="sigma_noise", start=0, until=4)
        )
        assert injector.sigma_noisy(frozenset({1, 2, 3}), 1)

    def test_omega_delays_and_instability(self):
        injector = make_injector(
            FaultEvent(kind="omega_late", group="g2", until=7)
        )
        assert injector.omega_delays() == (("g2", 7),)
        injector.groups = {"g2": frozenset({3, 4})}
        assert injector.omega_unstable(frozenset({3, 4}), 5)
        assert not injector.omega_unstable(frozenset({3, 4}), 7)

    def test_gamma_lag_accumulates(self):
        injector = make_injector(
            FaultEvent(kind="gamma_delay", amount=2),
            FaultEvent(kind="gamma_delay", amount=3),
        )
        assert injector.extra_gamma_lag() == 5


class TestBufferIntegration:
    def test_delayed_datagram_is_invisible_until_release(self):
        injector = make_injector(
            FaultEvent(kind="link_delay", start=0, until=5, amount=3)
        )
        buffer = MessageBuffer(injector)
        buffer.release(0)
        buffer.send(P1, P2, "PING")
        assert not buffer.has_pending(P2)
        assert buffer.delayed_count() == 1
        buffer.release(2)
        assert not buffer.has_pending(P2)
        buffer.release(3)
        assert buffer.has_pending(P2)
        assert buffer.receive(P2).tag == "PING"

    def test_duplicates_get_fresh_uids(self):
        injector = make_injector(
            FaultEvent(kind="link_dup", start=0, until=10, amount=5)
        )
        buffer = MessageBuffer(injector)
        buffer.release(0)
        for _ in range(10):
            buffer.send(P1, P2, "PING")
        queue = buffer.pending_for(P2)
        assert len(queue) == 10 + injector.stats["duplicated"]
        assert len({d.uid for d in queue}) == len(queue)

    def test_dropped_datagram_is_retransmitted(self):
        event = FaultEvent(kind="link_drop", start=0, until=4, amount=10)
        injector = make_injector(event)
        buffer = MessageBuffer(injector)
        sent = dropped = 0
        for t in range(4):
            buffer.release(t)
            buffer.send(P1, P2, "PING", (t,))
            sent += 1
        dropped = injector.stats["dropped"]
        assert dropped > 0
        buffer.release(event.until + 1)
        assert len(buffer.pending_for(P2)) == sent
        assert buffer.delayed_count() == 0

    def test_without_injector_buffer_is_fifo(self):
        buffer = MessageBuffer()
        buffer.send(P1, P2, "A")
        buffer.send(P1, P2, "B")
        assert buffer.receive(P2).tag == "A"
        assert buffer.receive(P2).tag == "B"


class TestAudit:
    def test_clean_run_audits_clean(self):
        injector = make_injector(
            FaultEvent(kind="link_drop", start=0, until=4, amount=2)
        )
        buffer = MessageBuffer(injector)
        for t in range(8):
            buffer.release(t)
            buffer.send(P1, P2, "PING", (t,))
        buffer.release(injector.horizon)
        assert injector.audit(injector.horizon, buffer=buffer) == []

    def test_unbalanced_drops_are_flagged(self):
        injector = make_injector(
            FaultEvent(kind="link_drop", start=0, until=4, amount=2)
        )
        injector.stats["dropped"] = 1  # a drop without its retransmission
        violations = injector.audit(10)
        assert any("fair-lossy" in v for v in violations)

    def test_budget_overruns_are_flagged(self):
        injector = make_injector(
            FaultEvent(kind="link_dup", start=0, until=4, amount=1)
        )
        injector.stats["duplicated"] = 5
        violations = injector.audit(10)
        assert any("budget" in v for v in violations)

    def test_sequestered_datagrams_past_horizon_are_flagged(self):
        injector = make_injector(
            FaultEvent(kind="link_delay", start=0, until=3, amount=2)
        )
        buffer = MessageBuffer(injector)
        buffer.release(0)
        buffer.send(P1, P2, "PING")  # delayed, never released
        violations = injector.audit(injector.horizon, buffer=buffer)
        assert any("sequestered" in v for v in violations)

    def test_crash_monotonicity_violation_is_flagged(self):
        injector = make_injector(
            FaultEvent(kind="crash_burst", start=2, targets=(1,))
        )
        injector.perturb_pattern(crash_pattern(ALL, {P1: 4}))
        tampered = crash_pattern(ALL, {P1: 9})
        violations = injector.audit(10, pattern=tampered)
        assert any("monotonicity" in v for v in violations)

    def test_summary_reports_plan_identity(self):
        plan = plan_of(FaultEvent(kind="gamma_delay", amount=1))
        injector = FaultInjector(plan)
        summary = injector.summary()
        assert summary["plan_hash"] == plan.plan_hash()
        assert summary["events"] == 1
