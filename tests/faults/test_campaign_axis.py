"""Tests for the campaign `faults` axis and failed-row triage."""

from repro.campaign.executor import execute_spec, run_campaign
from repro.campaign.grid import Campaign, case
from repro.faults.nemesis import random_plan
from repro.groups.topology import paper_figure1_topology
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

PLAN = random_plan(0, "links", process_count=6)


def small_campaign(**kwargs):
    return Campaign(
        name="axis",
        cases=(
            case(
                "disjoint",
                disjoint_topology(2, group_size=3),
                sends=(Send(1, "g1", 0), Send(4, "g2", 0)),
            ),
        ),
        seeds=(0, 1),
        **kwargs,
    )


class TestFaultsAxis:
    def test_default_axis_changes_nothing(self):
        with_default = small_campaign()
        explicit = small_campaign(faults=(None,))
        assert with_default.specs() == explicit.specs()
        assert with_default.campaign_hash() == explicit.campaign_hash()
        assert "faults" not in with_default.to_json()

    def test_axis_expands_innermost(self):
        campaign = small_campaign(faults=(None, PLAN))
        specs = campaign.specs()
        assert len(specs) == 4  # 2 seeds x 2 plans
        assert [s.faults for s in specs] == [None, PLAN, None, PLAN]

    def test_labels_name_the_plan(self):
        campaign = small_campaign(faults=(None, PLAN))
        names = [s.name for s in campaign.specs()]
        assert names[0].endswith(":f-none")
        assert names[1].endswith(f":f{PLAN.plan_hash()[:6]}")

    def test_non_default_axis_is_in_the_manifest(self):
        campaign = small_campaign(faults=(PLAN,))
        body = campaign.to_json()
        assert body["faults"] == [PLAN.to_json()]
        assert campaign.campaign_hash() != small_campaign().campaign_hash()

    def test_faulted_campaign_runs_green(self):
        report = run_campaign(small_campaign(faults=(None, PLAN)))
        assert report.summary["failed"] == 0
        assert report.summary["violating_scenarios"] == 0
        faulted_rows = [r for r in report.rows if "faults" in r]
        assert len(faulted_rows) == 2
        for row in faulted_rows:
            assert row["faults"]["plan_hash"] == PLAN.plan_hash()


class TestFailedRowTriage:
    def test_failed_rows_carry_replay_coordinates(self):
        # The kernel backend rejects overlapping groups: a guaranteed,
        # content-independent scenario failure.
        bad = ScenarioSpec(
            topology=TopologySpec.capture(paper_figure1_topology()),
            sends=(Send(1, "g1", 0),),
            backend="kernel",
            faults=PLAN,
            seed=3,
        )
        row = execute_spec((0, bad))
        assert row["status"] == "failed"
        assert row["triage"] == {
            "spec_hash": bad.spec_hash(),
            "seed": 3,
            "backend": "kernel",
            "fault_plan_hash": PLAN.plan_hash(),
        }
        assert row["spec"] == bad.to_json()
