"""Determinism and RNG-isolation guarantees of faulted runs.

A faulted run must be a pure function of its spec: replaying the same
spec (same plan, same seed) yields byte-identical rows, on both
backends, regardless of the interpreter's global :mod:`random` state.
The source audit pins the discipline that makes this true — every use
of randomness in the fault layer goes through a per-run seeded
``random.Random`` instance, never the module-level functions.
"""

import random
import re

import repro.faults.injector as injector_module
import repro.faults.nemesis as nemesis_module
from repro.faults.nemesis import random_plan
from repro.workloads.runner import Send, run_scenario, triage_line, triage_record
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

TOPOLOGY = TopologySpec.capture(disjoint_topology(2, group_size=3))


def faulted_spec(backend):
    plan = random_plan(
        3, "full", process_count=6, groups=("g1", "g2"), with_crashes=True
    )
    return ScenarioSpec(
        topology=TOPOLOGY,
        sends=(Send(1, "g1", 0), Send(4, "g2", 1), Send(2, "g1", 2)),
        seed=5,
        backend=backend,
        faults=plan,
        name=f"determinism-{backend}",
    )


class TestReplayDeterminism:
    def test_engine_rows_replay_byte_identical(self):
        spec = faulted_spec("engine")
        assert run_scenario(spec).to_row() == run_scenario(spec).to_row()

    def test_kernel_rows_replay_byte_identical(self):
        spec = faulted_spec("kernel")
        assert run_scenario(spec).to_row() == run_scenario(spec).to_row()

    def test_global_random_state_cannot_leak_in(self):
        spec = faulted_spec("kernel")
        random.seed(1)
        first = run_scenario(spec).to_row()
        random.seed(999999)
        second = run_scenario(spec).to_row()
        assert first == second

    def test_delivery_records_replay_identically(self):
        spec = faulted_spec("kernel")
        a = run_scenario(spec).record.deliveries
        b = run_scenario(spec).record.deliveries
        assert a == b


class TestModuleRandomAudit:
    """No module-level randomness anywhere in the fault layer."""

    FORBIDDEN = re.compile(
        r"\brandom\.(random|randint|randrange|choice|choices|shuffle|"
        r"sample|uniform|seed|getrandbits)\("
    )

    def test_injector_uses_only_instance_rng(self):
        source = open(injector_module.__file__, encoding="utf-8").read()
        assert not self.FORBIDDEN.search(source)

    def test_nemesis_uses_only_instance_rng(self):
        source = open(nemesis_module.__file__, encoding="utf-8").read()
        assert not self.FORBIDDEN.search(source)


class TestTriage:
    def test_triage_record_names_the_replay_coordinates(self):
        spec = faulted_spec("kernel")
        record = triage_record(spec)
        assert record == {
            "spec_hash": spec.spec_hash(),
            "seed": 5,
            "backend": "kernel",
            "fault_plan_hash": spec.faults.plan_hash(),
        }

    def test_triage_line_is_greppable(self):
        spec = faulted_spec("engine")
        line = triage_line(spec)
        assert line.startswith("[triage ")
        assert spec.spec_hash()[:12] in line or spec.spec_hash() in line

    def test_faultless_triage_has_no_plan_hash(self):
        spec = faulted_spec("engine").faulted(None)
        assert triage_record(spec)["fault_plan_hash"] is None


class TestSpecFaultsAxis:
    def test_spec_json_round_trips_the_plan(self):
        spec = faulted_spec("engine")
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash() == spec.spec_hash()

    def test_faultless_spec_hash_is_pre_nemesis_stable(self):
        spec = faulted_spec("engine")
        bare = spec.faulted(None)
        # The faults key is excluded from the hash when absent, so v3
        # addresses of fault-free scenarios match their v2 addresses.
        assert bare.spec_hash() != spec.spec_hash()
        body = bare.to_json()
        assert body["faults"] is None

    def test_faulted_and_labelled_derivations(self):
        spec = faulted_spec("engine")
        assert spec.faulted(None).faults is None
        assert spec.labelled("x").name == "x"
        assert spec.labelled("x") == spec  # name is not identity
