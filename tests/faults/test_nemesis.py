"""Tests for the random nemesis: plan generation and the smoke matrix.

``test_matrix_passes_every_checker`` is the acceptance gate of the
fault layer: Algorithm 1 on the Figure 1 topology (engine backend) and
the Appendix-A kernel on a disjoint grid, under every injector mix at
smoke intensity, across 20 seeds — every §2.2 checker must hold and
every run must stay inside the admissibility envelope (the auditor
raises otherwise, which surfaces here as a scenario failure).
"""

import pytest

from repro.faults.__main__ import matrix_specs
from repro.faults.nemesis import (
    FAMILIES,
    MIXES,
    nemesis_plans,
    normalize_weights,
    random_plan,
)
from repro.faults.plan import DETECTOR_KINDS, LINK_KINDS
from repro.model.errors import ModelError
from repro.workloads.runner import run_scenario


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        for mix in MIXES:
            a = random_plan(11, mix, process_count=5, groups=("g1", "g2"))
            b = random_plan(11, mix, process_count=5, groups=("g1", "g2"))
            assert a == b
            assert a.plan_hash() == b.plan_hash()

    def test_different_seeds_differ(self):
        plans = {random_plan(seed, "full", process_count=5).plan_hash()
                 for seed in range(10)}
        assert len(plans) > 1

    def test_unknown_mix_is_rejected(self):
        with pytest.raises(ModelError):
            random_plan(0, "everything")

    def test_mixes_draw_from_their_kinds(self):
        for seed in range(10):
            links = random_plan(seed, "links", process_count=5)
            assert {e.kind for e in links} <= set(LINK_KINDS)
            detectors = random_plan(seed, "detectors", groups=("g1",))
            assert {e.kind for e in detectors} <= set(DETECTOR_KINDS)

    def test_every_plan_has_a_finite_horizon(self):
        for mix in MIXES:
            for seed in range(20):
                plan = random_plan(
                    seed, mix, process_count=5, groups=("g1",),
                    with_crashes=True,
                )
                assert plan.horizon() < 100

    def test_plan_grid_is_keyed_by_mix_and_seed(self):
        grid = nemesis_plans(range(3), mixes=("links", "full"))
        assert set(grid) == {(m, s) for m in ("links", "full") for s in range(3)}


class TestSmokeMatrix:
    def test_matrix_covers_backends_mixes_and_seeds(self):
        specs = matrix_specs(seeds=2)
        assert len(specs) == 2 * len(MIXES) * 2
        assert {s.backend for s in specs} == {"engine", "kernel"}
        assert all(s.faults is not None for s in specs)

    def test_matrix_passes_every_checker(self):
        for spec in matrix_specs(seeds=20):
            result = run_scenario(spec)
            result.assert_ok()


class TestWeightedMixes:
    """The ``weights=`` axis of random_plan and its validation."""

    #: Frozen plan hashes: the legacy (named-mix) and weighted RNG
    #: streams are pinned so refactors cannot silently re-seed either —
    #: corpus entries, cached rows and repro files all address plans by
    #: these hashes.
    LEGACY_FULL_S11 = (
        "aa08df74eff7bc25723c289ead559133fe206b17a2c04c38995a38a1fb0de112"
    )
    LEGACY_LINKS_S3 = (
        "68eb05743ac98cd6e80660c93a42a5555d4b57a2635cf0aaefb8ce34034ffdb6"
    )
    WEIGHTED_S11 = (
        "53d9e6f1a192eb4177b8f50364da3dd7e24b3fc7ffbb5efc785033a13f858f70"
    )
    RECOVERY_S11 = (
        "e68bbf6ead4376697bed5030afa7c2f0a8735821ffa34ce7e7f5a23045eb6c43"
    )
    CHAOS_S11 = (
        "bcbcbf319d106c42a4b6d0901e8c560a1fda5db75044596b1f126a3f11fab065"
    )

    def test_legacy_stream_is_frozen(self):
        plan = random_plan(11, "full", process_count=5, groups=("g1", "g2"))
        assert plan.plan_hash() == self.LEGACY_FULL_S11
        assert (
            random_plan(3, "links", process_count=4).plan_hash()
            == self.LEGACY_LINKS_S3
        )

    def test_recovery_mix_streams_are_frozen(self):
        """The new mixes get their own pins: each named mix seeds its
        own RNG stream, so these freeze independently of (and without
        perturbing) the legacy ``full``/``links`` pins above."""
        kwargs = dict(process_count=5, groups=("g1", "g2"))
        recovery = random_plan(11, "recovery", **kwargs)
        assert recovery.plan_hash() == self.RECOVERY_S11
        assert {e.kind for e in recovery.events} <= {
            "partition", "crash_recover", "link_flaky"
        }
        chaos = random_plan(11, "chaos", **kwargs)
        assert chaos.plan_hash() == self.CHAOS_S11
        # Chaos reaches every axis: links + detectors + recovery.
        kinds = {e.kind for e in chaos.events}
        assert "partition" in kinds or "crash_recover" in kinds
        assert any(k.startswith("link_") for k in kinds)

    def test_weighted_stream_is_frozen(self):
        plan = random_plan(
            11, "full", process_count=5, groups=("g1", "g2"),
            weights={"links": 2.0, "detectors": 1.0},
        )
        assert plan.plan_hash() == self.WEIGHTED_S11

    def test_weights_normalize_once_so_scale_is_irrelevant(self):
        kwargs = dict(process_count=5, groups=("g1", "g2"))
        a = random_plan(11, "full", weights={"links": 2, "detectors": 1},
                        **kwargs)
        b = random_plan(11, "full", weights={"links": 4, "detectors": 2},
                        **kwargs)
        c = random_plan(11, "full",
                        weights={"links": 0.5, "detectors": 0.25}, **kwargs)
        assert a == b == c

    def test_weights_replace_the_named_mix(self):
        kwargs = dict(process_count=5, groups=("g1", "g2"))
        weights = {"links": 2.0, "detectors": 1.0}
        assert random_plan(11, "links", weights=weights, **kwargs) == \
            random_plan(11, "full", weights=weights, **kwargs)

    def test_weighted_families_gate_the_drawn_kinds(self):
        for seed in range(10):
            plan = random_plan(
                seed, "full", process_count=5, groups=("g1",),
                weights={"links": 1.0},
            )
            assert {e.kind for e in plan} <= set(LINK_KINDS)

    def test_normalized_weights_sum_to_one(self):
        normalized = normalize_weights({"links": 3, "crashes": 1})
        assert sum(normalized.values()) == pytest.approx(1.0)
        assert normalized == {"links": 0.75, "crashes": 0.25}
        uniform = normalize_weights({f: 1 for f in FAMILIES})
        assert set(uniform) == set(FAMILIES)
        assert all(
            w == pytest.approx(1 / len(FAMILIES))
            for w in uniform.values()
        )

    @pytest.mark.parametrize(
        "weights",
        [
            {},
            {"quantum": 1.0},
            {"links": -1.0},
            {"links": float("nan")},
            {"links": float("inf")},
            {"links": "heavy"},
            {"links": True},
            {"links": 0.0, "detectors": 0.0},
        ],
    )
    def test_malformed_weights_fail_loudly(self, weights):
        with pytest.raises(ModelError):
            normalize_weights(weights)
        with pytest.raises(ModelError):
            random_plan(0, "full", process_count=5, weights=weights)
