"""Tests for the random nemesis: plan generation and the smoke matrix.

``test_matrix_passes_every_checker`` is the acceptance gate of the
fault layer: Algorithm 1 on the Figure 1 topology (engine backend) and
the Appendix-A kernel on a disjoint grid, under every injector mix at
smoke intensity, across 20 seeds — every §2.2 checker must hold and
every run must stay inside the admissibility envelope (the auditor
raises otherwise, which surfaces here as a scenario failure).
"""

import pytest

from repro.faults.__main__ import matrix_specs
from repro.faults.nemesis import MIXES, nemesis_plans, random_plan
from repro.faults.plan import DETECTOR_KINDS, LINK_KINDS
from repro.model.errors import ModelError
from repro.workloads.runner import run_scenario


class TestRandomPlan:
    def test_same_seed_same_plan(self):
        for mix in MIXES:
            a = random_plan(11, mix, process_count=5, groups=("g1", "g2"))
            b = random_plan(11, mix, process_count=5, groups=("g1", "g2"))
            assert a == b
            assert a.plan_hash() == b.plan_hash()

    def test_different_seeds_differ(self):
        plans = {random_plan(seed, "full", process_count=5).plan_hash()
                 for seed in range(10)}
        assert len(plans) > 1

    def test_unknown_mix_is_rejected(self):
        with pytest.raises(ModelError):
            random_plan(0, "everything")

    def test_mixes_draw_from_their_kinds(self):
        for seed in range(10):
            links = random_plan(seed, "links", process_count=5)
            assert {e.kind for e in links} <= set(LINK_KINDS)
            detectors = random_plan(seed, "detectors", groups=("g1",))
            assert {e.kind for e in detectors} <= set(DETECTOR_KINDS)

    def test_every_plan_has_a_finite_horizon(self):
        for mix in MIXES:
            for seed in range(20):
                plan = random_plan(
                    seed, mix, process_count=5, groups=("g1",),
                    with_crashes=True,
                )
                assert plan.horizon() < 100

    def test_plan_grid_is_keyed_by_mix_and_seed(self):
        grid = nemesis_plans(range(3), mixes=("links", "full"))
        assert set(grid) == {(m, s) for m in ("links", "full") for s in range(3)}


class TestSmokeMatrix:
    def test_matrix_covers_backends_mixes_and_seeds(self):
        specs = matrix_specs(seeds=2)
        assert len(specs) == 2 * len(MIXES) * 2
        assert {s.backend for s in specs} == {"engine", "kernel"}
        assert all(s.faults is not None for s in specs)

    def test_matrix_passes_every_checker(self):
        for spec in matrix_specs(seeds=20):
            result = run_scenario(spec)
            result.assert_ok()
