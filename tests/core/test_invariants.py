"""Runtime checks of the §4.4 invariants on live runs of Algorithm 1.

The paper proves a ladder of claims and lemmas about every run; here we
*observe* them on instrumented executions (sampling between fine-grained
rounds):

* Claim 14/15 — phases only progress, through the exact ladder
  start -> pending -> commit -> stable -> deliver;
* Lemma 17 — once a message is committed at p, it is locked in every
  ``LOG_{g∩h}`` with ``h ∈ G(p)``;
* Claim 35 / Lemma 32 — a locked message occupies the same position in
  all its intersection logs (correct families);
* Lemma 19 — the local delivery order refines the final log order;
* Lemma 24's consequence — stabilization records are written before the
  message is delivered anywhere that needed them.
"""

import pytest

from repro.core import COMMIT, DELIVER, MulticastSystem, Phase
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.workloads import random_sends, ring_topology

PROCS5 = make_processes(5)
ALL5 = pset(PROCS5)


class PhaseMonitor:
    """Samples every process's phase map between rounds."""

    def __init__(self, system):
        self.system = system
        self.history = {}  # (pid, mid) -> list of phases

    def sample(self):
        for pid, proc in self.system.processes.items():
            for mid, phase in proc.phase.items():
                self.history.setdefault((pid, mid), []).append(phase)

    def assert_monotone(self):
        for (pid, mid), phases in self.history.items():
            for earlier, later in zip(phases, phases[1:]):
                assert later >= earlier, (pid, mid, phases)

    def assert_ladder(self):
        """No phase is skipped: each observed jump is a ladder ascent."""
        for (pid, mid), phases in self.history.items():
            seen = [Phase.START] + phases
            for earlier, later in zip(seen, seen[1:]):
                assert later - earlier in (0, 1, 2, 3, 4)
                # Jumps are allowed between samples, but the terminal
                # phase, once reached, never changes (Lemma 18).
                if earlier == Phase.DELIVER:
                    assert later == Phase.DELIVER


def run_monitored(topology, pattern, sends, seed=0, rounds=300):
    system = MulticastSystem(topology, pattern, seed=seed)
    amc = AtomicMulticast(system)
    procs = sorted(topology.processes)
    monitor = PhaseMonitor(system)
    for send in sends:
        sender = next(p for p in procs if p.index == send.sender)
        if system.is_alive(sender):
            amc.multicast(sender, send.group)
    for _ in range(rounds):
        system.tick(action_budget=1)
        monitor.sample()
    return system, monitor


class TestPhaseLadder:
    def test_phases_are_monotone_and_terminal(self):
        topo = paper_figure1_topology()
        pattern = crash_pattern(ALL5, {PROCS5[1]: 8})
        system, monitor = run_monitored(
            topo, pattern, random_sends(topo, 6, seed=3), seed=3
        )
        monitor.assert_monotone()
        monitor.assert_ladder()

    def test_on_rings_too(self):
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = failure_free(pset(procs))
        system, monitor = run_monitored(
            topo, pattern, random_sends(topo, 5, seed=4), seed=4
        )
        monitor.assert_monotone()


class TestLemma17:
    """Commit implies locked in every intersection log of the process."""

    def test_committed_messages_are_locked_everywhere(self):
        topo = paper_figure1_topology()
        system = MulticastSystem(topo, failure_free(ALL5), seed=5)
        amc = AtomicMulticast(system)
        amc.multicast(PROCS5[0], "g1")
        amc.multicast(PROCS5[2], "g3")
        for _ in range(200):
            system.tick(action_budget=1)
            for pid, proc in system.processes.items():
                for mid, phase in proc.phase.items():
                    if phase < COMMIT:
                        continue
                    message = proc.known[mid]
                    g = proc._destination_group(message)
                    for h in proc.my_groups:
                        if h != g and not g.intersects(h):
                            continue
                        ilog = system.space.intersection_log(g, h)
                        assert message in ilog
                        assert ilog.locked(message), (pid, mid, h.name)


class TestSamePositionAcrossLogs:
    """Claim 35 / Lemma 32: one final position per message."""

    def test_locked_positions_agree(self):
        topo = paper_figure1_topology()
        system = MulticastSystem(topo, failure_free(ALL5), seed=6)
        amc = AtomicMulticast(system)
        for send in random_sends(topo, 6, seed=6):
            sender = next(p for p in PROCS5 if p.index == send.sender)
            amc.multicast(sender, send.group)
        amc.run()
        for message in system.record.delivered_messages():
            positions = set()
            g = next(
                grp for grp in topo.groups if grp.members == message.dst
            )
            for h in topo.groups:
                if h != g and not g.intersects(h):
                    continue
                ilog = system.space.intersection_log(g, h)
                if message in ilog and ilog.locked(message):
                    positions.add(ilog.pos(message))
            assert len(positions) <= 1, (message, positions)


class TestLemma19:
    """Local delivery order refines the final shared-log order."""

    def test_delivery_follows_log_order(self):
        topo = ring_topology(4)
        procs = make_processes(4)
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=7)
        amc = AtomicMulticast(system)
        for send in random_sends(topo, 8, seed=7):
            sender = next(p for p in procs if p.index == send.sender)
            amc.multicast(sender, send.group)
        amc.run()
        for p in procs:
            order = system.record.local_order(p)
            index = {m.mid: i for i, m in enumerate(order)}
            for g in topo.groups_of(p):
                for h in topo.groups_of(p):
                    if h != g and not g.intersects(h):
                        continue
                    ilog = system.space.intersection_log(g, h)
                    for m in order:
                        for m_prime in order:
                            if m.mid == m_prime.mid:
                                continue
                            if (
                                m in ilog
                                and m_prime in ilog
                                and ilog.precedes(m, m_prime)
                                and index[m.mid] > index[m_prime.mid]
                            ):
                                pytest.fail(
                                    f"{p.name} delivered {m_prime.mid} "
                                    f"before {m.mid} against "
                                    f"{ilog.name}'s order"
                                )
