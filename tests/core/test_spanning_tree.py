"""Tests for the §7 spanning-tree strongly genuine solution."""

import pytest

from repro.core.spanning_tree import SpanningTreeMulticast, spanning_tree_order
from repro.groups import paper_figure1_topology
from repro.model import failure_free, make_processes, pset
from repro.props import (
    check_integrity,
    check_minimality,
    check_ordering,
    check_termination,
)
from repro.workloads import chain_topology, disjoint_topology, ring_topology

PROCS5 = make_processes(5)
ALL5 = pset(PROCS5)


class TestSpanningTreeOrder:
    def test_ranks_are_a_permutation(self):
        topo = paper_figure1_topology()
        rank, parent = spanning_tree_order(topo)
        assert sorted(rank.values()) == list(range(len(topo.groups)))

    def test_parents_follow_intersections(self):
        topo = paper_figure1_topology()
        rank, parent = spanning_tree_order(topo)
        roots = [g for g, p in parent.items() if p is None]
        assert len(roots) == 1  # figure 1's graph is connected
        for child, par in parent.items():
            if par is not None:
                assert child.intersects(par)
                assert rank[par] < rank[child]

    def test_forest_per_connected_component(self):
        topo = disjoint_topology(3, group_size=2)
        rank, parent = spanning_tree_order(topo)
        roots = [g for g, p in parent.items() if p is None]
        assert len(roots) == 3


class TestSpanningTreeMulticast:
    def run_workload(self, topo, sends, seed=0):
        procs = sorted(topo.processes)
        protocol = SpanningTreeMulticast(topo, failure_free(topo.processes))
        for sender_index, group in sends:
            sender = procs[sender_index - 1]
            protocol.multicast(sender, group)
        protocol.run()
        return protocol

    def test_orders_on_cyclic_topology(self):
        """The failure-free case the paper highlights: F != empty is no
        obstacle for the spanning-tree discipline."""
        topo = ring_topology(4)
        protocol = self.run_workload(
            topo, [(1, "g1"), (2, "g2"), (3, "g3"), (4, "g4")]
        )
        assert check_integrity(protocol.record) == []
        assert check_ordering(protocol.record) == []
        assert check_termination(protocol.record) == []
        assert check_minimality(protocol.record) == []

    def test_orders_on_figure1(self):
        topo = paper_figure1_topology()
        protocol = self.run_workload(
            topo, [(1, "g1"), (2, "g2"), (1, "g3"), (5, "g4"), (2, "g1")]
        )
        assert check_ordering(protocol.record) == []
        assert check_termination(protocol.record) == []

    def test_disjoint_subtrees_progress_in_isolation(self):
        """Strong genuineness's point: traffic in one component never
        touches (or waits for) the others."""
        topo = disjoint_topology(2, group_size=2)
        procs = make_processes(4)
        protocol = SpanningTreeMulticast(topo, failure_free(pset(procs)))
        m = protocol.multicast(procs[0], "g1")
        protocol.run()
        assert protocol.record.delivered_by(m) == topo.group("g1").members
        assert protocol.record.steps_of(procs[2]) == 0
        assert protocol.record.steps_of(procs[3]) == 0

    def test_tree_order_constrains_stamping(self):
        """A message to a <_T-larger group waits for in-flight messages
        at smaller intersecting groups, never the other way round."""
        topo = chain_topology(3)
        procs = make_processes(4)
        protocol = SpanningTreeMulticast(topo, failure_free(pset(procs)))
        rank, _ = spanning_tree_order(topo)
        first = min(topo.groups, key=lambda g: rank[g])
        last = max(topo.groups, key=lambda g: rank[g])
        m_last = protocol.multicast(sorted(last.members)[0], last.name)
        m_first = protocol.multicast(sorted(first.members)[0], first.name)
        protocol.tick()
        protocol.run()
        assert check_ordering(protocol.record) == []
        assert check_termination(protocol.record) == []
