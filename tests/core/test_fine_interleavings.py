"""Safety under the finest interleaving: one action per process per round.

The coarse scan lets a process fire its whole pipeline atomically; the
budgeted scan interleaves single actions of different processes, which is
a strictly more adversarial schedule.  All §2.2 properties must still
hold, and the outcomes must match the coarse runs.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import AtomicMulticast, MulticastSystem
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok
from repro.workloads import hub_topology, random_sends, ring_topology

SLOW = settings(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def drive_fine(system, amc, max_rounds=2500):
    rounds = 0
    idle = 0
    while rounds < max_rounds and idle < 3:
        fired = system.tick(action_budget=1)
        rounds += 1
        if fired == 0 and system.time >= system.settle_horizon():
            idle += 1
        else:
            idle = 0
    return rounds


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    k=st.integers(min_value=3, max_value=5),
)
def test_ring_safety_under_fine_interleaving(seed, k):
    topo = ring_topology(k)
    procs = make_processes(k)
    system = MulticastSystem(topo, failure_free(pset(procs)), seed=seed)
    amc = AtomicMulticast(system)
    for send in random_sends(topo, 5, seed=seed):
        sender = next(p for p in procs if p.index == send.sender)
        amc.multicast(sender, send.group)
    drive_fine(system, amc)
    assert_run_ok(system.record)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    victim=st.integers(min_value=0, max_value=4),
)
def test_hub_safety_with_crash_under_fine_interleaving(seed, victim):
    topo = hub_topology(3)
    procs = make_processes(len(topo.processes))
    pattern = crash_pattern(
        pset(procs), {procs[victim % len(procs)]: 6}
    )
    system = MulticastSystem(topo, pattern, seed=seed)
    amc = AtomicMulticast(system)
    for send in random_sends(topo, 4, seed=seed):
        sender = next(p for p in procs if p.index == send.sender)
        amc.multicast(sender, send.group)
    drive_fine(system, amc)
    assert_run_ok(system.record)


def test_fine_and_coarse_agree_on_delivery_sets():
    topo = ring_topology(4)
    procs = make_processes(4)

    def run(fine):
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=77)
        amc = AtomicMulticast(system)
        sent = [
            amc.multicast(procs[0], "g1"),
            amc.multicast(procs[1], "g2"),
            amc.multicast(procs[2], "g3"),
        ]
        if fine:
            drive_fine(system, amc)
        else:
            amc.run()
        return {
            m.mid: system.record.delivered_by(m) for m in sent
        }

    assert run(fine=True) == run(fine=False)
