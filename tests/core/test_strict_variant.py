"""Tests for the strict variation of §6.1 (real-time order)."""

import pytest

from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.model import (
    SimulationError,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import assert_run_ok, check_strict_ordering
from repro.workloads import ring_topology

PROCS = make_processes(5)
ALL = pset(PROCS)
P1, P2, P3, P4, P5 = PROCS


def strict_system(pattern=None, seed=0, indicator_lag=0):
    return MulticastSystem(
        paper_figure1_topology(),
        pattern or failure_free(ALL),
        variant="strict",
        indicator_lag=indicator_lag,
        seed=seed,
    )


class TestStrictDelivery:
    def test_failure_free_delivery_works(self):
        system = strict_system()
        m = system.multicast(P1, "g1")
        system.run()
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)
        assert check_strict_ordering(system.record) == []

    def test_sequential_messages_respect_real_time(self):
        system = strict_system(seed=2)
        amc = AtomicMulticast(system)
        first = amc.multicast(P1, "g1")
        system.run()
        # first fully delivered before second is multicast: ~> edge.
        second = amc.multicast(P3, "g3")
        system.run()
        assert check_strict_ordering(system.record) == []
        assert_run_ok(system.record)

    def test_strict_needs_indicators(self):
        from repro.core.algorithm1 import Algorithm1Process

        with pytest.raises(SimulationError):
            Algorithm1Process(
                P1,
                paper_figure1_topology(),
                None,
                None,
                on_deliver=lambda p, m: None,
                variant="strict",
                indicators=None,
            )

    def test_unknown_variant_rejected(self):
        with pytest.raises(SimulationError):
            MulticastSystem(
                paper_figure1_topology(), failure_free(ALL), variant="bogus"
            )


class TestStrictUnderCrashes:
    def test_indicator_unblocks_after_intersection_death(self):
        """The strict variant waits on every intersecting group; the
        indicator 1^{g∩h} is its only escape once g∩h died."""
        pattern = crash_pattern(ALL, {P2: 1})
        system = strict_system(pattern, seed=3)
        m = system.multicast(P1, "g1")
        system.run()
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)
        assert check_strict_ordering(system.record) == []

    def test_indicator_lag_slows_but_preserves_liveness(self):
        pattern = crash_pattern(ALL, {P2: 1})
        fast = strict_system(pattern, seed=4)
        slow = strict_system(pattern, seed=4, indicator_lag=30)
        mf = fast.multicast(P1, "g1")
        ms = slow.multicast(P1, "g1")
        fast.run()
        slow.run(max_rounds=300)
        assert fast.everyone_delivered(mf)
        assert slow.everyone_delivered(ms)
        assert slow.time >= fast.time

    def test_strict_on_ring_with_crash(self):
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[2]: 2})
        system = MulticastSystem(topo, pattern, variant="strict", seed=5)
        m = system.multicast(procs[0], "g1")
        system.run()
        assert system.everyone_delivered(m)
        assert check_strict_ordering(system.record) == []


class TestStrictVsVanillaBehaviour:
    def test_strict_waits_on_all_intersections_not_just_gamma(self):
        """On an acyclic (chain) topology gamma is empty, so the vanilla
        stable precondition is vacuous; strict still coordinates with
        every intersecting group, which costs extra stabilization
        records."""
        from repro.workloads import chain_topology

        topo = chain_topology(3)
        procs = make_processes(4)
        pattern = failure_free(pset(procs))

        vanilla = MulticastSystem(topo, pattern, seed=6)
        mv = vanilla.multicast(procs[1], "g2")
        vanilla.run()

        strict = MulticastSystem(topo, pattern, variant="strict", seed=6)
        ms = strict.multicast(procs[1], "g2")
        strict.run()

        assert vanilla.everyone_delivered(mv)
        assert strict.everyone_delivered(ms)
        # Strict produces at least as many stabilization records.
        v_recs = vanilla.space.group_log(topo.group("g2")).stabilization_records_for(mv.mid)
        s_recs = strict.space.group_log(topo.group("g2")).stabilization_records_for(ms.mid)
        assert len(s_recs) >= len(v_recs)
