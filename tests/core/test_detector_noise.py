"""Robustness: Algorithm 1 under detectors that misbehave for a prefix.

The failure-detector classes only constrain *eventual* behaviour: Omega
may elect doomed leaders for any finite prefix, gamma may be slow to
exclude (completeness is eventual), indicators may lag.  Algorithm 1 must
stay safe at all times and live once the detectors stabilize.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok, check_pairwise_ordering
from repro.workloads import chain_topology, random_sends, ring_topology

PROCS5 = make_processes(5)
ALL5 = pset(PROCS5)


class TestOmegaInstability:
    def test_late_omega_stabilization_preserves_properties(self):
        pattern = crash_pattern(ALL5, {PROCS5[1]: 2})
        system = MulticastSystem(
            paper_figure1_topology(),
            pattern,
            omega_stabilization=40,
            seed=1,
        )
        m = system.multicast(PROCS5[0], "g1")
        system.run(max_rounds=300)
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        stabilization=st.integers(min_value=0, max_value=60),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_any_stabilization_time_is_safe(self, stabilization, seed):
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[1]: 5})
        system = MulticastSystem(
            topo, pattern, omega_stabilization=stabilization, seed=seed
        )
        amc = AtomicMulticast(system)
        for send in random_sends(topo, 5, seed=seed):
            sender = next(p for p in procs if p.index == send.sender)
            if system.is_alive(sender):
                amc.multicast(sender, send.group)
        amc.run(max_rounds=400)
        assert_run_ok(system.record)


class TestCombinedLags:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        gamma_lag=st.integers(min_value=0, max_value=30),
        indicator_lag=st.integers(min_value=0, max_value=30),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_strict_variant_with_lagging_detectors(
        self, gamma_lag, indicator_lag, seed
    ):
        pattern = crash_pattern(ALL5, {PROCS5[1]: 3})
        system = MulticastSystem(
            paper_figure1_topology(),
            pattern,
            variant="strict",
            gamma_lag=gamma_lag,
            indicator_lag=indicator_lag,
            seed=seed,
        )
        m = system.multicast(PROCS5[0], "g1")
        system.run(max_rounds=400)
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)


class TestPairwiseOrderingOnAcyclicTopologies:
    """§7: with F = ∅ the problem reduces to pairwise agreement, and the
    runs of Algorithm 1 satisfy the pairwise-ordering definition."""

    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        k=st.integers(min_value=2, max_value=4),
    )
    def test_chain_runs_are_pairwise_ordered(self, seed, k):
        topo = chain_topology(k)
        procs = make_processes(k + 1)
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=seed)
        amc = AtomicMulticast(system)
        for send in random_sends(topo, 6, seed=seed):
            sender = next(p for p in procs if p.index == send.sender)
            amc.multicast(sender, send.group)
        amc.run(max_rounds=300)
        assert check_pairwise_ordering(system.record) == []
        assert_run_ok(system.record)
