"""Quorum gating and participation sets: the engine-level realism that
drives §5 (necessity sub-runs) and §6.2 (group parallelism)."""

import pytest

from repro.core import MulticastSystem
from repro.groups import topology_from_indices
from repro.model import by_indices, crash_pattern, failure_free, make_processes, pset
from repro.props import check_group_parallelism
from repro.workloads import chain_topology


def two_groups():
    """g1 = {p1,p2}, g2 = {p2,p3}: F = empty."""
    return chain_topology(2), make_processes(3)


class TestQuorumGating:
    def test_partial_participation_blocks_delivery(self):
        """Only p1 scheduled: LOG_g1 cannot gather its quorum ({p1, p2}
        both alive), so the multicast stays undelivered — the behaviour
        that makes the responsiveness signal of Algorithm 2 meaningful."""
        topo, procs = two_groups()
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=1)
        m = system.multicast(procs[0], "g1")
        for _ in range(30):
            system.tick(participation=by_indices(1))
        assert system.record.delivered_by(m) == frozenset()

    def test_full_group_participation_unblocks(self):
        topo, procs = two_groups()
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=1)
        m = system.multicast(procs[0], "g1")
        for _ in range(30):
            system.tick(participation=by_indices(1))  # blocked
        for _ in range(60):
            system.tick(participation=by_indices(1, 2))  # quorum available
        assert system.record.delivered_by(m) == by_indices(1, 2)

    def test_crashed_members_leave_the_required_quorum(self):
        """Once p2 crashes, the Sigma_g1 sample shrinks to {p1}: p1 alone
        can finish (g1 still has a correct member)."""
        topo, procs = two_groups()
        pattern = crash_pattern(pset(procs), {procs[1]: 3})
        system = MulticastSystem(topo, pattern, seed=2)
        m = system.multicast(procs[0], "g1")
        for _ in range(60):
            system.tick(participation=by_indices(1))
        assert procs[0] in system.record.delivered_by(m)

    def test_doomed_scope_pins_quorum_to_full_scope(self):
        """If every member of a scope is faulty, the oracle pins the
        quorum to the full scope; ops block as soon as one member died."""
        topo, procs = two_groups()
        pattern = crash_pattern(pset(procs), {procs[0]: 5, procs[1]: 1})
        system = MulticastSystem(topo, pattern, seed=3)
        system.tick()
        system.tick()  # p2 is now crashed; p1 alive but doomed
        assert not system.quorum_ok(procs[0], by_indices(1, 2))


class TestGroupParallelism:
    def test_isolated_group_delivers_without_contention(self):
        """P-fair run with P = Correct n dst(m): with F = empty and no
        cross-group contention, Algorithm 1 delivers in isolation."""
        topo, procs = two_groups()
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=4)
        m = system.multicast(procs[0], "g1")
        participation = by_indices(1, 2)  # exactly dst(m)
        for _ in range(80):
            system.tick(participation=participation)
        assert (
            check_group_parallelism(system.record, m, participation) == []
        )

    def test_isolation_mode_keeps_slow_path_inside_intersection(self):
        topo, procs = two_groups()
        system = MulticastSystem(
            topo, failure_free(pset(procs)), isolation=True, seed=5
        )
        g1, g2 = topo.group("g1"), topo.group("g2")
        ilog = system.space.intersection_log(g1, g2)
        assert ilog.isolation
        assert ilog._slow_scope() == g1.intersection(g2)

    def test_hosted_slow_path_requires_the_host_group(self):
        topo, procs = two_groups()
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=6)
        g1, g2 = topo.group("g1"), topo.group("g2")
        ilog = system.space.intersection_log(g1, g2)
        assert not ilog.isolation
        assert ilog._slow_scope() == g1.members  # host = smaller name

    def test_wider_intersection_contention_blocks_in_isolation(self):
        """|g1 n g2| = 2: out-of-order appends on LOG_{g1∩g2} force the
        slow path, whose quorum (host group g1) is outside the isolated
        participation set — delivery of the g2 message stalls.  The §6.2
        isolation configuration unblocks the same schedule."""
        topo = topology_from_indices(
            4, {"g1": [1, 2, 3], "g2": [2, 3, 4]}
        )
        procs = make_processes(4)

        def drive(isolation):
            system = MulticastSystem(
                topo,
                failure_free(pset(procs)),
                isolation=isolation,
                seed=7,
            )
            g1, g2 = topo.group("g1"), topo.group("g2")
            ilog = system.space.intersection_log(g1, g2)
            # Simulate pre-existing step contention from a racy prefix.
            ilog._established.append(("append", "phantom"))
            ilog._cursor[procs[1]] = 0
            m = system.multicast(procs[1], "g2")
            for _ in range(80):
                system.tick(participation=by_indices(2, 3, 4))
            return system.record.delivered_by(m)

        blocked = drive(isolation=False)
        unblocked = drive(isolation=True)
        # The intersection members need the contended log; its slow-path
        # quorum (p1) is silent, so they stall...
        assert not (blocked & by_indices(2, 3))
        # ...unless the backing consensus lives inside g1 n g2 (§6.2).
        assert unblocked == by_indices(2, 3, 4)
