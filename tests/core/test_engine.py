"""Tests for the round engine mechanics."""

import pytest

from repro.core import MulticastSystem
from repro.groups import paper_figure1_topology
from repro.model import (
    SimulationError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.workloads import chain_topology

PROCS = make_processes(5)
ALL = pset(PROCS)


class TestConstruction:
    def test_pattern_topology_mismatch_rejected(self):
        topo = paper_figure1_topology()
        wrong = failure_free(pset(make_processes(3)))
        with pytest.raises(SimulationError):
            MulticastSystem(topo, wrong)

    def test_strict_variant_builds_indicators(self):
        system = MulticastSystem(
            paper_figure1_topology(), failure_free(ALL), variant="strict"
        )
        assert len(system.indicators) == len(
            set(
                g.intersection(h)
                for g, h in paper_figure1_topology().intersecting_pairs()
            )
        )

    def test_vanilla_variant_has_no_indicators(self):
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        assert system.indicators == {}


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            system = MulticastSystem(
                paper_figure1_topology(), failure_free(ALL), seed=seed
            )
            system.multicast(PROCS[0], "g1")
            system.multicast(PROCS[2], "g3")
            system.run()
            return [
                (e.time, e.process, e.message.mid)
                for e in system.record.deliveries
            ]

        assert run(42) == run(42)

    def test_different_seeds_may_interleave_differently(self):
        # Not an invariant, but the seeds must at least both be correct.
        for seed in (1, 2):
            system = MulticastSystem(
                paper_figure1_topology(), failure_free(ALL), seed=seed
            )
            m = system.multicast(PROCS[0], "g3")
            system.run()
            assert system.everyone_delivered(m)


class TestClockAndCrash:
    def test_time_advances_per_tick(self):
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        assert system.time == 0
        system.tick()
        system.tick()
        assert system.time == 2

    def test_crashed_processes_stop_acting(self):
        pattern = crash_pattern(ALL, {PROCS[0]: 1})
        system = MulticastSystem(paper_figure1_topology(), pattern)
        system.multicast(PROCS[0], "g1")  # at t=0, still alive
        system.run()
        # No step of p1 recorded after its crash time.
        for step in system.record.steps:
            if step.process == PROCS[0]:
                assert step.time <= 1

    def test_settle_horizon_covers_lags(self):
        pattern = crash_pattern(ALL, {PROCS[1]: 7})
        system = MulticastSystem(
            paper_figure1_topology(), pattern, gamma_lag=5
        )
        assert system.settle_horizon() >= 12

    def test_is_alive_tracks_pattern(self):
        pattern = crash_pattern(ALL, {PROCS[2]: 2})
        system = MulticastSystem(paper_figure1_topology(), pattern)
        assert system.is_alive(PROCS[2])
        system.tick()
        system.tick()
        assert not system.is_alive(PROCS[2])


class TestComponents:
    def test_components_run_before_the_algorithm(self):
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        calls = []

        def component(pid, t):
            calls.append((pid, t))
            return 0

        system.add_component(component)
        system.tick()
        assert len(calls) == 5  # one call per alive process

    def test_component_fires_count_into_quiescence(self):
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        budget = {"left": 3}

        def component(pid, t):
            if budget["left"] > 0:
                budget["left"] -= 1
                return 1
            return 0

        system.add_component(component)
        rounds = system.run(max_rounds=50)
        assert budget["left"] == 0


class TestActionBudget:
    def test_budget_one_fires_at_most_one_action_per_process(self):
        system = MulticastSystem(chain_topology(2), failure_free(pset(make_processes(3))))
        system.multicast(make_processes(3)[0], "g1")
        fired = system.tick(action_budget=1)
        assert fired <= 3  # one per alive process at most

    def test_budget_none_equals_full_scan(self):
        procs = make_processes(3)
        a = MulticastSystem(chain_topology(2), failure_free(pset(procs)), seed=3)
        b = MulticastSystem(chain_topology(2), failure_free(pset(procs)), seed=3)
        ma = a.multicast(procs[0], "g1")
        mb = b.multicast(procs[0], "g1")
        a.run()
        rounds = 0
        while not b.everyone_delivered(mb) and rounds < 200:
            b.tick(action_budget=1)
            rounds += 1
        assert a.everyone_delivered(ma)
        assert b.everyone_delivered(mb)
        # Fine-grained interleaving takes at least as many rounds.
        assert rounds >= 1
