"""Tests for the vanilla interface (Proposition 1 reduction)."""

import pytest

from repro.core import AtomicMulticast, MulticastSystem
from repro.groups import paper_figure1_topology
from repro.model import (
    SimulationError,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import assert_run_ok

PROCS = make_processes(5)
ALL = pset(PROCS)
P1, P2, P3, P4, P5 = PROCS


def fresh(pattern=None, seed=0):
    system = MulticastSystem(
        paper_figure1_topology(), pattern or failure_free(ALL), seed=seed
    )
    return system, AtomicMulticast(system)


class TestVanillaInterface:
    def test_concurrent_multicasts_to_same_group_are_serialized(self):
        system, amc = fresh()
        a = amc.multicast(P1, "g1", "a")
        b = amc.multicast(P2, "g1", "b")  # concurrently, no waiting
        amc.run()
        assert system.delivered_at(P1) == system.delivered_at(P2)
        assert set(system.delivered_at(P1)) == {a, b}
        assert_run_ok(system.record)

    def test_sender_outside_group_rejected(self):
        _, amc = fresh()
        with pytest.raises(SimulationError):
            amc.multicast(P5, "g1")

    def test_helping_delivers_for_crashed_sender(self):
        """The sender crashes right after enqueueing into L_g: the other
        member pushes the message through Algorithm 1."""
        pattern = crash_pattern(ALL, {P1: 1})
        system, amc = fresh(pattern, seed=3)
        m = amc.multicast(P1, "g1")
        amc.run()
        assert P2 in system.record.delivered_by(m)
        assert_run_ok(system.record)

    def test_burst_across_groups(self):
        system, amc = fresh(seed=9)
        messages = [
            amc.multicast(P1, "g1"),
            amc.multicast(P2, "g2"),
            amc.multicast(P3, "g3"),
            amc.multicast(P4, "g4"),
            amc.multicast(P2, "g1"),
            amc.multicast(P3, "g2"),
        ]
        amc.run()
        for m in messages:
            assert system.everyone_delivered(m)
        assert_run_ok(system.record)

    def test_pipelined_multicasts_from_one_sender(self):
        """A single sender floods one group without waiting — the
        reduction restores the group-sequential discipline internally."""
        system, amc = fresh(seed=1)
        sent = [amc.multicast(P1, "g1", i) for i in range(5)]
        amc.run()
        assert list(system.delivered_at(P2)) == sent
        assert_run_ok(system.record)

    def test_total_order_inside_group_is_unique(self):
        system, amc = fresh(seed=4)
        for i in range(4):
            sender = (P1, P2)[i % 2]
            amc.multicast(sender, "g1", i)
        amc.run()
        assert system.delivered_at(P1) == system.delivered_at(P2)

    def test_run_record_counts_one_multicast_event_per_message(self):
        system, amc = fresh()
        amc.multicast(P1, "g1")
        amc.run()
        assert len(system.record.multicasts) == 1
