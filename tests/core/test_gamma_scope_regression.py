"""Pinned regression: the ROADMAP item 6 termination gap.

``random_topology(42)`` (g1={1,2,3,6}, g2={2,4}, g3={2,5,6,7},
g4={1,7}) with p1 crashed at t=0 makes g1∩g4={p1} wholly faulty from
the start, so the run exercises the γ/faulty-family escape hatch.
Under the pre-fix per-process gamma scoping, members of g3 that carry
no intersection of the live family {g1,g2,g3} (p5, and p7 whose
families are all faulty) saw an *empty* partner set, committed early,
and decided a stale consensus position — locking messages at
inconsistent positions across the intersection logs.  The resulting
order cycle (LOG_g1∩g2: p2#1 < p2#2, LOG_g2∩g3: p2#2 < p5#1,
LOG_g1∩g3: p5#1 < p2#1) blocked stabilize at p2/p6 forever while the
run quiesced, violating Termination.

The fix scopes ``gamma(g)`` partner sets and the ``CONS_{m,f}`` family
key to the *group* (``Mu.gamma_scope="group"``): every member of ``g``
gates commit on the same live-family partners and proposes to the same
consensus instance, so the decided position dominates every append.

Falsifying example: seed=365019, topo_seed=42, send_count=10,
crash_indices={0}, crash_time=0 (found by
``test_random_runs.py::test_random_topology_runs_satisfy_all_properties``).
"""

from repro.model import crash_pattern, pset
from repro.props import assert_run_ok
from repro.workloads import (
    ScenarioSpec,
    random_sends,
    random_topology,
    run_scenario,
)


def _falsifying_spec(**overrides):
    topology = random_topology(42)
    procs = sorted(topology.processes)
    pattern = crash_pattern(pset(procs), {procs[0]: 0})
    sends = random_sends(topology, 10, seed=365019)
    return ScenarioSpec.capture(
        topology, pattern, sends, seed=365019, **overrides
    )


def test_wholly_crashed_intersection_terminates():
    """The falsifying example now delivers everywhere and quiesces."""
    result = run_scenario(_falsifying_spec())
    assert result.quiescent
    assert_run_ok(result.record)


def test_wholly_crashed_intersection_terminates_scan_mode():
    """The fix is not an artifact of event-driven scheduling."""
    result = run_scenario(_falsifying_spec(scheduling="scan"))
    assert result.quiescent
    assert_run_ok(result.record)


def test_group_scope_consensus_instances_are_shared():
    """All committers of one message reach one CONS_{m,f} instance.

    Under the pre-fix scoping this run minted *two* consensus objects
    per contended message (one keyed by the full family closure, one by
    a non-carrier's empty key); group scoping must collapse them.
    """
    result = run_scenario(_falsifying_spec())
    space = result.system.space
    seen = {}
    for (message_key, family_key) in space._consensus:
        seen.setdefault(message_key, []).append(family_key)
    duplicates = {
        mid: keys for mid, keys in seen.items() if len(keys) > 1
    }
    assert not duplicates, (
        "messages with more than one consensus instance: %r" % duplicates
    )
