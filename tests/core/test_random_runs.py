"""Randomized safety harness: Algorithm 1 under random topologies,
workloads, schedules and crashes must satisfy every §2.2 property plus
Minimality.  This is the executable counterpart of §4.4."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.model import crash_pattern, make_processes, pset
from repro.props import (
    assert_run_ok,
    check_integrity,
    check_minimality,
    check_ordering,
    check_termination,
)
from repro.workloads import (
    ScenarioSpec,
    chain_topology,
    disjoint_topology,
    hub_topology,
    random_sends,
    random_topology,
    ring_topology,
    run_scenario,
)

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


def crash_schedule(topology, crash_indices, crash_time):
    procs = sorted(topology.processes)
    crashes = {
        procs[i % len(procs)]: crash_time for i in crash_indices
    }
    return crash_pattern(pset(procs), crashes)


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    topo_seed=st.integers(min_value=0, max_value=50),
    send_count=st.integers(min_value=1, max_value=10),
    crash_indices=st.sets(st.integers(min_value=0, max_value=7), max_size=2),
    crash_time=st.integers(min_value=0, max_value=10),
)
def test_random_topology_runs_satisfy_all_properties(
    seed, topo_seed, send_count, crash_indices, crash_time
):
    topology = random_topology(topo_seed)
    pattern = crash_schedule(topology, crash_indices, crash_time)
    sends = random_sends(topology, send_count, seed=seed)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=seed))
    assert_run_ok(result.record)


@SLOW
@given(
    k=st.integers(min_value=3, max_value=6),
    seed=st.integers(min_value=0, max_value=10**6),
    victim=st.integers(min_value=0, max_value=5),
    crash_time=st.integers(min_value=0, max_value=8),
)
def test_ring_runs_satisfy_all_properties(k, seed, victim, crash_time):
    topology = ring_topology(k)
    pattern = crash_schedule(topology, {victim % k}, crash_time)
    sends = random_sends(topology, 8, seed=seed)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=seed))
    assert_run_ok(result.record)


@SLOW
@given(
    k=st.integers(min_value=2, max_value=5),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_chain_runs_satisfy_all_properties(k, seed):
    topology = chain_topology(k)
    sends = random_sends(topology, 8, seed=seed)
    pattern = crash_schedule(topology, set(), 0)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=seed))
    assert_run_ok(result.record)
    assert result.delivered_everywhere()


@SLOW
@given(
    seed=st.integers(min_value=0, max_value=10**6),
    crash_indices=st.sets(st.integers(min_value=0, max_value=6), max_size=3),
)
def test_hub_runs_with_crashes(seed, crash_indices):
    topology = hub_topology(4)
    pattern = crash_schedule(topology, crash_indices, crash_time=3)
    sends = random_sends(topology, 6, seed=seed)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=seed))
    assert_run_ok(result.record)


@SLOW
@given(seed=st.integers(min_value=0, max_value=10**6))
def test_disjoint_runs_are_embarrassingly_parallel(seed):
    topology = disjoint_topology(3, group_size=2)
    pattern = crash_schedule(topology, set(), 0)
    sends = random_sends(topology, 9, seed=seed)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=seed))
    assert_run_ok(result.record)
    # Only processes of groups that actually received traffic take steps.
    touched = set()
    for m in result.messages:
        touched |= set(m.dst)
    for p in topology.processes:
        if p not in touched:
            assert result.record.steps_of(p) == 0


def test_every_checker_is_exercised_once():
    """Plain (non-hypothesis) smoke covering the checkers individually."""
    topology = ring_topology(4)
    pattern = crash_schedule(topology, {1}, 4)
    sends = random_sends(topology, 6, seed=13)
    result = run_scenario(ScenarioSpec.capture(topology, pattern, sends, seed=13))
    assert check_integrity(result.record) == []
    assert check_termination(result.record) == []
    assert check_ordering(result.record) == []
    assert check_minimality(result.record) == []
