"""Tests for state-machine replication over strict multicast (§6.1)."""

import pytest

from repro.core import MulticastSystem
from repro.core.smr import ReplicatedStateMachine, kv_apply
from repro.groups import paper_figure1_topology, topology_from_indices
from repro.model import (
    SimulationError,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import check_strict_ordering

PROCS = make_processes(5)
ALL = pset(PROCS)


def strict_system(pattern=None, seed=0):
    return MulticastSystem(
        paper_figure1_topology(),
        pattern or failure_free(ALL),
        variant="strict",
        seed=seed,
    )


class TestKvMachine:
    def test_put_get_incr(self):
        state, out = kv_apply({}, ("put", "x", 3))
        assert out == 3
        state, out = kv_apply(state, ("incr", "x"))
        assert (state["x"], out) == (4, 4)
        _, out = kv_apply(state, ("get", "x"))
        assert out == 4

    def test_apply_is_pure(self):
        original = {"x": 1}
        kv_apply(original, ("put", "x", 9))
        assert original == {"x": 1}

    def test_unknown_command_rejected(self):
        with pytest.raises(SimulationError):
            kv_apply({}, ("frobnicate",))


class TestReplication:
    def test_requires_strict_variant(self):
        vanilla = MulticastSystem(
            paper_figure1_topology(), failure_free(ALL)
        )
        with pytest.raises(SimulationError):
            ReplicatedStateMachine(vanilla)

    def test_replicas_of_a_group_converge(self):
        smr = ReplicatedStateMachine(strict_system(seed=1))
        smr.submit(PROCS[0], "g1", ("put", "x", 10))
        smr.submit(PROCS[1], "g1", ("incr", "x"))
        smr.run()
        assert smr.state_at(PROCS[0]) == smr.state_at(PROCS[1])
        assert smr.read(PROCS[0], "x") == 11

    def test_outputs_are_computed_per_command(self):
        smr = ReplicatedStateMachine(strict_system(seed=2))
        cmd = smr.submit(PROCS[0], "g1", ("put", "k", "v"))
        smr.run()
        assert smr.output_of(PROCS[1], cmd) == "v"

    def test_sequential_commands_linearize(self):
        """A command submitted after another completed must be ordered
        after it everywhere — the strict transport guarantees it."""
        smr = ReplicatedStateMachine(strict_system(seed=3))
        smr.submit(PROCS[0], "g3", ("put", "x", 1))
        smr.run()
        smr.submit(PROCS[3], "g3", ("put", "x", 2))
        smr.run()
        assert check_strict_ordering(smr.system.record) == []
        for p in (PROCS[0], PROCS[2], PROCS[3]):
            assert smr.read(p, "x") == 2

    def test_cross_group_commands_interleave_consistently(self):
        smr = ReplicatedStateMachine(strict_system(seed=4))
        smr.submit(PROCS[0], "g1", ("incr", "c"))
        smr.submit(PROCS[2], "g3", ("incr", "c"))
        smr.submit(PROCS[0], "g1", ("incr", "c"))
        smr.run()
        # p1 is in both g1 and g3: it applied all three increments.
        assert smr.read(PROCS[0], "c") == 3

    def test_survives_replica_crash(self):
        pattern = crash_pattern(ALL, {PROCS[1]: 3})
        smr = ReplicatedStateMachine(strict_system(pattern, seed=5))
        cmd = smr.submit(PROCS[0], "g1", ("put", "k", 1))
        smr.run()
        assert smr.output_of(PROCS[0], cmd) == 1
