"""Tests for Algorithm 1 on the engine (group-sequential interface)."""

import pytest

from repro.core import DELIVER, MulticastSystem, Phase
from repro.groups import paper_figure1_topology
from repro.model import (
    SimulationError,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import assert_run_ok, check_minimality
from repro.workloads import chain_topology, disjoint_topology, ring_topology

PROCS = make_processes(5)
ALL = pset(PROCS)
P1, P2, P3, P4, P5 = PROCS


@pytest.fixture()
def fig1_system():
    return MulticastSystem(paper_figure1_topology(), failure_free(ALL), seed=11)


class TestBasicDelivery:
    def test_single_message_reaches_whole_group(self, fig1_system):
        m = fig1_system.multicast(P1, "g3")
        fig1_system.run()
        assert fig1_system.record.delivered_by(m) == by_indices(1, 3, 4)
        assert_run_ok(fig1_system.record)

    def test_delivery_is_exactly_once(self, fig1_system):
        m = fig1_system.multicast(P1, "g1")
        fig1_system.run()
        extra = fig1_system.run(max_rounds=20)
        for p in (P1, P2):
            assert fig1_system.record.delivery_count(p, m) == 1

    def test_sender_must_belong_to_group(self, fig1_system):
        with pytest.raises(SimulationError):
            fig1_system.multicast(P5, "g1")

    def test_phases_progress_to_deliver(self, fig1_system):
        m = fig1_system.multicast(P2, "g2")
        fig1_system.run()
        proc = fig1_system.processes[P2]
        assert proc.phase_of(m) == DELIVER

    def test_crashed_process_cannot_multicast(self):
        pattern = crash_pattern(ALL, {P1: 0})
        system = MulticastSystem(paper_figure1_topology(), pattern)
        system.tick()
        with pytest.raises(SimulationError):
            system.multicast(P1, "g1")


class TestGenuineness:
    def test_uninvolved_process_takes_no_steps(self, fig1_system):
        fig1_system.multicast(P1, "g1")  # dst = {p1, p2}
        fig1_system.run()
        assert fig1_system.record.steps_of(P5) == 0
        assert fig1_system.record.steps_of(P4) == 0
        assert check_minimality(fig1_system.record) == []

    def test_disjoint_groups_stay_independent(self):
        topo = disjoint_topology(3, group_size=2)
        procs = make_processes(6)
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=3)
        system.multicast(procs[0], "g1")
        system.run()
        for idle in procs[2:]:
            assert system.record.steps_of(idle) == 0

    def test_intersection_member_may_take_steps_for_neighbor_group(self):
        # p1 is in g1 n g3; a message to g3 makes p1 work, legitimately.
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        system.multicast(P3, "g3")
        system.run()
        assert system.record.steps_of(P1) > 0
        assert check_minimality(system.record) == []


class TestCrashTolerance:
    def test_intersection_crash_does_not_block_termination(self):
        """Crashing p2 = g1 n g2 kills the cyclic families through that
        edge; gamma unblocks the waiting processes."""
        pattern = crash_pattern(ALL, {P2: 1})
        system = MulticastSystem(paper_figure1_topology(), pattern, seed=5)
        m = system.multicast(P1, "g1")
        system.run()
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)

    def test_sender_crash_after_multicast(self):
        pattern = crash_pattern(ALL, {P1: 1})
        system = MulticastSystem(paper_figure1_topology(), pattern, seed=6)
        m = system.multicast(P1, "g1")  # at time 0, before the crash
        system.run()
        # p2 is the only correct member of g1.
        assert P2 in system.record.delivered_by(m)
        assert_run_ok(system.record)

    def test_whole_group_crash_is_vacuous(self):
        pattern = crash_pattern(ALL, {P1: 2, P2: 2})
        system = MulticastSystem(paper_figure1_topology(), pattern, seed=7)
        system.multicast(P1, "g1")
        system.run()
        assert_run_ok(system.record)

    def test_gamma_lag_delays_but_does_not_block(self):
        pattern = crash_pattern(ALL, {P2: 1})
        eager = MulticastSystem(paper_figure1_topology(), pattern, seed=8)
        lagged = MulticastSystem(
            paper_figure1_topology(), pattern, gamma_lag=25, seed=8
        )
        m1 = eager.multicast(P1, "g1")
        m2 = lagged.multicast(P1, "g1")
        eager.run()
        lagged.run()
        assert eager.everyone_delivered(m1)
        assert lagged.everyone_delivered(m2)
        assert lagged.time >= eager.time


class TestTopologies:
    def test_ring_topology_delivers_under_crash(self):
        topo = ring_topology(4)
        procs = make_processes(4)
        pattern = crash_pattern(pset(procs), {procs[1]: 2})
        system = MulticastSystem(topo, pattern, seed=4)
        m = system.multicast(procs[0], "g1")
        system.run()
        assert system.everyone_delivered(m)
        assert_run_ok(system.record)

    def test_chain_topology_needs_no_gamma(self):
        topo = chain_topology(4)
        procs = make_processes(5)
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=2)
        msgs = [
            system.multicast(procs[i], f"g{i + 1}") for i in range(4)
        ]
        system.run()
        for m in msgs:
            assert system.everyone_delivered(m)
        assert_run_ok(system.record)

    def test_group_sequential_stream_same_group(self):
        """Group-sequential discipline: the sender waits for its previous
        message before sending the next one to the same group."""
        system = MulticastSystem(paper_figure1_topology(), failure_free(ALL))
        first = system.multicast(P1, "g1", payload=1)
        system.run()
        second = system.multicast(P1, "g1", payload=2)
        system.run()
        assert system.delivered_at(P2) == (first, second)
        assert_run_ok(system.record)


class TestConsensusUsage:
    def test_consensus_objects_keyed_per_message(self, fig1_system):
        fig1_system.multicast(P1, "g1")
        fig1_system.multicast(P3, "g3")
        fig1_system.run()
        # Each message committed through its own consensus instance.
        assert fig1_system.space.consensus_objects_used() == 2

    def test_acyclic_topology_still_uses_consensus_for_commit(self):
        # F(p) empty => family key is empty; a consensus object still
        # hosts the bump agreement within the group.
        topo = chain_topology(3)
        procs = make_processes(4)
        system = MulticastSystem(topo, failure_free(pset(procs)))
        system.multicast(procs[1], "g2")
        system.run()
        assert system.space.consensus_objects_used() == 1
