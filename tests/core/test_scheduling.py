"""Event-driven scheduling: trace equivalence and the Omega settle fix.

Two families of regression tests:

* The wake-index scheduler (``scheduling="event"``) must produce a
  :class:`RunRecord` byte-identical to the seed scan-everything engine
  (``scheduling="scan"``) — same seeds, same topologies, crashes or not
  — while scanning strictly fewer processes on blocked-heavy runs.

* ``settle_horizon`` must cover ``omega_stabilization`` (seed bug: it
  only covered crashes + gamma/indicator lags, so a run could be
  declared quiescent — and consensus-blocked messages abandoned —
  before the leader oracles ever stabilized).
"""

import pytest

from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok
from repro.workloads import random_sends

PROCS = make_processes(5)
ALL = pset(PROCS)


def record_fingerprint(system):
    """Every observable event of a run, in order, as plain tuples."""
    r = system.record
    return (
        [(e.time, e.process, e.message.mid) for e in r.multicasts],
        [(e.time, e.process, e.message.mid) for e in r.deliveries],
        [(s.time, s.process, s.received) for s in r.steps],
    )


def drive(scheduling, pattern, seed, count=6):
    topo = paper_figure1_topology()
    system = MulticastSystem(topo, pattern, seed=seed, scheduling=scheduling)
    amc = AtomicMulticast(system)
    for send in random_sends(topo, count, seed=seed):
        sender = next(
            p for p in sorted(system.topology.processes)
            if p.index == send.sender
        )
        if system.is_alive(sender):
            amc.multicast(sender, send.group)
    amc.run()
    return system


class TestTraceEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_failure_free_traces_are_byte_identical(self, seed):
        scan = drive("scan", failure_free(ALL), seed)
        event = drive("event", failure_free(ALL), seed)
        assert record_fingerprint(scan) == record_fingerprint(event)
        assert_run_ok(event.record)

    @pytest.mark.parametrize("seed", range(6))
    def test_crashy_traces_are_byte_identical(self, seed):
        pattern = crash_pattern(ALL, {PROCS[1]: 4})
        scan = drive("scan", pattern, seed)
        event = drive("event", pattern, seed)
        assert record_fingerprint(scan) == record_fingerprint(event)
        assert_run_ok(event.record)

    def test_event_mode_scans_fewer_processes(self):
        event = drive("event", failure_free(ALL), seed=1)
        summary = event.tracer.summary()
        assert summary["skipped"] > 0
        assert summary["scanned"] < summary["eligible"]
        # The scan baseline scans everyone, every round.
        scan = drive("scan", failure_free(ALL), seed=1)
        baseline = scan.tracer.summary()
        assert baseline["scanned"] == baseline["eligible"]

    def test_unknown_scheduling_mode_rejected(self):
        from repro.model.errors import SimulationError

        with pytest.raises(SimulationError):
            MulticastSystem(
                paper_figure1_topology(),
                failure_free(ALL),
                scheduling="lazy",
            )


class TestOmegaSettleHorizon:
    def test_settle_horizon_covers_omega_stabilization(self):
        # Seed bug: settle_horizon() ignored omega_stabilization, so a
        # failure-free run with a late-stabilizing leader oracle was
        # declared quiescent at time ~1.
        system = MulticastSystem(
            paper_figure1_topology(),
            failure_free(ALL),
            omega_stabilization=50,
        )
        assert system.settle_horizon() > 50

    def test_no_consensus_delivery_before_omega_stabilizes(self):
        # Liveness of the §4.3 consensus construction is guaranteed
        # only after Omega_g stabilizes; deliveries gated on CONS must
        # therefore come after the stabilization time.
        topo = paper_figure1_topology()
        system = MulticastSystem(
            topo, failure_free(ALL), seed=3, omega_stabilization=40
        )
        amc = AtomicMulticast(system)
        p1 = sorted(topo.processes)[0]
        message = amc.multicast(p1, topo.groups[0].name)
        amc.run(max_rounds=300)
        assert system.everyone_delivered(message)
        # The gate opens at t == stabilization_time, so the earliest
        # possible delivery is exactly then — never before.
        assert system.record.first_delivery_time(message) >= 40
        assert_run_ok(system.record)

    def test_late_stabilizing_leader_does_not_abandon_the_run(self):
        # The end-to-end pairing of the two fixes: with the seed
        # horizon the engine went quiescent (two idle rounds) long
        # before t=40 and gave up on the consensus-blocked message.
        topo = paper_figure1_topology()
        system = MulticastSystem(
            topo, failure_free(ALL), seed=5, omega_stabilization=40
        )
        amc = AtomicMulticast(system)
        p1 = sorted(topo.processes)[0]
        message = amc.multicast(p1, topo.groups[0].name)
        amc.run(max_rounds=300)
        assert system.everyone_delivered(message)
        assert system.time > 40
