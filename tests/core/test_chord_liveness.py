"""Regression: liveness when a *chord* intersection dies inside a family
whose hamiltonian cycle stays alive (the Lemma 25 corner).

Topology: ring g-a-h-b-g plus the chord g-h through p9.  Killing p9 makes
every chordless family through edge (g, h) faulty, but the four-group
family keeps a live cycle and is never excluded by gamma.  The derived
wait-set gamma(g) must therefore be computed from chordless families, or
commit(m) waits forever for a (m, h, ·) record nobody can write.
"""

import pytest

from repro.core import MulticastSystem
from repro.groups import (
    is_chordless_cycle_family,
    paper_figure1_topology,
    topology_from_indices,
)
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok


@pytest.fixture()
def chorded():
    topo = topology_from_indices(
        9, {"g": [1, 2, 9], "a": [2, 3], "h": [3, 4, 9], "b": [4, 1]}
    )
    return topo, make_processes(9)


def test_topology_has_the_expected_families(chorded):
    topo, _ = chorded
    names = {frozenset(g.name for g in f) for f in topo.cyclic_families()}
    assert names == {
        frozenset({"b", "g", "h"}),
        frozenset({"a", "g", "h"}),
        frozenset({"a", "b", "g", "h"}),
    }
    chordless = [
        f for f in topo.cyclic_families() if is_chordless_cycle_family(f)
    ]
    # The two triangles are chordless; the 4-family has the g-h chord.
    assert len(chordless) == 2


def test_chord_death_does_not_block_delivery(chorded):
    topo, procs = chorded
    pattern = crash_pattern(pset(procs), {procs[8]: 1})  # kill p9 = g∩h
    system = MulticastSystem(topo, pattern, seed=0)
    m = system.multicast(procs[0], "g")
    system.run(max_rounds=300)
    assert system.everyone_delivered(m)
    assert_run_ok(system.record)


def test_failure_free_chorded_topology_delivers(chorded):
    topo, procs = chorded
    system = MulticastSystem(topo, failure_free(pset(procs)), seed=1)
    messages = [
        system.multicast(procs[0], "g"),
        system.multicast(procs[2], "a"),
        system.multicast(procs[3], "h"),
    ]
    system.run(max_rounds=300)
    for m in messages:
        assert system.everyone_delivered(m)
    assert_run_ok(system.record)


def test_figure1_chordless_classification():
    topo = paper_figure1_topology()
    by_size = {
        frozenset(g.name for g in f): is_chordless_cycle_family(f)
        for f in topo.cyclic_families()
    }
    assert by_size[frozenset({"g1", "g2", "g3"})] is True
    assert by_size[frozenset({"g1", "g3", "g4"})] is True
    # f'' has the chord g1-g3.
    assert by_size[frozenset({"g1", "g2", "g3", "g4"})] is False
