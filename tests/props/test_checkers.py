"""The property checkers must *reject* bad runs — negative tests built
from hand-crafted records."""

import pytest

from repro.model import (
    MessageFactory,
    PropertyViolation,
    RunRecord,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import (
    assert_run_ok,
    check_integrity,
    check_minimality,
    check_ordering,
    check_pairwise_ordering,
    check_strict_ordering,
    check_termination,
    find_cycle,
    local_delivery_edges,
)

PROCS = make_processes(4)
ALL = pset(PROCS)
P1, P2, P3, P4 = PROCS


def record_with(pattern=None):
    return RunRecord(ALL, pattern or failure_free(ALL)), MessageFactory()


class TestIntegrity:
    def test_duplicate_delivery_detected(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)
        record.note_delivery(2, P1, m)
        assert any("twice" in v for v in check_integrity(record))

    def test_delivery_outside_destination_detected(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P3, m)
        assert any("not in dst" in v for v in check_integrity(record))

    def test_phantom_delivery_detected(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_delivery(1, P1, m)  # never multicast
        assert any("never multicast" in v for v in check_integrity(record))

    def test_clean_record_passes(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)
        record.note_delivery(1, P2, m)
        assert check_integrity(record) == []


class TestTermination:
    def test_missing_delivery_at_correct_member_detected(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)  # p2 never delivers
        assert any("p2" in v for v in check_termination(record))

    def test_faulty_members_are_excused(self):
        pattern = crash_pattern(ALL, {P2: 0})
        record = RunRecord(ALL, pattern)
        factory = MessageFactory()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)
        assert check_termination(record) == []

    def test_message_from_faulty_sender_not_obligated_unless_delivered(self):
        pattern = crash_pattern(ALL, {P1: 5})
        record = RunRecord(ALL, pattern)
        factory = MessageFactory()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        # Nobody delivered; sender faulty: no obligation.
        assert check_termination(record) == []

    def test_delivered_message_obligates_all_correct_members(self):
        pattern = crash_pattern(ALL, {P1: 5})
        record = RunRecord(ALL, pattern)
        factory = MessageFactory()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)  # someone delivered
        assert any("p2" in v for v in check_termination(record))


class TestOrdering:
    def test_two_process_inversion_detected(self):
        record, factory = record_with()
        group = by_indices(1, 2)
        a = factory.multicast(P1, group)
        b = factory.multicast(P2, group)
        for m in (a, b):
            record.note_multicast(0, m.src, m)
        record.note_delivery(1, P1, a)
        record.note_delivery(2, P1, b)
        record.note_delivery(1, P2, b)
        record.note_delivery(2, P2, a)
        assert check_ordering(record) != []

    def test_three_group_cycle_detected(self):
        """The cyclic scenario of §4.2: m1 < m2 < m3 < m1 across three
        pairwise intersections."""
        record, factory = record_with()
        g12, g23, g31 = by_indices(1, 2), by_indices(2, 3), by_indices(3, 1)
        m1 = factory.multicast(P1, g12)
        m2 = factory.multicast(P2, g23)
        m3 = factory.multicast(P3, g31)
        for m in (m1, m2, m3):
            record.note_multicast(0, m.src, m)
        # p2 in g12 n g23 delivers m1 then m2; p3 delivers m2 then m3;
        # p1 delivers m3 then m1: a cycle.
        record.note_delivery(1, P2, m1)
        record.note_delivery(2, P2, m2)
        record.note_delivery(1, P3, m2)
        record.note_delivery(2, P3, m3)
        record.note_delivery(1, P1, m3)
        record.note_delivery(2, P1, m1)
        assert check_ordering(record) != []

    def test_delivered_vs_never_delivered_creates_edge(self):
        record, factory = record_with()
        group = by_indices(1, 2)
        a = factory.multicast(P1, group)
        b = factory.multicast(P2, group)
        for m in (a, b):
            record.note_multicast(0, m.src, m)
        record.note_delivery(1, P1, a)  # p1 delivers a, never b
        record.note_delivery(1, P2, b)
        record.note_delivery(2, P2, a)  # p2: b before a
        edges = local_delivery_edges(record)
        assert (a.mid, b.mid) in edges  # from p1's omission
        assert (b.mid, a.mid) in edges  # from p2's order
        assert check_ordering(record) != []

    def test_consistent_orders_pass(self):
        record, factory = record_with()
        group = by_indices(1, 2)
        a = factory.multicast(P1, group)
        b = factory.multicast(P2, group)
        for m in (a, b):
            record.note_multicast(0, m.src, m)
        for p in (P1, P2):
            record.note_delivery(1, p, a)
            record.note_delivery(2, p, b)
        assert check_ordering(record) == []


class TestStrictOrdering:
    def test_realtime_inversion_detected(self):
        """m delivered everywhere before m' is even multicast, yet some
        process delivers m' before m: strict ordering broken."""
        record, factory = record_with()
        g = by_indices(1, 2)
        h = by_indices(2, 3)
        m = factory.multicast(P1, g)
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)
        m_prime = factory.multicast(P2, h)
        record.note_multicast(5, P2, m_prime)  # after m's delivery
        record.note_delivery(6, P2, m_prime)
        record.note_delivery(7, P2, m)  # p2 delivers m' before m
        assert check_strict_ordering(record) != []
        # Vanilla ordering alone is satisfied: no |-> cycle.
        assert check_ordering(record) == []

    def test_respecting_real_time_passes(self):
        record, factory = record_with()
        g = by_indices(1, 2)
        m = factory.multicast(P1, g)
        record.note_multicast(0, P1, m)
        record.note_delivery(1, P1, m)
        record.note_delivery(1, P2, m)
        m2 = factory.multicast(P2, g)
        record.note_multicast(3, P2, m2)
        record.note_delivery(4, P1, m2)
        record.note_delivery(4, P2, m2)
        assert check_strict_ordering(record) == []


class TestPairwiseOrdering:
    def test_pairwise_violation_detected(self):
        record, factory = record_with()
        group = by_indices(1, 2)
        a = factory.multicast(P1, group)
        b = factory.multicast(P2, group)
        for m in (a, b):
            record.note_multicast(0, m.src, m)
        record.note_delivery(1, P1, a)
        record.note_delivery(2, P1, b)
        record.note_delivery(1, P2, b)  # b without a first
        assert check_pairwise_ordering(record) != []


class TestMinimality:
    def test_uninvolved_stepper_detected(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_multicast(0, P1, m)
        record.note_step(1, P4)  # p4 is in no destination group
        assert any("p4" in v for v in check_minimality(record))

    def test_faulty_steppers_are_excused(self):
        pattern = crash_pattern(ALL, {P4: 10})
        record = RunRecord(ALL, pattern)
        record.note_step(1, P4)
        assert check_minimality(record) == []


class TestAssertRunOk:
    def test_raises_property_violation_with_name(self):
        record, factory = record_with()
        m = factory.multicast(P1, by_indices(1, 2))
        record.note_delivery(1, P1, m)  # phantom
        with pytest.raises(PropertyViolation) as err:
            assert_run_ok(record)
        assert err.value.prop == "Integrity"


class TestFindCycle:
    def test_self_loop(self):
        assert find_cycle([(1, 1)]) is not None

    def test_long_cycle_is_reported_in_order(self):
        cycle = find_cycle([(1, 2), (2, 3), (3, 1)])
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert set(cycle) == {1, 2, 3}

    def test_dag_has_no_cycle(self):
        assert find_cycle([(1, 2), (1, 3), (2, 3)]) is None

    def test_empty_graph(self):
        assert find_cycle([]) is None
