"""Batch verdicts: the checkers as sweep-ready violation counts."""

from repro.baselines import BroadcastMulticast
from repro.groups import paper_figure1_topology
from repro.model import failure_free, make_processes, pset
from repro.props import batch_verdicts, variant_checks, verdicts_ok
from repro.workloads import Send, chain_topology, run_scenario


def test_clean_run_has_zero_counts_everywhere():
    topo = chain_topology(2)
    procs = make_processes(3)
    result = run_scenario(
        topo, failure_free(pset(procs)), [Send(1, "g1", 0), Send(3, "g2", 1)]
    )
    verdicts = batch_verdicts(result.record)
    assert set(verdicts) == {"integrity", "termination", "ordering", "minimality"}
    assert verdicts_ok(verdicts)


def test_broadcast_baseline_counts_minimality_violations():
    procs = make_processes(5)
    baseline = BroadcastMulticast(
        paper_figure1_topology(), failure_free(pset(procs))
    )
    baseline.multicast(procs[0], "g1")
    baseline.run()
    verdicts = batch_verdicts(baseline.record)
    assert verdicts["minimality"] > 0
    assert not verdicts_ok(verdicts)
    # The §2.2 core still holds: the baseline orders and terminates.
    assert verdicts["integrity"] == 0
    assert verdicts["ordering"] == 0


def test_variant_checks_add_strict_ordering():
    extra = variant_checks("strict")
    assert [name for name, _ in extra] == ["strict_ordering"]
    assert variant_checks("vanilla") == ()
    topo = chain_topology(2)
    procs = make_processes(3)
    result = run_scenario(
        topo,
        failure_free(pset(procs)),
        [Send(1, "g1", 0)],
        variant="strict",
    )
    verdicts = batch_verdicts(result.record, extra=extra)
    assert verdicts["strict_ordering"] == 0
