"""The campaign scale-out layer: cache, streaming, resume, shards."""

import json
import os

import pytest

from repro.campaign import (
    Campaign,
    CampaignCache,
    case,
    run_campaign,
    scan_partial_results,
    shard_cells,
    shard_of,
    write_manifest,
)
from repro.campaign.cache import ensure_cache
from repro.faults.nemesis import random_plan
from repro.metrics.sweep import summarize_results_file
from repro.workloads import ScenarioSpec, Send, TopologySpec, scenario_cache_key
from repro.workloads.topologies import chain_topology, disjoint_topology

TOPO = TopologySpec.capture(disjoint_topology(2, group_size=3))
SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))
PLAN = random_plan(0, "links", process_count=6)


def small_campaign(name="unit", seeds=(0, 1), **kwargs):
    return Campaign(
        name=name,
        cases=(
            case("chain", chain_topology(2), sends=(Send(1, "g1", 0), Send(3, "g2", 1))),
            case("chain-late", chain_topology(2), sends=(Send(1, "g1", 3),)),
        ),
        seeds=tuple(seeds),
        variants=("vanilla",),
        max_rounds=200,
        **kwargs,
    )


def matrix_campaign(seeds=20):
    """The acceptance grid: ``seeds`` x 2 backends x fault axis."""
    return Campaign(
        name="matrix",
        cases=(case("disjoint", disjoint_topology(2, group_size=3), sends=SENDS),),
        seeds=tuple(range(seeds)),
        variants=("vanilla",),
        backends=("engine", "kernel"),
        faults=(None, PLAN),
        max_rounds=400,
    )


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


class TestCacheKey:
    def test_key_ignores_the_label(self):
        a = ScenarioSpec(topology=TOPO, sends=SENDS, seed=3, name="one")
        b = ScenarioSpec(topology=TOPO, sends=SENDS, seed=3, name="two")
        assert scenario_cache_key(a) == scenario_cache_key(b)

    def test_key_tracks_every_triage_coordinate(self):
        base = dict(topology=TOPO, sends=SENDS, seed=3)
        ref = scenario_cache_key(ScenarioSpec(**base))
        for tweak in (
            dict(seed=4),
            dict(backend="kernel"),
            dict(faults=PLAN),
            dict(sends=(Send(1, "g1", 0),)),
        ):
            other = ScenarioSpec(**{**base, **tweak})
            assert scenario_cache_key(other) != ref


class TestCampaignCache:
    def spec(self, **overrides):
        base = dict(topology=TOPO, sends=SENDS, seed=3, name="cell")
        base.update(overrides)
        return ScenarioSpec(**base)

    def ok_row(self, spec, **extra):
        row = {"name": spec.name, "spec": spec.to_json(), "status": "ok",
               "rounds": 7, "index": 4}
        row.update(extra)
        return row

    def test_roundtrip_strips_the_grid_index(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        spec = self.spec()
        assert cache.get(spec) is None  # cold
        assert cache.put(spec, self.ok_row(spec))
        hit = cache.get(spec)
        assert hit is not None and "index" not in hit
        assert hit["rounds"] == 7
        assert cache.stats() == {"hits": 1, "misses": 1, "stored": 1}

    def test_hit_is_relabelled_from_the_live_spec(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        spec = self.spec(name="first-campaign")
        cache.put(spec, self.ok_row(spec))
        twin = self.spec(name="second-campaign")  # same cell, new label
        hit = cache.get(twin)
        assert hit["name"] == "second-campaign"
        assert hit["spec"] == twin.to_json()

    def test_failed_rows_are_never_stored_nor_hit(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        spec = self.spec()
        assert not cache.put(spec, {"status": "failed", "error": "boom"})
        assert cache.get(spec) is None
        # ...even if a failed row is smuggled into the file on disk.
        path = cache.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"schema": 1, "row": {"status": "failed"}}, fh)
        assert cache.get(spec) is None

    def test_corrupt_or_alien_entries_degrade_to_misses(self, tmp_path):
        cache = CampaignCache(str(tmp_path))
        spec = self.spec()
        path = cache.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        for garbage in ('{"torn', '[]', '{"schema": 99, "row": {"status": "ok"}}'):
            with open(path, "w") as fh:
                fh.write(garbage)
            assert cache.get(spec) is None

    def test_ensure_cache_coerces_paths(self, tmp_path):
        cache = ensure_cache(str(tmp_path))
        assert isinstance(cache, CampaignCache)
        assert ensure_cache(cache) is cache
        assert ensure_cache(None) is None
        with pytest.raises(TypeError):
            ensure_cache(42)


class TestWarmSweep:
    def test_matrix_rerun_executes_nothing_and_matches_bytes(self, tmp_path):
        campaign = matrix_campaign(seeds=20)
        cache_dir = str(tmp_path / "cache")
        cold = run_campaign(campaign, cache=cache_dir)
        assert cold.executed == len(campaign.specs()) == 20 * 2 * 2
        assert cold.summary["failed"] == 0

        warm = run_campaign(campaign, cache=cache_dir)
        assert warm.executed == 0
        assert warm.cached == len(campaign.specs())
        assert warm.rows == cold.rows
        assert warm.results_jsonl() == cold.results_jsonl()

    def test_streamed_warm_rerun_is_byte_identical(self, tmp_path):
        campaign = small_campaign()
        cache_dir = str(tmp_path / "cache")
        a, b = str(tmp_path / "a"), str(tmp_path / "b")
        run_campaign(campaign, cache=cache_dir, out_dir=a)
        warm = run_campaign(campaign, cache=cache_dir, out_dir=b)
        assert warm.executed == 0
        assert read_bytes(f"{a}/results.jsonl") == read_bytes(f"{b}/results.jsonl")
        assert read_bytes(f"{a}/manifest.json") == read_bytes(f"{b}/manifest.json")

    def test_cache_only_serves_cells_it_has_seen(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_campaign(small_campaign(seeds=(0,)), cache=cache_dir)
        grown = run_campaign(small_campaign(seeds=(0, 1)), cache=cache_dir)
        assert grown.cached == 2  # the seed-0 cells
        assert grown.executed == 2  # the new seed-1 cells


class TestSerialWorkersContradiction:
    def test_serial_mode_with_workers_raises(self):
        with pytest.raises(ValueError, match="serial"):
            run_campaign(small_campaign(), mode="serial", workers=8)

    def test_resume_without_out_dir_raises(self):
        with pytest.raises(ValueError, match="out_dir"):
            run_campaign(small_campaign(), resume=True)

    def test_unknown_mode_still_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            run_campaign(small_campaign(), mode="turbo")


class TestStreaming:
    def test_streamed_artifacts_match_the_in_memory_writer(self, tmp_path):
        campaign = small_campaign()
        streamed, legacy = str(tmp_path / "s"), str(tmp_path / "l")
        report = run_campaign(campaign, out_dir=streamed)
        assert report.streamed and report.rows == ()
        run_campaign(campaign).write(legacy)
        for artifact in ("results.jsonl", "manifest.json"):
            assert read_bytes(f"{streamed}/{artifact}") == read_bytes(
                f"{legacy}/{artifact}"
            )

    def test_streamed_report_refuses_a_second_write(self, tmp_path):
        report = run_campaign(small_campaign(), out_dir=str(tmp_path / "s"))
        with pytest.raises(ValueError, match="streamed"):
            report.write(str(tmp_path / "again"))

    def test_manifest_stream_matches_json_dump(self, tmp_path):
        campaign = small_campaign()
        report = run_campaign(campaign)
        path = str(tmp_path / "manifest.json")
        write_manifest(
            path,
            name=report.name,
            campaign_hash=report.campaign_hash,
            specs=report.specs,
        )
        expected = (
            json.dumps(report.manifest(), sort_keys=True, indent=2, default=str)
            + "\n"
        ).encode()
        assert read_bytes(path) == expected

    def test_empty_manifest_stream_matches_json_dump(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        write_manifest(path, name="void", campaign_hash="", specs=())
        expected = (
            json.dumps(
                {"schema": 1, "name": "void", "campaign_hash": "", "scenarios": []},
                sort_keys=True,
                indent=2,
            )
            + "\n"
        ).encode()
        assert read_bytes(path) == expected

    def test_summary_line_re_aggregates_from_the_rows(self, tmp_path):
        out = str(tmp_path / "s")
        report = run_campaign(small_campaign(), out_dir=out)
        assert summarize_results_file(f"{out}/results.jsonl") == report.summary


class TestResume:
    def interrupted_sweep(self, tmp_path, stop_at, torn=True):
        campaign = small_campaign()
        out = str(tmp_path / "part")
        count = {"n": 0}

        def bomb(row):
            count["n"] += 1
            if count["n"] == stop_at:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, out_dir=out, on_row=bomb)
        if torn:
            with open(f"{out}/results.jsonl", "a") as fh:
                fh.write('{"type": "row", "index": 99, "trunc')
        return campaign, out

    def test_resume_at_half_matches_uninterrupted_bytes(self, tmp_path):
        campaign, out = self.interrupted_sweep(tmp_path, stop_at=2)
        full = str(tmp_path / "full")
        run_campaign(campaign, out_dir=full)

        report = run_campaign(campaign, out_dir=out, resume=True)
        assert report.resumed == 1  # the bombed row was never written
        assert report.executed == 3
        assert read_bytes(f"{out}/results.jsonl") == read_bytes(
            f"{full}/results.jsonl"
        )
        assert read_bytes(f"{out}/manifest.json") == read_bytes(
            f"{full}/manifest.json"
        )

    def test_resuming_a_complete_sweep_is_a_no_op(self, tmp_path):
        campaign = small_campaign()
        out = str(tmp_path / "done")
        run_campaign(campaign, out_dir=out)
        before = read_bytes(f"{out}/results.jsonl")
        report = run_campaign(campaign, out_dir=out, resume=True)
        assert report.executed == 0
        assert report.resumed == len(campaign.specs())
        assert read_bytes(f"{out}/results.jsonl") == before

    def test_resume_refuses_a_foreign_artifact(self, tmp_path):
        _, out = self.interrupted_sweep(tmp_path, stop_at=2, torn=False)
        other = small_campaign(name="other", seeds=(5, 6))
        with pytest.raises(ValueError, match="different campaign"):
            run_campaign(other, out_dir=out, resume=True)

    def test_scan_stops_at_an_out_of_sequence_row(self, tmp_path):
        campaign, out = self.interrupted_sweep(tmp_path, stop_at=2, torn=False)
        path = f"{out}/results.jsonl"
        with open(path, "a") as fh:
            fh.write('{"type": "row", "index": 3}\n')  # skips index 1
        seen = []
        scan = scan_partial_results(
            path,
            campaign_hash=campaign.campaign_hash(),
            scenarios=len(campaign.specs()),
            expected=list(range(len(campaign.specs()))),
            consume=seen.append,
        )
        assert not scan.complete
        assert scan.rows == len(seen) == 1
        assert seen[0]["index"] == 0

    def test_premature_summary_line_is_corruption(self, tmp_path):
        campaign, out = self.interrupted_sweep(tmp_path, stop_at=2, torn=False)
        path = f"{out}/results.jsonl"
        with open(path, "a") as fh:
            fh.write('{"type": "summary", "scenarios": 1}\n')
        with pytest.raises(ValueError, match="corrupt"):
            scan_partial_results(
                path,
                campaign_hash=campaign.campaign_hash(),
                scenarios=len(campaign.specs()),
                expected=list(range(len(campaign.specs()))),
            )

    def test_resume_with_cache_replays_instead_of_executing(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        campaign, out = self.interrupted_sweep(tmp_path, stop_at=2)
        run_campaign(campaign, cache=cache_dir)  # warm the cache elsewhere
        report = run_campaign(
            campaign, out_dir=out, resume=True, cache=cache_dir
        )
        assert report.executed == 0 and report.cached == 3
        full = str(tmp_path / "full")
        run_campaign(campaign, out_dir=full)
        assert read_bytes(f"{out}/results.jsonl") == read_bytes(
            f"{full}/results.jsonl"
        )


class TestSharding:
    def test_shards_partition_the_grid(self):
        specs = matrix_campaign(seeds=6).specs()
        cells = list(enumerate(specs))
        pieces = [shard_cells(cells, 3, k) for k in range(3)]
        assert sum(len(p) for p in pieces) == len(cells)
        merged = sorted(
            (index for piece in pieces for index, _ in piece)
        )
        assert merged == list(range(len(cells)))
        for k, piece in enumerate(pieces):
            assert all(shard_of(spec, 3) == k for _, spec in piece)

    def test_shard_bounds_are_checked(self):
        spec = matrix_campaign(seeds=1).specs()[0]
        with pytest.raises(ValueError):
            shard_of(spec, 0)
        with pytest.raises(ValueError):
            shard_cells([], 2, 2)

    def test_sharded_artifacts_merge_into_the_full_sweep(self, tmp_path):
        campaign = small_campaign()
        full = str(tmp_path / "full")
        run_campaign(campaign, out_dir=full)
        full_rows = {}
        with open(f"{full}/results.jsonl") as fh:
            for line in fh:
                record = json.loads(line)
                if record.get("type") == "row":
                    full_rows[record["index"]] = line

        merged = {}
        owned = 0
        for k in range(2):
            out = str(tmp_path / f"shard{k}")
            report = run_campaign(campaign, out_dir=out, shard=(k, 2))
            assert report.shard == (k, 2)
            owned += report.cell_count
            with open(f"{out}/results.jsonl") as fh:
                meta = json.loads(fh.readline())
                assert meta["shard"] == [k, 2]
                assert meta["scenarios"] == report.cell_count
                for line in fh:
                    record = json.loads(line)
                    if record.get("type") == "row":
                        merged[record["index"]] = line
        assert owned == len(campaign.specs())
        assert merged == full_rows  # same bytes, same global indices

    def test_sharded_sweep_resumes_too(self, tmp_path):
        campaign = small_campaign(seeds=(0, 1, 2, 3))
        cells = shard_cells(list(enumerate(campaign.specs())), 2, 0)
        if len(cells) < 2:
            pytest.skip("shard 0 too small to interrupt")
        out = str(tmp_path / "shard")
        count = {"n": 0}

        def bomb(row):
            count["n"] += 1
            if count["n"] == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, out_dir=out, shard=(0, 2), on_row=bomb)
        report = run_campaign(campaign, out_dir=out, shard=(0, 2), resume=True)
        assert report.resumed + report.executed == len(cells)
        ref = str(tmp_path / "ref")
        run_campaign(campaign, out_dir=ref, shard=(0, 2))
        assert read_bytes(f"{out}/results.jsonl") == read_bytes(
            f"{ref}/results.jsonl"
        )
