"""Liveness backstops at the campaign layer.

A sweep must never hang on one sick cell.  Two backstops guarantee it:
the *stall watchdog* (``stall_window=``, in-process: the runner detects
a no-progress window and fails the cell with a triaged wait-reason
histogram) and the *per-cell timeout* (``cell_timeout=``, process mode:
a worker that blows its wall-clock budget yields a failed row and the
sweep moves on).  Both produce ``status="failed"`` rows that are never
cached, so reruns retry the cell.

The planted stall is the retained PR 4 ``supersede-wait`` quirk under a
late-Omega rotation — a genuine liveness bug that would otherwise burn
the full round budget of every affected cell.
"""

import pytest

from repro.campaign.cache import CampaignCache
from repro.campaign.executor import execute_spec, run_campaign
from repro.campaign.grid import Campaign, case
from repro.faults.plan import FaultEvent, FaultPlan
from repro.workloads.runner import Send
from repro.workloads.topologies import disjoint_topology

OMEGA_ROTATION = FaultPlan(
    (FaultEvent(kind="omega_late", group="g1", until=24),)
)

SENDS = (Send(1, "g1", 0), Send(4, "g2", 0))


def stall_campaign(max_rounds: int = 240) -> Campaign:
    """One kernel cell carrying the planted supersede-wait stall."""
    return Campaign(
        name="planted-stall",
        cases=(
            case("stall", disjoint_topology(2, group_size=3), sends=SENDS),
        ),
        backends=("kernel",),
        faults=(OMEGA_ROTATION,),
        quirks=("supersede-wait",),
        max_rounds=max_rounds,
    )


class TestStallRows:
    def test_execute_spec_converts_the_stall_into_a_failed_row(self):
        (spec,) = stall_campaign().specs()
        row = execute_spec((7, spec, 100))
        assert row["status"] == "failed"
        assert row["error"] == "stall"
        assert row["index"] == 7
        # The triage payload names the wait reasons — the histogram is
        # what turns "it hung" into "it waits on superseded promises".
        assert sum(row["stall"]["wait_reasons"].values()) > 0
        assert row["stall"]["stalled_checks"] >= 100
        # Failed rows still self-describe for replay: hash + spec JSON.
        assert row["spec_hash"] == spec.spec_hash()
        assert row["spec"] == spec.to_json()
        assert row["triage"]["spec_hash"] == spec.spec_hash()

    def test_run_campaign_fails_the_cell_instead_of_hanging(self):
        report = run_campaign(stall_campaign(), stall_window=100)
        assert report.summary["scenarios"] == 1
        assert report.summary["failed"] == 1
        (row,) = report.rows
        assert row["error"] == "stall"
        assert row["stall"]["at_time"] < 240

    def test_without_the_watchdog_the_cell_burns_its_budget(self):
        report = run_campaign(stall_campaign())
        (row,) = report.rows
        # Same cell, no watchdog: a 240-round truncated burn, not a
        # descriptive failure.  This is the behavior the backstop buys
        # its way out of.
        assert row["status"] == "ok"
        assert row["rounds"] == 240
        assert row["truncated"] is True

    def test_stall_rows_are_never_cached(self, tmp_path):
        cache = CampaignCache(str(tmp_path / "cache"))
        campaign = stall_campaign()
        first = run_campaign(campaign, cache=cache, stall_window=100)
        assert first.executed == 1 and first.cached == 0
        # The failed row was refused by the cache, so the rerun
        # re-executes the cell instead of replaying the failure.
        second = run_campaign(campaign, cache=cache, stall_window=100)
        assert second.executed == 1 and second.cached == 0
        assert cache.get(campaign.specs()[0]) is None


class TestCellTimeout:
    def test_timed_out_cell_yields_a_timeout_row(self):
        # The stall grinds ~25k rounds/sec, so a 150k-round budget is
        # ~6s of wall clock — far past the 1s cell budget, while the
        # sweep itself returns promptly with a failed row.
        campaign = stall_campaign(max_rounds=150_000)
        report = run_campaign(campaign, workers=2, cell_timeout=1.0)
        assert report.summary["failed"] == 1
        (row,) = report.rows
        assert row["status"] == "failed"
        assert row["error"] == "timeout"
        assert row["timeout"] == 1.0
        assert row["spec_hash"] == campaign.specs()[0].spec_hash()

    def test_cell_timeout_requires_process_mode(self):
        with pytest.raises(ValueError):
            run_campaign(stall_campaign(), cell_timeout=1.0)

    def test_timeout_rows_are_never_cached(self, tmp_path):
        cache = CampaignCache(str(tmp_path / "cache"))
        row = {
            "name": "x",
            "status": "failed",
            "error": "timeout",
            "timeout": 1.0,
        }
        assert cache.put(stall_campaign().specs()[0], row) is False
