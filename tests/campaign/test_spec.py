"""ScenarioSpec: value semantics, hashing, JSON round-trip."""

import json

import pytest

from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.workloads import (
    ScenarioSpec,
    Send,
    TopologySpec,
    chain_topology,
    ring_topology,
)


def _spec(**overrides):
    topo = chain_topology(2)
    procs = make_processes(3)
    pattern = crash_pattern(pset(procs), {procs[2]: 7})
    defaults = dict(seed=3, variant="strict", gamma_lag=1, max_rounds=50)
    defaults.update(overrides)
    return ScenarioSpec.capture(
        topo, pattern, [Send(1, "g1", 0, "pay"), Send(3, "g2", 2)], **defaults
    )


class TestTopologySpec:
    def test_capture_build_round_trip(self):
        topo = ring_topology(4)
        spec = TopologySpec.capture(topo)
        rebuilt = spec.build()
        assert TopologySpec.capture(rebuilt) == spec
        assert {g.name for g in rebuilt.groups} == {g.name for g in topo.groups}
        assert len(rebuilt.processes) == len(topo.processes)

    def test_canonical_group_order(self):
        a = TopologySpec(3, (("g1", (1, 2)), ("g2", (2, 3))))
        b = TopologySpec.from_json(
            {"process_count": 3, "groups": {"g2": [2, 3], "g1": [1, 2]}}
        )
        assert a == b


class TestScenarioSpec:
    def test_specs_are_hashable_values(self):
        assert _spec() == _spec()
        assert hash(_spec()) == hash(_spec())
        assert len({_spec(), _spec(), _spec(seed=4)}) == 2

    def test_json_round_trip(self):
        spec = _spec()
        clone = ScenarioSpec.from_json(json.loads(json.dumps(spec.to_json())))
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()
        assert clone.sends == spec.sends  # payloads survive

    def test_hash_is_content_addressed(self):
        assert _spec().spec_hash() == _spec().spec_hash()
        assert _spec().spec_hash() != _spec(seed=99).spec_hash()
        assert _spec().spec_hash() != _spec(variant="vanilla").spec_hash()

    def test_label_excluded_from_identity(self):
        named = _spec().labelled("row-7")
        assert named == _spec()
        assert named.spec_hash() == _spec().spec_hash()
        assert named.name == "row-7"

    def test_build_pattern_restores_crashes(self):
        spec = _spec()
        pattern = spec.build_pattern()
        procs = make_processes(3)
        assert pattern.crash_times == {procs[2]: 7}
        assert pattern.processes == pset(procs)

    def test_capture_defaults_match_runner_defaults(self):
        topo = chain_topology(2)
        pattern = failure_free(pset(make_processes(3)))
        spec = ScenarioSpec.capture(topo, pattern)
        assert (spec.seed, spec.variant, spec.scheduling) == (0, "vanilla", "event")
        assert spec.max_rounds == 600
        assert spec.crashes == () and spec.sends == ()
