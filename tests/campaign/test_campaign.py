"""Campaign grids and executors: expansion, equivalence, isolation."""

import json

import pytest

from repro.campaign import Campaign, CampaignCase, case, run_campaign
from repro.campaign.aggregate import CAMPAIGN_SCHEMA_VERSION
from repro.metrics import read_jsonl
from repro.model import crash_pattern, make_processes, pset
from repro.workloads import ScenarioSpec, Send, TopologySpec, chain_topology, ring_topology


def small_campaign(seeds=(0, 1), variants=("vanilla",)) -> Campaign:
    procs = make_processes(3)
    return Campaign(
        name="unit",
        cases=(
            case("chain", chain_topology(2), sends=(Send(1, "g1", 0), Send(3, "g2", 1))),
            case(
                "chain-crash",
                chain_topology(2),
                pattern=crash_pattern(pset(procs), {procs[0]: 1}),
                sends=(Send(1, "g1", 5),),
            ),
        ),
        seeds=tuple(seeds),
        variants=tuple(variants),
        max_rounds=200,
    )


class TestGrid:
    def test_expansion_is_the_full_product(self):
        campaign = small_campaign(seeds=(0, 1, 2), variants=("vanilla", "strict"))
        specs = campaign.specs()
        assert len(specs) == 2 * 3 * 2
        assert len({(s.spec_hash(), s.name) for s in specs}) == len(specs)

    def test_expansion_order_is_deterministic(self):
        a = small_campaign().specs()
        b = small_campaign().specs()
        assert a == b
        assert [s.name for s in a[:2]] == ["chain:s0:vanilla", "chain:s1:vanilla"]

    def test_campaign_hash_tracks_content(self):
        assert small_campaign().campaign_hash() == small_campaign().campaign_hash()
        assert (
            small_campaign(seeds=(0,)).campaign_hash()
            != small_campaign(seeds=(1,)).campaign_hash()
        )

    def test_case_rejects_pattern_and_crashes_together(self):
        procs = make_processes(3)
        with pytest.raises(ValueError):
            case(
                "bad",
                chain_topology(2),
                pattern=crash_pattern(pset(procs), {procs[0]: 1}),
                crashes=((1, 1),),
            )

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Campaign(name="empty", cases=())
        with pytest.raises(ValueError):
            Campaign(
                name="no-seeds",
                cases=(case("c", chain_topology(2)),),
                seeds=(),
            )


class TestExecutor:
    def test_serial_and_parallel_are_byte_identical(self):
        campaign = small_campaign()
        serial = run_campaign(campaign, workers=1)
        parallel = run_campaign(campaign, workers=2, mode="process")
        assert serial.mode == "serial" and parallel.mode == "process"
        assert serial.results_jsonl() == parallel.results_jsonl()
        assert serial.summary == parallel.summary

    def test_aggregate_is_worker_count_independent(self):
        campaign = small_campaign(seeds=(0, 1, 2))
        two = run_campaign(campaign, workers=2)
        three = run_campaign(campaign, workers=3)
        assert two.results_jsonl() == three.results_jsonl()
        assert two.summary == three.summary

    def test_rows_arrive_in_spec_order(self):
        campaign = small_campaign()
        report = run_campaign(campaign, workers=2)
        assert [row["index"] for row in report.rows] == list(range(len(report.specs)))
        assert [row["name"] for row in report.rows] == [s.name for s in report.specs]

    def test_failing_scenario_is_isolated(self):
        # Send from an index outside the topology: run_scenario raises.
        broken = ScenarioSpec(
            topology=TopologySpec.capture(chain_topology(2)),
            sends=(Send(9, "g1", 0),),
            max_rounds=50,
            name="broken",
        )
        good = ScenarioSpec(
            topology=TopologySpec.capture(chain_topology(2)),
            sends=(Send(1, "g1", 0),),
            max_rounds=200,
            name="good",
        )
        report = run_campaign([broken, good], workers=1)
        assert len(report.rows) == 2
        failed, ok = report.rows
        assert failed["status"] == "failed"
        assert "ValueError" in failed["error"]
        assert "run_scenario" in failed["traceback"]
        assert ok["status"] == "ok" and ok["delivered_everywhere"]
        assert report.summary["failed"] == 1 and report.summary["ok"] == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_campaign(small_campaign(), mode="threads")


class TestArtifacts:
    def test_write_produces_manifest_and_results(self, tmp_path):
        campaign = small_campaign()
        report = run_campaign(campaign, workers=1)
        paths = report.write(str(tmp_path / "out"))
        records = read_jsonl(paths["results"])
        assert records[0]["type"] == "meta"
        assert records[0]["schema"] == CAMPAIGN_SCHEMA_VERSION
        assert records[0]["campaign_hash"] == campaign.campaign_hash()
        body = [r for r in records if r["type"] == "row"]
        assert len(body) == len(campaign.specs())
        assert records[-1]["type"] == "summary"
        assert records[-1]["scenarios"] == len(body)
        with open(paths["manifest"], encoding="utf-8") as fh:
            manifest = json.load(fh)
        assert [s["spec_hash"] for s in manifest["scenarios"]] == [
            s.spec_hash() for s in campaign.specs()
        ]

    def test_rows_replay_from_the_results_file(self, tmp_path):
        report = run_campaign(small_campaign(), workers=1)
        paths = report.write(str(tmp_path))
        row = [r for r in read_jsonl(paths["results"]) if r["type"] == "row"][0]
        spec = ScenarioSpec.from_json(row["spec"])
        assert spec.spec_hash() == row["spec_hash"]
        from repro.workloads import run_scenario

        replay = run_scenario(spec)
        assert replay.rounds == row["rounds"]
        assert replay.to_row()["verdicts"] == row["verdicts"]
