"""E8 — the message-passing substrates of §4.3.

* consensus from ``Omega ∧ Sigma``: rounds to decision vs group size and
  crash fraction (expected: small constants; crashes add the failover
  delay of the ``Omega`` stabilization);
* the consensus-based replicated log: rounds per appended entry;
* the contention-free fast path (Proposition 47, ablation #2 of
  DESIGN.md): uncontended intersection-log operations stay on the
  adopt–commit fast path and charge only ``g∩h``; racing operations fall
  back to the hosted consensus and charge the host group.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.core import MulticastSystem
from repro.groups import topology_from_indices
from repro.metrics import format_table
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.sim import Kernel
from repro.substrates import ConsensusCluster, ReplicatedLogCluster
from repro.workloads import ScenarioSpec, random_sends, run_scenario, ring_topology

CONSENSUS_ROWS = []
LOG_ROWS = []


def teardown_module(module):
    print("\n\nE8a - consensus from Omega ∧ Sigma:")
    print(
        format_table(
            ("group size", "crashes", "rounds to decision"), CONSENSUS_ROWS
        )
    )
    print("\nE8b - replicated log (universal construction):")
    print(format_table(("entries", "rounds", "rounds/entry"), LOG_ROWS))


@pytest.mark.parametrize("size,crashes", [(3, 0), (5, 0), (5, 1), (5, 2)])
def test_consensus_rounds_to_decision(benchmark, size, crashes):
    procs = make_processes(size)
    scope = pset(procs)
    crash_times = {procs[i]: 10 for i in range(crashes)}
    pattern = crash_pattern(scope, crash_times)

    def decide():
        cluster = ConsensusCluster(pattern, scope)
        for p in procs:
            cluster.propose(p, f"v{p.index}")
        kernel = Kernel(pattern, cluster.automata, cluster.detectors, seed=size)
        rounds = kernel.run(
            500,
            stop_when=lambda: cluster.decided_everywhere(pattern.correct),
        )
        decisions = {cluster.decision_at(p) for p in pattern.correct}
        assert len(decisions) == 1
        return rounds

    rounds = run_once(benchmark, decide)
    CONSENSUS_ROWS.append((size, crashes, rounds))


@pytest.mark.parametrize("entries", [1, 3, 5])
def test_replicated_log_throughput(benchmark, entries):
    procs = make_processes(3)
    scope = pset(procs)
    pattern = failure_free(scope)

    def replicate():
        cluster = ReplicatedLogCluster(pattern, scope)
        for i in range(entries):
            cluster.append(procs[i % 3], f"entry-{i}")
        kernel = Kernel(pattern, cluster.automata, cluster.detectors, seed=entries)
        rounds = kernel.run(
            1500,
            stop_when=lambda: all(
                len(cluster.applied_at(p)) >= entries for p in procs
            ),
        )
        sequences = {cluster.applied_at(p) for p in procs}
        assert len(sequences) == 1
        return rounds

    rounds = run_once(benchmark, replicate)
    LOG_ROWS.append((entries, rounds, rounds / entries))


def test_fast_path_dominates_uncontended_runs(benchmark):
    """Proposition 47 at system level: a group-sequential workload keeps
    every intersection log on the adopt–commit fast path."""
    topo = ring_topology(4)
    procs = make_processes(4)

    spec = ScenarioSpec.capture(
        topo,
        failure_free(pset(procs)),
        random_sends(topo, 8, seed=5),
        seed=5,
    )

    def scenario():
        return run_scenario(spec).system.space.intersection_log_stats()

    stats = run_once(benchmark, scenario)
    total_fast = sum(fast for fast, _ in stats.values())
    total_slow = sum(slow for _, slow in stats.values())
    assert total_fast > 0
    # The overwhelming majority of intersection-log operations must stay
    # on the fast path (slow ops only appear under racing schedules).
    assert total_slow <= total_fast // 4
    print(
        f"\nE8c - Prop. 47 fast path: {total_fast} fast vs "
        f"{total_slow} slow intersection-log ops"
    )


def test_slow_path_costs_the_host_group(benchmark):
    """Ablation #2: forcing contention shows the fast path's value —
    slow-path operations charge the whole host group."""
    topo = topology_from_indices(4, {"g1": [1, 2, 3], "g2": [2, 3, 4]})
    procs = make_processes(4)

    def scenario():
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=6)
        g1, g2 = topo.group("g1"), topo.group("g2")
        ilog = system.space.intersection_log(g1, g2)
        before = len(system.record.steps)
        # Uncontended op: fast, charges only g1∩g2 = {p2, p3}.
        ilog.append(procs[1], "fast-op")
        fast_cost = len(system.record.steps) - before
        # Forced contention: p3's cursor disagrees with the established
        # order, so its op runs the hosted consensus.
        ilog._established.append(("append", "phantom"))
        before = len(system.record.steps)
        ilog.append(procs[2], "slow-op")
        slow_cost = len(system.record.steps) - before
        return fast_cost, slow_cost

    fast_cost, slow_cost = run_once(benchmark, scenario)
    assert fast_cost == 2  # |g1∩g2|
    assert slow_cost == 3  # |host group g1|
