"""The 100x-scale sweep: one million deliveries on a 200-process topology.

The batching/slotting PR promised two things at scale: (1) the kernel's
hot path (scheduler round loop, message buffer, replicated-log automata)
got ≥ 1.5x faster on an open-loop 200-process workload, and (2) the
topology layer stopped being the bottleneck at hundreds of groups — a
200-group ring now *constructs and runs* on the engine, where the old
family enumeration would have hung.

This module is the tracked record of both claims.  It drives the exact
workload the PR was profiled against — 40 disjoint 5-process groups
under the kernel backend, 25 send waves per seed (5 000 deliveries per
seed) — across enough seeds to accumulate one million deliveries, and
writes the measured throughput next to the frozen pre-PR baseline into
``BENCH_scale.json`` at the repo root (alongside ``BENCH_campaign.json``).

Topologies are addressed by *recipe* (the v4 generator form of
:class:`repro.workloads.TopologySpec`), so the sweep's scenario hashes
cover three JSON scalars instead of a 200-entry group map.

Not part of the default test path (``testpaths = ["tests"]``); run it
explicitly::

    PYTHONPATH=src python -m pytest benchmarks/bench_scale.py -q

Set ``REPRO_SCALE_DELIVERIES`` to shrink the sweep (e.g. ``50000`` for a
CI smoke); ``BENCH_scale.json`` is only (re)written by the full
million-delivery sweep, so the committed numbers always describe the
same experiment.
"""

from __future__ import annotations

import json
import os
import time

from repro.metrics import format_table
from repro.workloads import (
    ScenarioSpec,
    Send,
    TopologySpec,
    random_sends,
    run_scenario,
)

#: The frozen pre-PR numbers, measured at commit 3e29442 (the parent of
#: the batching/slotting PR) on this container: 3 seeds of the kernel
#: workload below, 15 000 deliveries in 3.235 s.
PRE_PR_KERNEL_DELIVERIES_PER_SEC = 4637.0

#: The acceptance floor of the PR: batched hot path ≥ 1.5x on this
#: exact workload.
REQUIRED_SPEEDUP = 1.5

#: Kernel workload shape: 40 disjoint 5-process groups (200 processes),
#: 25 waves x 40 groups per seed = 1 000 multicasts = 5 000 deliveries.
GROUPS = 40
GROUP_SIZE = 5
WAVES = 25
DELIVERIES_PER_SEED = WAVES * GROUPS * GROUP_SIZE

#: Total deliveries the sweep accumulates (200 seeds x 5 000).
TARGET_DELIVERIES = int(os.environ.get("REPRO_SCALE_DELIVERIES", 1_000_000))

ROWS = []


def teardown_module(module):
    if ROWS:
        print("\n\nScale sweep (200-process topologies, generator-form specs):")
        print(
            format_table(
                ("cell", "deliveries", "seconds", "deliveries/sec"), ROWS
            )
        )


def _kernel_spec(seed: int) -> ScenarioSpec:
    """One seed of the profiled workload, addressed by recipe."""
    topology = TopologySpec.from_generator(
        {"kind": "disjoint", "k": GROUPS, "group_size": GROUP_SIZE}
    )
    sends = tuple(
        Send(sender=(gi - 1) * GROUP_SIZE + 1, group=f"g{gi}", at_round=wave * 3)
        for wave in range(WAVES)
        for gi in range(1, GROUPS + 1)
    )
    return ScenarioSpec(
        topology=topology,
        sends=sends,
        seed=seed,
        max_rounds=6000,
        backend="kernel",
    )


def test_million_delivery_kernel_sweep():
    """The tracked claim: ≥ 1.5x over the pre-PR scheduler at 1M scale."""
    seeds = max(1, -(-TARGET_DELIVERIES // DELIVERIES_PER_SEED))
    total_deliveries = 0
    total_rounds = 0
    started = time.perf_counter()
    for seed in range(seeds):
        result = run_scenario(_kernel_spec(seed))
        assert not result.truncated
        deliveries = len(result.record.deliveries)
        assert deliveries == DELIVERIES_PER_SEED
        total_deliveries += deliveries
        total_rounds += result.rounds
    elapsed = time.perf_counter() - started

    per_sec = total_deliveries / elapsed
    speedup = per_sec / PRE_PR_KERNEL_DELIVERIES_PER_SEC
    ROWS.append(
        (
            f"kernel disjoint {GROUPS}x{GROUP_SIZE} ({seeds} seeds)",
            total_deliveries,
            round(elapsed, 2),
            f"{per_sec:,.0f} ({speedup:.2f}x pre-PR)",
        )
    )

    if total_deliveries >= 1_000_000:
        bench_path = os.path.join(
            os.path.dirname(__file__), "..", "BENCH_scale.json"
        )
        with open(bench_path, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "workload": {
                        "backend": "kernel",
                        "topology": {
                            "kind": "disjoint",
                            "k": GROUPS,
                            "group_size": GROUP_SIZE,
                        },
                        "processes": GROUPS * GROUP_SIZE,
                        "waves_per_seed": WAVES,
                        "deliveries_per_seed": DELIVERIES_PER_SEED,
                    },
                    "seeds": seeds,
                    "deliveries": total_deliveries,
                    "rounds": total_rounds,
                    "elapsed_seconds": round(elapsed, 2),
                    "deliveries_per_sec": round(per_sec, 1),
                    "pre_pr_deliveries_per_sec": PRE_PR_KERNEL_DELIVERIES_PER_SEC,
                    "speedup_vs_pre_pr": round(speedup, 2),
                    "required_speedup": REQUIRED_SPEEDUP,
                },
                fh,
                indent=2,
                sort_keys=True,
            )
            fh.write("\n")

    assert speedup >= REQUIRED_SPEEDUP, (
        f"batched hot path must clear {REQUIRED_SPEEDUP}x over the pre-PR "
        f"scheduler on the 200-process kernel workload, measured {speedup:.2f}x"
    )


def test_ring200_runs_on_the_engine():
    """The capability the old family sweep denied: a 200-group ring.

    A ring's intersection graph is a single 200-cycle — one cyclic
    family.  Pre-PR, engine construction brute-forced the subset lattice
    and a 200-group ring was unrunnable; the certificate-based sweep
    makes it a sub-second smoke.  Deliveries are modest here on purpose:
    this cell tracks *constructibility and correctness* at 100x group
    count, not throughput (that is the kernel cell's job).
    """
    topology_spec = TopologySpec.from_generator({"kind": "ring", "k": 200})
    topology = topology_spec.build()
    sends = tuple(random_sends(topology, 10, seed=5, spread_rounds=10))
    started = time.perf_counter()
    result = run_scenario(
        ScenarioSpec(
            topology=topology_spec,
            sends=sends,
            seed=5,
            max_rounds=4000,
        )
    )
    elapsed = time.perf_counter() - started
    assert not result.truncated
    deliveries = len(result.record.deliveries)
    assert deliveries == sum(
        len(topology.group(s.group).members) for s in sends
    )
    ROWS.append(
        (
            "engine ring k=200 (1 seed)",
            deliveries,
            round(elapsed, 2),
            f"{deliveries / elapsed:,.0f}",
        )
    )
