"""Coverage-guided exploration vs pure random sampling.

The explorer's reason to exist is that feedback beats the lottery: a
corpus + energy schedule + mutation engine should reach execution
behaviours that independent ``random_plan`` draws do not, given the
same budget.  This benchmark runs both strategies — identical bases,
seeds and budgets, fully deterministic — and asserts the dominance
claim on **final coverage**: averaged over seeds, the guided search
ends each campaign knowing strictly more distinct fingerprints than
the random ablation.

The per-iteration shape is the classic fuzzing curve and is recorded,
not asserted: random sampling sprints early (every fresh draw is a new
named-mix plan), the guided search overtakes as the corpus fills and
mutation starts exploiting rare entries — by the 96-iteration budget
it leads on both the healthy bases and the quirked rediscovery cell.

The measured curves are committed to ``BENCH_explore.json`` at the
repo root (the coverage-vs-iterations artifact EXPERIMENTS.md plots)
and the quirked half doubles as a soak-shaped check: every guided seed
must rediscover the supersede-wait stall inside the budget.
"""

from __future__ import annotations

import json
import os
import time

from repro.explore import Explorer
from repro.explore.__main__ import base_cells
from repro.metrics import format_table

ITERATIONS = 96
SEEDS = (0, 1, 2, 3, 4)
#: Curve checkpoints committed to BENCH_explore.json (1-based).
CHECKPOINTS = (8, 16, 24, 32, 48, 64, 80, 96)

ROWS = []
BENCH: dict = {"iterations": ITERATIONS, "seeds": list(SEEDS)}


def _campaigns(bases, strategy):
    """One campaign per seed; returns (avg curve, final coverages, triage)."""
    curves, finals, triage_counts = [], [], []
    for seed in SEEDS:
        explorer = Explorer(bases, seed=seed, strategy=strategy)
        report = explorer.run(iterations=ITERATIONS)
        curves.append([point["coverage"] for point in report.curve])
        finals.append(report.coverage)
        triage_counts.append(len(report.triage))
    average = [
        round(sum(curve[i] for curve in curves) / len(curves), 1)
        for i in range(ITERATIONS)
    ]
    return average, finals, triage_counts


def _record(setting, strategy, average, finals):
    BENCH.setdefault(setting, {})[strategy] = {
        "final_coverage_by_seed": finals,
        "final_coverage_mean": round(sum(finals) / len(finals), 1),
        "curve": {str(i): average[i - 1] for i in CHECKPOINTS},
    }
    ROWS.append(
        (
            setting,
            strategy,
            round(sum(finals) / len(finals), 1),
            " ".join(str(average[i - 1]) for i in CHECKPOINTS),
        )
    )


def teardown_module(module):
    if ROWS:
        print("\n\nexplore - guided vs random, mean final coverage:")
        print(
            format_table(
                ("setting", "strategy", "final", "curve @ checkpoints"),
                ROWS,
            )
        )
    bench_path = os.path.join(
        os.path.dirname(__file__), "..", "BENCH_explore.json"
    )
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(BENCH, fh, indent=2, sort_keys=True)
        fh.write("\n")


def test_guided_dominates_random_on_healthy_bases():
    bases = base_cells(("engine", "kernel"))
    started = time.perf_counter()
    guided_avg, guided_finals, _ = _campaigns(bases, "guided")
    random_avg, random_finals, _ = _campaigns(bases, "random")
    BENCH["healthy_seconds"] = round(time.perf_counter() - started, 2)
    _record("healthy", "guided", guided_avg, guided_finals)
    _record("healthy", "random", random_avg, random_finals)

    assert sum(guided_finals) > sum(random_finals), (
        f"guided must end with more coverage than random on average: "
        f"{guided_finals} vs {random_finals}"
    )
    # And nothing violates on the fixed code paths (see the fault
    # matrix): coverage here is schedule diversity, not bugs.
    assert guided_avg[-1] > guided_avg[0]


def test_guided_dominates_random_on_the_rediscovery_cell():
    bases = base_cells(("kernel",), quirks=("supersede-wait",))
    started = time.perf_counter()
    guided_avg, guided_finals, guided_triage = _campaigns(bases, "guided")
    random_avg, random_finals, _ = _campaigns(bases, "random")
    BENCH["quirked_seconds"] = round(time.perf_counter() - started, 2)
    _record("quirked", "guided", guided_avg, guided_finals)
    _record("quirked", "random", random_avg, random_finals)

    assert sum(guided_finals) > sum(random_finals), (
        f"guided must end with more coverage than random on average: "
        f"{guided_finals} vs {random_finals}"
    )
    # Every guided seed rediscovers the supersede-wait stall in budget.
    assert all(count >= 1 for count in guided_triage), guided_triage
    BENCH["quirked_guided_distinct_violations"] = guided_triage
