"""E11 — the campaign runner: scenario sweeps as data, executed in bulk.

Every quantitative claim in this reproduction is backed by a sweep of
seeded scenarios.  Before the campaign subsystem, a sweep was a Python
loop: one process, one scenario at a time, each executed three times by
the benchmark harness (``run_once`` uses pedantic rounds=3) just to be
timed.  A :class:`repro.campaign.Campaign` turns the same sweep into a
frozen grid of hashable specs that an executor can fan out over worker
processes and aggregate deterministically.

This module measures the two properties the ISSUE demands of the
subsystem on a ≥ 32-scenario matrix sweep:

* **byte-identity** — the 4-worker process pool and the serial executor
  must serialize byte-identical ``results.jsonl`` content (deterministic
  ordering + machine-independent rows);
* **wall-clock** — the campaign executor versus the retired
  run-each-scenario-thrice harness loop, and serial versus 4 workers
  (the parallel column is hardware-bound: it only exceeds 1.0 when the
  container actually has cores to fan out to — CI and laptops do, this
  repo's 1-core growth container does not).

The measured numbers are recorded in EXPERIMENTS.md ("Running a sweep").
"""

from __future__ import annotations

import os

import pytest

from conftest import run_once
from repro.campaign import Campaign, case, run_campaign
from repro.groups import paper_figure1_topology
from repro.metrics import format_table
from repro.props import verdicts_ok
from repro.workloads import (
    Send,
    hub_topology,
    random_sends,
    ring_topology,
    run_scenario,
)

#: How many times the retired harness executed each sweep scenario
#: (``run_once`` = pytest-benchmark pedantic, iterations=1, rounds=3).
LEGACY_REPEATS = 3

ROWS = []


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def matrix_campaign() -> Campaign:
    """The detector-matrix sweep: 5 cases x 4 seeds x 2 variants = 40.

    The cases cover the paper's load-bearing topology shapes: Figure 1
    with and without the g1∩g2 crash, a 5-ring and a 6-ring (one big
    cyclic family each), and a 4-hub (many overlapping families).
    """
    figure1 = paper_figure1_topology()
    figure1_sends = (
        Send(1, "g1", 0),
        Send(3, "g2", 0),
        Send(4, "g3", 1),
        Send(5, "g4", 1),
        Send(2, "g1", 2),
    )
    ring5 = ring_topology(5)
    ring6 = ring_topology(6)
    hub4 = hub_topology(4)
    return Campaign(
        name="table1-matrix",
        cases=(
            case("figure1", figure1, sends=figure1_sends),
            case(
                "figure1-crash",
                figure1,
                crashes=((2, 4),),
                sends=figure1_sends,
            ),
            case("ring5", ring5, sends=tuple(random_sends(ring5, 8, seed=11))),
            case("ring6", ring6, sends=tuple(random_sends(ring6, 10, seed=12))),
            case("hub4", hub4, sends=tuple(random_sends(hub4, 8, seed=13))),
        ),
        seeds=(0, 1, 2, 3),
        variants=("vanilla", "strict"),
        max_rounds=2000,
    )


def teardown_module(module):
    if ROWS:
        print("\n\nE11 - campaign runner on the 40-scenario matrix sweep:")
        print(
            format_table(
                ("executor", "scenarios", "seconds", "vs legacy harness"),
                ROWS,
            )
        )


def test_parallel_matches_serial_byte_for_byte(trace_dir):
    """The acceptance property: 4 workers, byte-identical aggregation."""
    campaign = matrix_campaign()
    specs = campaign.specs()
    assert len(specs) >= 32

    serial = run_campaign(campaign, workers=1)
    parallel = run_campaign(campaign, workers=4, mode="process")

    assert serial.results_jsonl() == parallel.results_jsonl()
    assert serial.summary == parallel.summary
    assert serial.summary["failed"] == 0
    assert serial.summary["truncated"] == 0
    assert serial.summary["delivered"] == len(specs)
    for row in serial.ok_rows():
        assert verdicts_ok(row["verdicts"]), row["name"]

    ROWS.append(("serial", len(specs), round(serial.elapsed, 3), ""))
    ROWS.append(
        (
            "4 workers",
            len(specs),
            round(parallel.elapsed, 3),
            f"{serial.elapsed / parallel.elapsed:.2f}x vs serial "
            f"({_cores()} core(s) here)",
        )
    )
    if _cores() >= 4:
        # With real cores to fan out to, the pool must win outright.
        assert serial.elapsed / parallel.elapsed >= 2.0
    if trace_dir is not None:
        serial.write(os.path.join(trace_dir, "campaign-matrix"))


def test_campaign_beats_the_retired_harness_loop(benchmark):
    """The sweep-porting win: ≥ 2x wall-clock over the old harness.

    The retired sweep style (bench_table1/bench_convoy before this PR)
    pushed every scenario through ``run_once``: pedantic timing with
    rounds=3, i.e. three full executions per scenario, serially, plus a
    fresh argument list built per call.  The campaign executor runs each
    spec exactly once and still returns verdict-checked rows, so the
    same sweep costs a third of the scenario executions — a machine-
    independent ≥ 2x on any host, before worker parallelism is even
    switched on.
    """
    campaign = matrix_campaign()
    specs = campaign.specs()

    import time

    started = time.perf_counter()
    for spec in specs:
        for _ in range(LEGACY_REPEATS):
            run_scenario(spec)
    legacy_elapsed = time.perf_counter() - started

    report = run_once(benchmark, lambda: run_campaign(campaign, workers=1))
    assert report.summary["ok"] == len(specs)

    speedup = legacy_elapsed / report.elapsed
    ROWS.append(
        (
            "legacy harness (3x each)",
            len(specs),
            round(legacy_elapsed, 3),
            "1.00x (baseline)",
        )
    )
    ROWS.append(
        ("campaign serial", len(specs), round(report.elapsed, 3), f"{speedup:.2f}x")
    )
    assert speedup >= 2.0, (
        f"campaign executor must beat the retired 3x-per-scenario harness "
        f"loop at least 2x, measured {speedup:.2f}x"
    )


def test_cold_vs_warm_vs_resume_cache(tmp_path):
    """The scale-out layer's acceptance numbers, recorded in
    ``BENCH_campaign.json`` at the repo root.

    Three sweeps of the 40-scenario matrix: a cold run that fills the
    result cache, a warm rerun that must execute nothing and replay
    byte-identical artifacts at least 5x faster, and a resumed run that
    continues a 50%-interrupted sweep (warm cells replayed from cache)
    to the same bytes.
    """
    import json
    import time

    campaign = matrix_campaign()
    specs = campaign.specs()
    cache_dir = str(tmp_path / "cache")

    cold = run_campaign(campaign, cache=cache_dir, out_dir=str(tmp_path / "cold"))
    assert cold.executed == len(specs) and cold.summary["failed"] == 0

    warm = run_campaign(campaign, cache=cache_dir, out_dir=str(tmp_path / "warm"))
    assert warm.executed == 0 and warm.cached == len(specs)
    with open(tmp_path / "cold" / "results.jsonl", "rb") as fh:
        cold_bytes = fh.read()
    with open(tmp_path / "warm" / "results.jsonl", "rb") as fh:
        assert fh.read() == cold_bytes

    # Interrupt an uncached sweep at 50%, then resume with the cache.
    part = str(tmp_path / "part")
    stop = {"n": 0}

    def bomb(row):
        stop["n"] += 1
        if stop["n"] == len(specs) // 2:
            raise KeyboardInterrupt

    try:
        run_campaign(campaign, out_dir=part, on_row=bomb)
    except KeyboardInterrupt:
        pass
    started = time.perf_counter()
    resumed = run_campaign(campaign, out_dir=part, resume=True, cache=cache_dir)
    resume_elapsed = time.perf_counter() - started
    assert resumed.executed == 0  # every missing cell came from the cache
    with open(tmp_path / "part" / "results.jsonl", "rb") as fh:
        assert fh.read() == cold_bytes

    speedup = cold.elapsed / warm.elapsed if warm.elapsed else float("inf")
    ROWS.append(("cold (fills cache)", len(specs), round(cold.elapsed, 3), ""))
    ROWS.append(
        ("warm (cache replay)", len(specs), round(warm.elapsed, 3), f"{speedup:.1f}x vs cold")
    )
    ROWS.append(
        (
            "resume at 50% (warm)",
            len(specs),
            round(resume_elapsed, 3),
            f"{resumed.resumed} resumed + {resumed.cached} cached",
        )
    )

    bench_path = os.path.join(os.path.dirname(__file__), "..", "BENCH_campaign.json")
    with open(bench_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "grid": len(specs),
                "cold_seconds": round(cold.elapsed, 4),
                "warm_seconds": round(warm.elapsed, 4),
                "resume_seconds": round(resume_elapsed, 4),
                "warm_speedup": round(speedup, 2),
                "resumed_rows": resumed.resumed,
                "cached_rows": resumed.cached,
                "byte_identical": True,
            },
            fh,
            indent=2,
            sort_keys=True,
        )
        fh.write("\n")

    assert speedup >= 5.0, (
        f"warm cache replay must be at least 5x faster than the cold "
        f"sweep, measured {speedup:.2f}x"
    )
