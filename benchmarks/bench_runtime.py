"""Runtime-scheduler smoke benchmark: rounds/sec on both hosts.

The ``repro.runtime.Scheduler`` extraction promised byte-identical
behaviour (pinned by ``tests/runtime``) at no material speed cost.  This
benchmark measures raw round throughput of the two hosts on the Table 1
workload — the Figure 1 topology under Algorithm 1 for the engine, a
replicated-log cluster for the kernel — in both scheduling modes, and
records ``rounds_per_sec`` in each benchmark's ``extra_info`` so the CI
``runtime-differential`` job can upload the numbers as a JSON artifact
(``--benchmark-json``) and regressions are visible across runs.

Acceptance gate of the refactor PR: engine event-mode throughput within
0.9x of the pre-refactor loop on this exact workload.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.metrics import format_table
from repro.model import failure_free, make_processes, pset
from repro.sim import Kernel
from repro.substrates import ReplicatedLogCluster
from repro.workloads import Send

SENDS = [
    Send(1, "g1", 0),
    Send(3, "g2", 0),
    Send(4, "g3", 1),
    Send(5, "g4", 1),
    Send(2, "g1", 2),
]

#: Repeat the workload so one timed iteration is dominated by round
#: execution, not deployment construction.
ENGINE_REPEATS = 20
KERNEL_ROUNDS = 200

ROWS = []


def teardown_module(module):
    print("\n\nRuntime scheduler throughput (shared Scheduler hosts):")
    print(format_table(("host", "mode", "rounds", "rounds/sec"), ROWS))


def _engine_rounds(scheduling):
    total = 0
    for seed in range(ENGINE_REPEATS):
        topology = paper_figure1_topology()
        system = MulticastSystem(
            topology,
            failure_free(topology.processes),
            seed=seed,
            scheduling=scheduling,
        )
        amc = AtomicMulticast(system)
        processes = sorted(topology.processes)
        for send in SENDS:
            amc.multicast(processes[send.sender - 1], send.group)
        total += amc.run(max_rounds=400)
    return total


def _kernel_rounds(event_driven):
    procs = make_processes(6)
    universe = pset(procs)
    pattern = failure_free(universe)
    cluster = ReplicatedLogCluster(pattern, universe)
    for i, p in enumerate(procs[:3]):
        cluster.append(p, f"v{i}")
    kernel = Kernel(
        pattern,
        cluster.automata,
        cluster.detectors,
        seed=7,
        event_driven=event_driven,
    )
    return kernel.run(KERNEL_ROUNDS)


def _record(benchmark, host, mode, rounds):
    per_sec = rounds / benchmark.stats.stats.mean
    benchmark.extra_info["host"] = host
    benchmark.extra_info["mode"] = mode
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["rounds_per_sec"] = round(per_sec, 1)
    ROWS.append((host, mode, rounds, f"{per_sec:,.0f}"))


@pytest.mark.parametrize("scheduling", ["scan", "event"])
def test_engine_round_throughput(benchmark, scheduling):
    rounds = run_once(benchmark, _engine_rounds, scheduling)
    assert rounds > 0
    _record(benchmark, "engine(figure1)", scheduling, rounds)


@pytest.mark.parametrize("event_driven", [False, True])
def test_kernel_round_throughput(benchmark, event_driven):
    rounds = run_once(benchmark, _kernel_rounds, event_driven)
    assert rounds == KERNEL_ROUNDS  # fixed budget: no quiescent_rounds
    _record(
        benchmark,
        "kernel(replog6)",
        "event" if event_driven else "scan",
        rounds,
    )
