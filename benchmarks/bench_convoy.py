"""E4 — the convoy effect (§6.2; ref [1]).

"When contention occurs, a message may wait for a chain of messages to be
delivered first.  This chain can span outside of the destination group."

We use hub topologies: k groups all sharing the hub process p1, so every
pair of groups is a cyclic-family edge and the stabilization waits of
lines 28/32 are live between g1 and every spoke.  A probe to g1 must wait,
in each shared log, for the spoke messages racing ahead of it — work and
waiting that grow with the number of contending neighbour groups although
g1 itself always carries exactly one message.

Latency is measured in rounds at one action per process per round (the
finest interleaving).  Expected shape: the contended probe's latency grows
markedly faster with k than the idle control's (whose growth is just the
per-partner stabilization records).
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.campaign import Campaign, case, run_campaign
from repro.core import AtomicMulticast, MulticastSystem
from repro.metrics import format_table
from repro.model import failure_free, make_processes, pset
from repro.props import assert_run_ok
from repro.workloads import Send, hub_topology

ROWS = []
SCAN_ROWS = []
CAMPAIGN_ROWS = []


def teardown_module(module):
    if ROWS:  # empty when only a subset of the module ran
        print("\n\nE4 - convoy effect: probe latency vs contending spokes:")
        print(
            format_table(
                ("spoke groups", "contended latency", "idle latency", "gap"),
                ROWS,
            )
        )
        gaps = [row[3] for row in ROWS]
        # Shape: the contention-induced gap grows with the number of
        # neighbour groups the probe never addressed.
        assert gaps[-1] > gaps[0]
        assert all(gap > 0 for gap in gaps)
    if SCAN_ROWS:
        print("\nWake-index scheduling: processes scanned per mode:")
        print(
            format_table(
                ("spoke groups", "eligible", "event scanned", "ratio"),
                SCAN_ROWS,
            )
        )
    if CAMPAIGN_ROWS:
        print("\nConvoy sweep via the campaign API: probe work vs spokes:")
        print(
            format_table(
                ("spoke groups", "contended actions", "idle actions", "gap"),
                CAMPAIGN_ROWS,
            )
        )


def run_convoy(k: int, contended: bool, scheduling: str = "event"):
    """Drive the convoy workload; return (latency rounds, system)."""
    topo = hub_topology(k)
    procs = make_processes(len(topo.processes))
    system = MulticastSystem(
        topo, failure_free(pset(procs)), seed=31, scheduling=scheduling
    )
    amc = AtomicMulticast(system)
    if contended:
        for i in range(2, k + 1):
            group = topo.group(f"g{i}")
            amc.multicast(sorted(group.members)[-1], f"g{i}")
        system.tick(action_budget=1)
    probe = amc.multicast(procs[0], "g1")
    g1 = topo.group("g1")
    rounds = 0
    while (
        system.record.delivered_by(probe) != g1.members and rounds < 3000
    ):
        system.tick(action_budget=1)
        rounds += 1
    system.run()  # drain, then machine-check the whole run
    assert_run_ok(system.record)
    assert system.record.delivered_by(probe) == g1.members
    return rounds, system


def probe_latency(k: int, contended: bool) -> int:
    rounds, _ = run_convoy(k, contended)
    return rounds


@pytest.mark.parametrize("k", [2, 3, 4, 5, 6])
def test_probe_latency_under_contention(benchmark, k):
    contended = run_once(benchmark, probe_latency, k, True)
    idle = probe_latency(k, False)
    ROWS.append((k, contended, idle, contended - idle))
    assert contended > idle


def test_wake_index_scan_ratio(trace_export):
    """The event scheduler's headline win on the convoy workload.

    Same seed, same rounds, byte-identical record — but the wake index
    scans a fraction of the processes the seed scan engine visited.
    """
    for k in (4, 6):
        latency_event, event = run_convoy(k, True, scheduling="event")
        latency_scan, scan = run_convoy(k, True, scheduling="scan")
        assert latency_event == latency_scan  # identical schedule
        summary = event.tracer.summary()
        baseline = scan.tracer.summary()
        assert baseline["scanned"] == baseline["eligible"]
        assert summary["eligible"] == baseline["eligible"]
        SCAN_ROWS.append(
            (
                k,
                summary["eligible"],
                summary["scanned"],
                summary["scan_ratio"],
            )
        )
        trace_export(
            event,
            meta={"workload": "convoy", "k": k, "scheduling": "event"},
            suffix=f"_k{k}",
        )
    # ISSUE acceptance: >= 2x fewer scans on the convoy workload.
    assert SCAN_ROWS[-1][3] >= 2.0


def _convoy_case(k: int, contended: bool):
    """The convoy workload as a declarative send script.

    Spoke senders fire into g2..gk at round 0; the probe multicasts to
    g1 at round 1, racing the spokes through the logs they share with
    the hub process p1.
    """
    topo = hub_topology(k)
    sends = []
    if contended:
        for i in range(2, k + 1):
            group = topo.group(f"g{i}")
            sends.append(Send(sorted(group.members)[-1].index, f"g{i}", 0))
    sends.append(Send(1, "g1", 1))
    label = f"hub{k}" if contended else f"hub{k}-idle"
    return case(label, topo, sends=tuple(sends))


def test_convoy_campaign_sweep(benchmark):
    """The k-sweep of E4, ported onto the campaign API.

    Under full-parallel ticks the convoy shows up as *work*, not
    rounds: the actions the system executes before quiescence grow
    superlinearly with the number of contending spoke groups, while the
    idle control grows by a constant per extra group.  One campaign
    covers both arms of every k; the gap per k is the convoy.
    """
    spokes = (2, 3, 4, 5, 6)
    campaign = Campaign(
        name="convoy-sweep",
        cases=tuple(
            _convoy_case(k, contended)
            for k in spokes
            for contended in (True, False)
        ),
        seeds=(31,),
        max_rounds=3000,
    )

    report = run_once(benchmark, lambda: run_campaign(campaign, workers=1))
    summary = report.summary
    assert summary["failed"] == 0 and summary["truncated"] == 0
    assert summary["delivered"] == summary["scenarios"]
    assert sum(summary["violations"].values()) == 0

    actions = {
        row["name"].split(":", 1)[0]: row["trace"]["actions"]
        for row in report.rows
    }
    gaps = []
    for k in spokes:
        gap = actions[f"hub{k}"] - actions[f"hub{k}-idle"]
        CAMPAIGN_ROWS.append(
            (k, actions[f"hub{k}"], actions[f"hub{k}-idle"], gap)
        )
        gaps.append(gap)
    assert all(gap > 0 for gap in gaps)
    assert gaps == sorted(gaps) and gaps[-1] > gaps[0]
