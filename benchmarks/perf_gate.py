"""Throughput regression gate for the runtime-scheduler smoke benchmark.

Compares a fresh ``--benchmark-json`` export of
``benchmarks/bench_runtime.py`` against the committed reference numbers
in ``BENCH_runtime.json`` (repo root) and fails when any cell's
``rounds_per_sec`` drops below ``floor`` (default 0.9) times its
reference.  Usage::

    PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py \
        -q --benchmark-json=runtime-bench.json
    python benchmarks/perf_gate.py runtime-bench.json

The committed reference was measured on the 1-core growth container; CI
runners are at least as fast, so a cell under 0.9x there signals a real
hot-path regression, not hardware drift.  When re-baselining after an
intentional perf change, rerun the benchmark and copy the new
``rounds_per_sec`` values into ``BENCH_runtime.json`` in the same PR
(with a changelog entry saying why).

Exit status: 0 when every cell clears the floor, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_cells(benchmark_json: str) -> dict:
    """``host/mode -> rounds_per_sec`` from a pytest-benchmark export."""
    with open(benchmark_json, encoding="utf-8") as fh:
        data = json.load(fh)
    cells = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        if "host" in extra and "mode" in extra and "rounds_per_sec" in extra:
            cells[f"{extra['host']}/{extra['mode']}"] = float(
                extra["rounds_per_sec"]
            )
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmark_json",
        help="fresh --benchmark-json export of bench_runtime.py",
    )
    parser.add_argument(
        "--reference",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_runtime.json"
        ),
        help="committed reference numbers (default: repo-root BENCH_runtime.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        help="minimum fresh/reference ratio (default: the reference's own floor)",
    )
    args = parser.parse_args(argv)

    with open(args.reference, encoding="utf-8") as fh:
        reference = json.load(fh)
    floor = args.floor if args.floor is not None else reference.get("floor", 0.9)
    fresh = load_cells(args.benchmark_json)

    failures = []
    width = max(len(name) for name in reference["cells"])
    print(f"perf gate: floor {floor}x of committed {args.reference}")
    for name, ref_value in sorted(reference["cells"].items()):
        measured = fresh.get(name)
        if measured is None:
            failures.append(name)
            print(f"  {name:<{width}}  MISSING from {args.benchmark_json}")
            continue
        ratio = measured / ref_value
        verdict = "ok" if ratio >= floor else "REGRESSED"
        if ratio < floor:
            failures.append(name)
        print(
            f"  {name:<{width}}  {measured:>10,.1f} vs {ref_value:>10,.1f} "
            f"rounds/sec  ({ratio:.2f}x)  {verdict}"
        )
    if failures:
        print(f"perf gate FAILED: {', '.join(sorted(failures))}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
