"""Throughput regression gate for the committed benchmark references.

Compares a fresh benchmark export against committed reference numbers
and fails when any cell drops below ``floor`` times its reference.  Two
reference/export pairs are gated:

* the round backends — ``BENCH_runtime.json`` vs a fresh
  ``--benchmark-json`` export of ``benchmarks/bench_runtime.py``
  (``rounds_per_sec`` cells, 0.9 floor)::

      PYTHONPATH=src python -m pytest benchmarks/bench_runtime.py \
          -q --benchmark-json=runtime-bench.json
      python benchmarks/perf_gate.py runtime-bench.json

* the async backend — ``BENCH_async.json`` vs a fresh run of the
  open-loop ``benchmarks/bench_async.py`` (``deliveries_per_sec``
  cells, looser floor — event-loop timing is noisier)::

      PYTHONPATH=src python benchmarks/bench_async.py --out fresh-async.json
      python benchmarks/perf_gate.py fresh-async.json \
          --reference BENCH_async.json

Both fresh formats are auto-detected: pytest-benchmark exports carry a
``benchmarks`` list with per-bench ``extra_info``; ``bench_async.py``
exports carry a flat ``cells`` map.

The committed references were measured on the 1-core growth container;
CI runners are at least as fast, so a cell under the floor there
signals a real hot-path regression, not hardware drift.  When
re-baselining after an intentional perf change, regenerate the
reference file in the same PR (with a changelog entry saying why).

Exit status: 0 when every cell clears the floor, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def load_cells(benchmark_json: str) -> dict:
    """``cell name -> metric value`` from a fresh benchmark export.

    Accepts either a pytest-benchmark ``--benchmark-json`` file (cells
    are rebuilt from each bench's ``extra_info``) or a flat
    ``{"cells": {...}}`` export like the ones ``bench_async.py`` writes.
    """
    with open(benchmark_json, encoding="utf-8") as fh:
        data = json.load(fh)
    if "cells" in data:
        return {name: float(value) for name, value in data["cells"].items()}
    cells = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info", {})
        if "host" in extra and "mode" in extra and "rounds_per_sec" in extra:
            cells[f"{extra['host']}/{extra['mode']}"] = float(
                extra["rounds_per_sec"]
            )
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "benchmark_json",
        help="fresh --benchmark-json export of bench_runtime.py",
    )
    parser.add_argument(
        "--reference",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_runtime.json"
        ),
        help="committed reference numbers (default: repo-root BENCH_runtime.json)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=None,
        help="minimum fresh/reference ratio (default: the reference's own floor)",
    )
    args = parser.parse_args(argv)

    with open(args.reference, encoding="utf-8") as fh:
        reference = json.load(fh)
    floor = args.floor if args.floor is not None else reference.get("floor", 0.9)
    metric = reference.get("metric", "rounds_per_sec")
    fresh = load_cells(args.benchmark_json)

    failures = []
    width = max(len(name) for name in reference["cells"])
    print(f"perf gate: floor {floor}x of committed {args.reference}")
    for name, ref_value in sorted(reference["cells"].items()):
        measured = fresh.get(name)
        if measured is None:
            failures.append(name)
            print(f"  {name:<{width}}  MISSING from {args.benchmark_json}")
            continue
        ratio = measured / ref_value
        verdict = "ok" if ratio >= floor else "REGRESSED"
        if ratio < floor:
            failures.append(name)
        print(
            f"  {name:<{width}}  {measured:>10,.1f} vs {ref_value:>10,.1f} "
            f"{metric}  ({ratio:.2f}x)  {verdict}"
        )
    if failures:
        print(f"perf gate FAILED: {', '.join(sorted(failures))}")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
