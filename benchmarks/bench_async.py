"""Open-loop throughput benchmark for the ``async`` execution backend.

Open-loop means the workload does not wait for the system: multicasts
are injected at a fixed rate (``ARRIVALS_PER_ROUND`` per logical round)
whether or not earlier messages have been delivered, which is the
arrival discipline a system serving concurrent traffic actually faces.
The benchmark drives the Figure 1 engine deployment (and a disjoint
3x3 grid) through the :class:`repro.runtime.AsyncDriver` on the seeded
virtual clock — so the *schedule* is deterministic and the measured
quantity is pure driver+engine compute — and reports delivered
messages per wall-second.

Usage::

    PYTHONPATH=src python benchmarks/bench_async.py --out fresh-async.json
    python benchmarks/perf_gate.py fresh-async.json --reference BENCH_async.json

Without ``--out`` the run prints its table and exits.  The committed
``BENCH_async.json`` (repo root) is the reference the perf gate holds
fresh runs against; when re-baselining after an intentional perf
change, rerun with ``--out BENCH_async.json`` in the same PR.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups import paper_figure1_topology
from repro.metrics import format_table
from repro.model import failure_free
from repro.props.batch import batch_verdicts, verdicts_ok
from repro.runtime import AsyncDriver
from repro.workloads import Send
from repro.workloads.topologies import disjoint_topology

#: Messages injected per logical round (the open-loop arrival rate) and
#: total messages per cell.  Sized so one cell runs in roughly a second
#: on the growth container — long enough to dominate setup, short
#: enough for CI.
ARRIVALS_PER_ROUND = 2
MESSAGES = 120

#: Delay models swept per topology (label -> spec).
DELAY_MODELS = {
    "uniform": ("uniform", 0.1, 0.9),
    "exponential": ("exponential", 1.0, 8.0),
}

#: Throughput floor for the perf gate: a fresh run must reach this
#: fraction of every committed cell.  Looser than the round-backend
#: gate (0.9) because event-loop timing adds more run-to-run noise than
#: the pure round loop does.
FLOOR = 0.6


def _open_loop_sends(topology) -> list:
    """A round-robin open-loop script: every group keeps receiving."""
    groups = sorted(topology.groups, key=lambda g: g.name)
    sends = []
    for i in range(MESSAGES):
        group = groups[i % len(groups)]
        sender = sorted(group.members)[i % len(group.members)]
        sends.append(
            Send(sender.index, group.name, at_round=1 + i // ARRIVALS_PER_ROUND)
        )
    return sends


def run_cell(topology, delay_spec: tuple, seed: int = 0) -> dict:
    """One (topology, delay model) cell: inject open-loop, run to
    quiescence on the virtual clock, time the whole thing."""
    system = MulticastSystem(
        topology, failure_free(topology.processes), seed=seed
    )
    multicaster = AtomicMulticast(system)
    driver = AsyncDriver(system, delay_model=delay_spec, seed=seed)
    processes = sorted(topology.processes)

    def issue(send, t):
        multicaster.multicast(processes[send.sender - 1], send.group)

    sends = _open_loop_sends(topology)
    budget = 4 * (MESSAGES // ARRIVALS_PER_ROUND) + 200
    start = time.perf_counter()
    outcome = driver.run(sends=sends, issue=issue, max_rounds=budget)
    elapsed = time.perf_counter() - start

    deliveries = len(system.record.deliveries)
    if not outcome.quiescent:
        raise SystemExit("benchmark run did not quiesce — not a number")
    if not verdicts_ok(batch_verdicts(system.record)):
        raise SystemExit("benchmark run violated a property — not a number")
    return {
        "messages": MESSAGES,
        "deliveries": deliveries,
        "rounds": outcome.rounds,
        "elapsed_sec": round(elapsed, 4),
        "deliveries_per_sec": round(deliveries / elapsed, 1),
    }


def run_grid() -> dict:
    cells = {}
    detail = []
    grid = (
        ("async(figure1)", paper_figure1_topology()),
        ("async(disjoint3x3)", disjoint_topology(3, group_size=3)),
    )
    for host, topology in grid:
        for label, spec in DELAY_MODELS.items():
            cell = run_cell(topology, spec)
            cells[f"{host}/{label}"] = cell["deliveries_per_sec"]
            detail.append(
                (
                    host,
                    label,
                    cell["deliveries"],
                    cell["rounds"],
                    f"{cell['elapsed_sec']:.2f}",
                    f"{cell['deliveries_per_sec']:,.0f}",
                )
            )
    print("Async open-loop throughput (virtual clock, deterministic):")
    print(
        format_table(
            ("host", "delay", "deliveries", "rounds", "sec", "deliv/sec"),
            detail,
        )
    )
    return cells


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the gateable JSON export here (e.g. BENCH_async.json)",
    )
    args = parser.parse_args(argv)
    cells = run_grid()
    if args.out:
        payload = {
            "cells": cells,
            "floor": FLOOR,
            "metric": "deliveries_per_sec",
            "source": (
                "PYTHONPATH=src python benchmarks/bench_async.py --out "
                "BENCH_async.json"
            ),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
