"""Shared benchmark helpers.

Every benchmark in this directory regenerates one artifact of the paper
(Table 1, Figure 1, or a claim from the prose — see DESIGN.md §4) and
asserts its qualitative *shape*.  Timing is measured with
pytest-benchmark in pedantic mode (few rounds — these are system runs,
not microbenchmarks).
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a handful of rounds and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=3)
