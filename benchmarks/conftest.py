"""Shared benchmark helpers.

Every benchmark in this directory regenerates one artifact of the paper
(Table 1, Figure 1, or a claim from the prose — see DESIGN.md §4) and
asserts its qualitative *shape*.  Timing is measured with
pytest-benchmark in pedantic mode (few rounds — these are system runs,
not microbenchmarks).

Pass ``--trace-dir=DIR`` to also dump one JSONL trace per traced benchmark
into ``DIR`` (see :mod:`repro.metrics.trace` for the schema and
EXPERIMENTS.md "Reading a trace" for how to interpret one).
"""

from __future__ import annotations

import os
import re
from typing import Optional

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--trace-dir",
        action="store",
        default=None,
        metavar="DIR",
        help="directory to write per-benchmark JSONL traces into",
    )


@pytest.fixture
def trace_dir(request) -> Optional[str]:
    """The ``--trace-dir`` directory (created on demand), or None."""
    directory = request.config.getoption("--trace-dir")
    if directory is not None:
        os.makedirs(directory, exist_ok=True)
    return directory


@pytest.fixture
def trace_export(request, trace_dir):
    """Write a system's trace to ``<trace_dir>/<test-id>.jsonl``.

    Usage: ``trace_export(system, meta={...})``.  A no-op (returning
    None) when ``--trace-dir`` was not given, so benchmarks can call it
    unconditionally.
    """

    def export(system, meta=None, suffix: str = "") -> Optional[str]:
        if trace_dir is None:
            return None
        stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name + suffix)
        path = os.path.join(trace_dir, f"{stem}.jsonl")
        payload = {"benchmark": request.node.nodeid}
        if meta:
            payload.update(meta)
        return system.tracer.write_jsonl(path, meta=payload)

    return export


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark ``fn`` with a handful of rounds and return its result."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, iterations=1, rounds=3)
