"""E9 — the Proposition 1 reduction (group-sequential ⇔ vanilla).

The reduction funnels concurrent multicasts through the shared lists
``L_g``, restoring the group-sequential discipline Algorithm 1 needs.
We measure its cost: rounds to quiescence for n concurrent multicasts to
one group, via the reduction (vanilla interface) vs the same n messages
issued group-sequentially by a disciplined client.  Expected shape: the
reduction serializes — rounds grow roughly linearly with n in both modes,
with a constant-factor overhead for the reduction's helping machinery.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.core import AtomicMulticast, MulticastSystem
from repro.groups import paper_figure1_topology
from repro.metrics import format_table
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.props import assert_run_ok

PROCS = make_processes(5)
ALL = pset(PROCS)
ROWS = []


def teardown_module(module):
    print("\n\nE9 - Prop. 1 reduction cost (n concurrent msgs to g3):")
    print(
        format_table(
            ("n", "vanilla (reduction) rounds", "group-sequential rounds"),
            ROWS,
        )
    )
    vanilla = [row[1] for row in ROWS]
    assert vanilla == sorted(vanilla)  # serialization: monotone in n


def vanilla_rounds(n: int) -> int:
    system = MulticastSystem(paper_figure1_topology(), failure_free(ALL), seed=41)
    amc = AtomicMulticast(system)
    senders = [PROCS[0], PROCS[2], PROCS[3]]
    for i in range(n):
        amc.multicast(senders[i % 3], "g3", payload=i)
    rounds = amc.run(max_rounds=800)
    assert_run_ok(system.record)
    assert len(system.record.local_order(PROCS[0])) == n
    return rounds


def sequential_rounds(n: int) -> int:
    system = MulticastSystem(paper_figure1_topology(), failure_free(ALL), seed=41)
    senders = [PROCS[0], PROCS[2], PROCS[3]]
    rounds = 0
    for i in range(n):
        system.multicast(senders[i % 3], "g3", payload=i)
        rounds += system.run(max_rounds=100)
    assert_run_ok(system.record)
    assert len(system.record.local_order(PROCS[0])) == n
    return rounds


@pytest.mark.parametrize("n", [1, 2, 4, 8])
def test_reduction_serializes_concurrent_load(benchmark, n):
    vanilla = run_once(benchmark, vanilla_rounds, n)
    sequential = sequential_rounds(n)
    ROWS.append((n, vanilla, sequential))


def test_reduction_helping_survives_sender_crash(benchmark):
    """The reduction's raison d'être under failures: enqueued messages
    of a crashed sender are pushed through by the survivors."""

    def scenario():
        pattern = crash_pattern(ALL, {PROCS[0]: 1})
        system = MulticastSystem(paper_figure1_topology(), pattern, seed=42)
        amc = AtomicMulticast(system)
        doomed = amc.multicast(PROCS[0], "g3", payload="orphan")
        rounds = amc.run()
        return system.record, doomed, rounds

    record, doomed, _rounds = run_once(benchmark, scenario)
    for p in (PROCS[2], PROCS[3]):  # correct members of g3
        assert p in record.delivered_by(doomed)
