"""Ablation #1 (DESIGN.md §6) — the consensus participation scope.

Algorithm 1's line 20 restricts the bump agreement ``CONS_{m,f}`` to the
groups sharing a *cyclic family* with the destination group.  A naive
alternative widens ``f`` to *all intersecting groups*.  Both are safe
(more agreement can't break ordering), but the paper's scope creates
fewer distinct consensus keys and avoids needless coordination on
acyclic topologies.

We run the same workload under both scopes and report consensus objects
used and total steps.  Expected shape: on acyclic (chain) topologies the
paper's scope collapses every key to the empty family while the widened
scope keys per-neighbourhood; on cyclic (ring) topologies the two
coincide (every intersecting pair shares the ring family).
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.core import MulticastSystem
from repro.core.algorithm1 import Algorithm1Process
from repro.metrics import format_table
from repro.model import failure_free, make_processes, pset
from repro.props import assert_run_ok
from repro.workloads import Send, chain_topology, ring_topology

ROWS = []


def teardown_module(module):
    print("\n\nAblation 1 - consensus participation scope (line 20):")
    print(
        format_table(
            ("topology", "scope", "consensus keys", "total steps"), ROWS
        )
    )


def widen_scope(system: MulticastSystem) -> None:
    """Patch every process to key consensus by *all* intersecting groups."""

    def wide_family(self: Algorithm1Process, g):
        members = {g.name}
        for h in self.topology.groups:
            if h != g and g.intersects(h):
                members.add(h.name)
        return frozenset(members)

    for process in system.processes.values():
        process._consensus_family = wide_family.__get__(process)


def run_workload(topology, procs, widened: bool):
    system = MulticastSystem(topology, failure_free(pset(procs)), seed=51)
    if widened:
        widen_scope(system)
    for i, group in enumerate(topology.groups):
        sender = sorted(group.members)[0]
        system.multicast(sender, group.name)
        system.run(max_rounds=100)
    assert_run_ok(system.record)
    return (
        system.space.consensus_objects_used(),
        sum(system.record.step_counts().values()),
    )


@pytest.mark.parametrize("widened", [False, True])
def test_chain_topology_scope(benchmark, widened):
    topo = chain_topology(4)
    procs = make_processes(5)
    keys, steps = run_once(benchmark, run_workload, topo, procs, widened)
    ROWS.append(
        ("chain-4", "all-intersecting" if widened else "paper", keys, steps)
    )
    # One message per group; each commit uses one consensus key.
    assert keys == len(topo.groups)


@pytest.mark.parametrize("widened", [False, True])
def test_ring_topology_scope(benchmark, widened):
    topo = ring_topology(4)
    procs = make_processes(4)
    keys, steps = run_once(benchmark, run_workload, topo, procs, widened)
    ROWS.append(
        ("ring-4", "all-intersecting" if widened else "paper", keys, steps)
    )


def test_scopes_agree_on_rings(benchmark):
    """On a ring every intersecting pair shares the (unique) cyclic
    family, so the two scopes compute the same keys."""

    def compute_keys():
        topo = ring_topology(5)
        procs = make_processes(5)
        system = MulticastSystem(topo, failure_free(pset(procs)))
        process = system.processes[procs[0]]
        return topo, process

    topo, process = run_once(benchmark, compute_keys)
    for g in process.my_groups:
        paper_key = process._consensus_family(g)
        wide = {g.name} | {
            h.name for h in topo.groups if h != g and g.intersects(h)
        }
        assert paper_key == frozenset(wide)
