"""E3 — the genuineness scaling claim (§1, §2.3; refs [33, 37]).

"With [the broadcast] approach, every process takes computational steps
to deliver every message ... as a consequence, the protocol does not
scale, even if the workload is embarrassingly parallel."

We run k disjoint groups with traffic only in group g1 and measure the
steps taken by a process of the *last* group:

* genuine Algorithm 1: exactly zero, independent of k and of the load;
* broadcast baseline: grows linearly with the total load.

Expected shape: a flat zero line vs a linearly growing one.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.baselines import BroadcastMulticast
from repro.core import MulticastSystem
from repro.metrics import format_table
from repro.model import failure_free, make_processes, pset
from repro.workloads import disjoint_topology

LOAD = 8  # messages, all to g1
ROWS = []


def teardown_module(module):
    print("\n\nE3 - steps at an idle process (disjoint groups, load on g1):")
    print(
        format_table(
            ("k groups", "genuine steps", "broadcast steps"), ROWS
        )
    )
    # Shape assertions across the sweep: flat vs growing.
    genuine = [row[1] for row in ROWS]
    broadcast = [row[2] for row in ROWS]
    assert all(v == 0 for v in genuine)
    assert broadcast == sorted(broadcast) and broadcast[0] > 0


@pytest.mark.parametrize("k", [2, 4, 6, 8])
def test_idle_process_work(benchmark, k):
    topo = disjoint_topology(k, group_size=2)
    procs = make_processes(2 * k)
    idle = procs[-1]  # a member of the last group, which gets no traffic

    def scenario():
        pattern = failure_free(pset(procs))
        system = MulticastSystem(topo, pattern, seed=k)
        for i in range(LOAD):
            system.multicast(procs[i % 2], "g1")
            system.run(max_rounds=50)
        genuine_steps = system.record.steps_of(idle)

        baseline = BroadcastMulticast(topo, pattern)
        for i in range(LOAD):
            baseline.multicast(procs[i % 2], "g1")
        baseline.run()
        broadcast_steps = baseline.record.steps_of(idle)
        return genuine_steps, broadcast_steps

    genuine_steps, broadcast_steps = run_once(benchmark, scenario)
    assert genuine_steps == 0
    assert broadcast_steps == LOAD
    ROWS.append((k, genuine_steps, broadcast_steps))


def test_total_system_work_comparison(benchmark):
    """Total steps: genuine work concentrates in the loaded group while
    the baseline charges the whole system per message."""
    k = 6
    topo = disjoint_topology(k, group_size=2)
    procs = make_processes(2 * k)

    def scenario():
        pattern = failure_free(pset(procs))
        system = MulticastSystem(topo, pattern, seed=1)
        for i in range(LOAD):
            system.multicast(procs[i % 2], "g1")
            system.run(max_rounds=50)
        outside = sum(
            system.record.steps_of(p) for p in procs[2:]
        )
        baseline = BroadcastMulticast(topo, pattern)
        for i in range(LOAD):
            baseline.multicast(procs[i % 2], "g1")
        baseline.run()
        baseline_outside = sum(
            baseline.record.steps_of(p) for p in procs[2:]
        )
        return outside, baseline_outside

    outside, baseline_outside = run_once(benchmark, scenario)
    assert outside == 0
    assert baseline_outside == LOAD * (2 * k - 2)
