"""Comparators head-to-head: the Table 1 context rows (§2.3, §7, [36]).

Same workload on the Figure 1 topology across the four architectures:

* Algorithm 1 + mu (this paper): genuine, tolerates any failures;
* Skeen [5, 22]: genuine, failure-free only — one crash blocks;
* Partitioned [32, 17, 21, ...]: genuine while every partition retains a
  live member — a whole-partition failure blocks;
* Broadcast-based (non-genuine): tolerates failures, fails Minimality.

The printed matrix is the qualitative content of the paper's Table 1
surroundings: what each architecture trades away.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.baselines import BroadcastMulticast, PartitionedMulticast, SkeenMulticast
from repro.groups import topology_from_indices
from repro.metrics import format_table
from repro.model import by_indices, crash_pattern, failure_free, make_processes, pset
from repro.props import check_minimality, check_ordering, check_termination
from repro.workloads import ScenarioSpec, Send, run_scenario

#: A topology every baseline can host: two groups sharing a partition.
TOPO = topology_from_indices(5, {"g": [1, 2, 3], "h": [2, 3, 4]})
PROCS = make_processes(5)
ALL = pset(PROCS)
PARTS = [by_indices(1), by_indices(2, 3), by_indices(4), by_indices(5)]
SENDS = [Send(1, "g", 0), Send(4, "h", 0), Send(2, "g", 1)]

ROWS = []


def teardown_module(module):
    print("\n\nBaseline matrix (workload: 3 msgs on g={p1,p2,p3}, h={p2,p3,p4}):")
    print(
        format_table(
            ("protocol", "failure-free", "1 crash in g∩h", "g∩h wiped out",
             "genuine"),
            ROWS,
        )
    )


def crash_one():
    return crash_pattern(ALL, {PROCS[1]: 1})


def crash_intersection():
    return crash_pattern(ALL, {PROCS[1]: 1, PROCS[2]: 1})


def _sends_into(protocol, pattern=None):
    pattern = pattern or failure_free(ALL)
    for send in SENDS:
        sender = PROCS[send.sender - 1]
        if pattern.is_alive(sender, protocol.time):
            protocol.multicast(sender, send.group)
    protocol.run()
    return protocol


def test_algorithm1_row(benchmark):
    specs = [
        ScenarioSpec.capture(TOPO, failure_free(ALL), SENDS, seed=1),
        ScenarioSpec.capture(TOPO, crash_one(), SENDS, seed=2),
        ScenarioSpec.capture(TOPO, crash_intersection(), SENDS, seed=3),
    ]

    def scenario():
        return tuple(run_scenario(spec) for spec in specs)

    ok_free, ok_one, ok_wipe = run_once(benchmark, scenario)
    for result in (ok_free, ok_one, ok_wipe):
        assert check_termination(result.record) == []
        assert check_ordering(result.record) == []
        assert check_minimality(result.record) == []
    ROWS.append(("Algorithm 1 + mu", "ok", "ok", "ok", "yes"))


def test_skeen_row(benchmark):
    def scenario():
        free = _sends_into(SkeenMulticast(TOPO, failure_free(ALL)))
        crashed = _sends_into(
            SkeenMulticast(TOPO, crash_one()), crash_one()
        )
        return free, crashed

    free, crashed = run_once(benchmark, scenario)
    assert check_termination(free.record) == []
    assert check_minimality(free.record) == []
    assert crashed.blocked_messages()  # a single crash blocks Skeen
    ROWS.append(("Skeen [5,22]", "ok", "BLOCKS", "BLOCKS", "yes"))


def test_partitioned_row(benchmark):
    def scenario():
        free = _sends_into(
            PartitionedMulticast(TOPO, failure_free(ALL), PARTS)
        )
        one = _sends_into(
            PartitionedMulticast(TOPO, crash_one(), PARTS), crash_one()
        )
        wiped = _sends_into(
            PartitionedMulticast(TOPO, crash_intersection(), PARTS),
            crash_intersection(),
        )
        return free, one, wiped

    free, one, wiped = run_once(benchmark, scenario)
    assert check_termination(free.record) == []
    assert check_minimality(free.record) == []
    # One member of the {p2,p3} partition may die...
    assert not one.blocked_messages()
    # ...but the whole partition may not (the §7 assumption).
    assert wiped.blocked_messages()
    ROWS.append(("Partitioned [32,17,...]", "ok", "ok", "BLOCKS", "yes"))


def test_broadcast_row(benchmark):
    def scenario():
        free = _sends_into(BroadcastMulticast(TOPO, failure_free(ALL)))
        wiped = _sends_into(
            BroadcastMulticast(TOPO, crash_intersection()),
            crash_intersection(),
        )
        return free, wiped

    free, wiped = run_once(benchmark, scenario)
    assert check_termination(free.record) == []
    assert check_termination(wiped.record) == []
    assert check_minimality(free.record) != []  # p5 works for nothing
    ROWS.append(("Broadcast-based", "ok", "ok", "ok", "NO"))
