"""E5/E6/E7 — the necessity extractions at work (§5, §6, Appendix B).

* E5 (Algorithm 2): rounds for the emulated ``Sigma_{g∩h}`` quorum at a
  survivor to shrink to correct processes, vs intersection width.
* E6 (Algorithm 3): rounds for the emulated ``gamma`` to exclude a ring
  family after an intersection dies, vs ring size — the chain relays one
  multicast per edge, so detection latency grows with the cycle length.
* E7 (Algorithm 5): convergence of the CHT-style leader extraction.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.detectors import check_gamma, check_omega, check_sigma
from repro.emulation import GammaExtraction, OmegaExtraction, SigmaExtraction
from repro.groups import topology_from_indices
from repro.metrics import format_table
from repro.model import crash_pattern, failure_free, make_processes, pset
from repro.workloads import ring_topology

SIGMA_ROWS = []
GAMMA_ROWS = []


def teardown_module(module):
    print("\n\nE5 - Sigma extraction convergence:")
    print(format_table(("|g∩h|", "rounds to correct quorum"), SIGMA_ROWS))
    print("\nE6 - gamma extraction detection latency:")
    print(
        format_table(
            ("ring size", "rounds to exclusion", "full-chain rounds"),
            GAMMA_ROWS,
        )
    )
    chain_latencies = [row[2] for row in GAMMA_ROWS]
    # Shape: the full chain relays one multicast per edge, so its latency
    # grows with the cycle length (exclusion itself is faster thanks to
    # the converse-direction rule).
    assert chain_latencies[-1] > chain_latencies[0]


@pytest.mark.parametrize("width", [1, 2])
def test_sigma_extraction_convergence(benchmark, width):
    """g and h overlap on ``width`` processes; one overlap member dies."""
    overlap = list(range(2, 2 + width))
    g_members = [1] + overlap
    h_members = overlap + [2 + width]
    topo = topology_from_indices(
        2 + width, {"g": g_members, "h": h_members}
    )
    procs = make_processes(2 + width)
    victim = procs[1]  # first overlap member
    pattern = crash_pattern(pset(procs), {victim: 5})
    survivor = procs[2] if width > 1 else procs[0]

    def converge():
        ext = SigmaExtraction(topo, pattern, ["g", "h"], seed=width)
        history = []
        rounds = 0
        for r in range(150):
            ext.tick()
            rounds = r + 1
            queriers = [
                p
                for p in sorted(ext.scope)
                if pattern.is_alive(p, ext.time)
            ]
            for p in queriers:
                history.append((p, ext.time, ext.query(p, ext.time)))
            if width > 1:
                sample = ext.query(survivor, ext.time)
                if sample and set(sample) <= pattern.correct:
                    break
        assert check_sigma(history, pattern, ext.scope) == []
        return rounds

    rounds = run_once(benchmark, converge)
    SIGMA_ROWS.append((width, rounds))


@pytest.mark.parametrize("k", [3, 4, 5])
def test_gamma_extraction_latency(benchmark, k):
    topo = ring_topology(k)
    procs = make_processes(k)
    crash_at = 4
    pattern = crash_pattern(pset(procs), {procs[1]: crash_at})
    observer = procs[0]

    def converge():
        ext = GammaExtraction(topo, pattern, seed=k)
        history = []
        excluded_at = None
        chain_at = None
        for r in range(400):
            ext.tick()
            for p in procs:
                if pattern.is_alive(p, ext.time):
                    history.append(
                        (p, ext.time, ext.query(p, ext.time))
                    )
            if excluded_at is None and not ext.query(observer, ext.time):
                excluded_at = ext.time
            if chain_at is None and ext.full_chain_received(observer):
                chain_at = ext.time
            if excluded_at is not None and chain_at is not None:
                break
        assert check_gamma(history, pattern, topo) == []
        assert excluded_at is not None, "family never excluded"
        assert chain_at is not None, "full chain never completed"
        return excluded_at - crash_at, chain_at - crash_at

    exclusion, chain = run_once(benchmark, converge)
    GAMMA_ROWS.append((k, exclusion, chain))


def test_omega_extraction_agreement(benchmark):
    """E7: both members of g∩h converge to the same correct leader."""
    topo = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
    procs = make_processes(4)
    pattern = failure_free(pset(procs))

    def converge():
        ext = OmegaExtraction(topo, pattern, "g", "h", seed=3, max_depth=5)
        ext.run(4)
        history = []
        for p in (procs[1], procs[2]):
            history.append((p, ext.time, ext.query(p, ext.time)))
        assert check_omega(history, pattern, ext.scope) == []
        return history[0][2]

    leader = run_once(benchmark, converge)
    assert leader in (procs[1], procs[2])


def test_omega_extraction_failover(benchmark):
    topo = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
    procs = make_processes(4)
    pattern = crash_pattern(pset(procs), {procs[1]: 3})

    def converge():
        ext = OmegaExtraction(topo, pattern, "g", "h", seed=4, max_depth=5)
        ext.run(9)
        return ext.query(procs[2], ext.time)

    leader = run_once(benchmark, converge)
    assert leader == procs[2]
