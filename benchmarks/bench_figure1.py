"""Figure 1 — the worked example and its combinatorics, made executable.

Regenerates the figure's facts (groups, intersection graph, the cyclic
families f, f', f'' and their closed paths, the detector outputs under
``Correct = {p1, p4, p5}``) and benchmarks the cyclic-family enumeration
on scaled topologies (rings and hubs), printing |G| vs |F| vs |cpaths|.
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.detectors import GammaOracle, gamma_groups
from repro.groups import cpaths, hamiltonian_cycles, paper_figure1_topology
from repro.metrics import format_table
from repro.model import crash_pattern, make_processes, pset
from repro.workloads import hub_topology, ring_topology

ROWS = []


def teardown_module(module):
    print("\n\nFigure 1 and scaled-topology combinatorics:")
    print(format_table(("topology", "|G|", "|F|", "sum |cpaths|"), ROWS))


def test_figure1_families_and_paths(benchmark):
    def enumerate_families():
        topo = paper_figure1_topology()
        families = topo.cyclic_families()
        total_paths = sum(len(cpaths(f)) for f in families)
        return topo, families, total_paths

    topo, families, total_paths = run_once(benchmark, enumerate_families)
    names = {frozenset(g.name for g in f) for f in families}
    assert names == {
        frozenset({"g1", "g2", "g3"}),
        frozenset({"g1", "g3", "g4"}),
        frozenset({"g1", "g2", "g3", "g4"}),
    }
    # Each triangle has 1 cycle (6 rooted oriented paths); the 4-family
    # has a single hamiltonian cycle (8 paths).
    assert total_paths == 6 + 6 + 8
    ROWS.append(("figure-1", len(topo.groups), len(families), total_paths))


def test_figure1_detector_outputs_match_prose(benchmark):
    """§3's narrative: with Correct = {p1,p4,p5}, gamma at p1 stabilizes
    to {f'} and gamma(g1) = {g3, g4}."""

    def scenario():
        topo = paper_figure1_topology()
        procs = make_processes(5)
        pattern = crash_pattern(pset(procs), {procs[1]: 10, procs[2]: 10})
        gamma = GammaOracle(pattern, topo)
        early = gamma.query(procs[0], 0)
        late = gamma.query(procs[0], 10)
        partners = gamma_groups(late, topo.group("g1"))
        return early, late, partners

    early, late, partners = run_once(benchmark, scenario)
    assert len(early) == 3  # f, f', f'' all alive initially
    assert len(late) == 1  # only f' survives
    assert {g.name for g in partners} == {"g3", "g4"}


@pytest.mark.parametrize("k", [4, 6, 8, 10])
def test_ring_enumeration_scales(benchmark, k):
    def enumerate_ring():
        topo = ring_topology(k)
        families = topo.cyclic_families()
        return topo, families, sum(len(cpaths(f)) for f in families)

    topo, families, total = run_once(benchmark, enumerate_ring)
    assert len(families) == 1  # the ring itself, only
    assert total == 2 * k  # k rotations x 2 directions
    ROWS.append((f"ring-{k}", k, len(families), total))


@pytest.mark.parametrize("k", [3, 4, 5])
def test_hub_enumeration_counts_clique_cycles(benchmark, k):
    """k groups through one hub process: the intersection graph is K_k,
    so every subset of >= 3 groups is cyclic."""

    def enumerate_hub():
        topo = hub_topology(k)
        families = topo.cyclic_families()
        return topo, families, sum(len(cpaths(f)) for f in families)

    topo, families, total = run_once(benchmark, enumerate_hub)
    from math import comb

    expected = sum(comb(k, size) for size in range(3, k + 1))
    assert len(families) == expected
    ROWS.append((f"hub-{k}", k, len(families), total))
