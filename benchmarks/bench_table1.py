"""Table 1 — the weakest-failure-detector matrix, made executable.

Each row of the paper's Table 1 pairs a problem variation with its
(weakest) failure detector.  This harness regenerates the table as a
solvability matrix: for every row we run the matching protocol under the
matching detector and machine-check the row's properties; for the
sufficiency rows we additionally run a *weakened* detector and exhibit
the failure that makes the detector necessary.

Printed rows (compare with Table 1 of the paper):

====================  ========  =====================================
genuineness           order     detector / observed outcome
====================  ========  =====================================
non-genuine           global    Omega ∧ Sigma: orders, breaks Minimality
genuine               global    mu: all properties hold, any failures
genuine               strict    mu ∧ 1^{g∩h}: strict ordering holds
genuine               pairwise  (∧ Sigma_{g∩h}) ∧ (∧ Omega_g): F = ∅
strongly genuine      global    mu ∧ Omega_{g∩h}: isolation delivery
====================  ========  =====================================
"""

from __future__ import annotations

import pytest

from conftest import run_once
from repro.baselines import BroadcastMulticast
from repro.campaign import Campaign, case, run_campaign
from repro.core import MulticastSystem
from repro.groups import paper_figure1_topology
from repro.metrics import format_table
from repro.model import by_indices, crash_pattern, failure_free, make_processes, pset
from repro.props import (
    check_group_parallelism,
    check_integrity,
    check_minimality,
    check_ordering,
    check_pairwise_ordering,
    check_strict_ordering,
    check_termination,
    verdicts_ok,
)
from repro.workloads import ScenarioSpec, Send, chain_topology, run_scenario

PROCS = make_processes(5)
ALL = pset(PROCS)
SENDS = [
    Send(1, "g1", 0),
    Send(3, "g2", 0),
    Send(4, "g3", 1),
    Send(5, "g4", 1),
    Send(2, "g1", 2),
]
CRASH = {PROCS[1]: 4}  # p2 = g1∩g2 dies mid-run

ROWS = []


def teardown_module(module):
    print("\n\nTable 1 (executable rendering):")
    print(
        format_table(
            ("genuineness", "order", "detector", "outcome"), ROWS
        )
    )


def test_row_non_genuine_global_order(benchmark):
    """Row 1: without genuineness, Omega ∧ Sigma (a global atomic
    broadcast) suffices — and the Minimality audit fails by design."""

    def scenario():
        b = BroadcastMulticast(paper_figure1_topology(), failure_free(ALL))
        # Traffic touches only g1 and g2: p4 and p5 have no business here.
        for send in SENDS:
            if send.group in ("g1", "g2"):
                b.multicast(PROCS[send.sender - 1], send.group)
        b.run()
        return b.record

    record = run_once(benchmark, scenario)
    assert check_ordering(record) == []
    assert check_termination(record) == []
    violations = check_minimality(record)
    assert violations, "the broadcast baseline must break Minimality"
    ROWS.append(("x", "global", "Omega ∧ Sigma", "orders; not genuine"))


def test_row_genuine_global_order_mu(benchmark):
    """Row 4 (the paper's main result): genuine atomic multicast from mu,
    tolerating arbitrary failures."""

    spec = ScenarioSpec.capture(
        paper_figure1_topology(), crash_pattern(ALL, CRASH), SENDS, seed=3
    )

    def scenario():
        return run_scenario(spec).record

    record = run_once(benchmark, scenario)
    assert check_integrity(record) == []
    assert check_ordering(record) == []
    assert check_termination(record) == []
    assert check_minimality(record) == []
    ROWS.append(("ok", "global", "mu", "all properties hold under crashes"))


def test_row_genuine_strict_order(benchmark):
    """Row 5: strict (real-time) order needs mu ∧ (∧ 1^{g∩h})."""

    spec = ScenarioSpec.capture(
        paper_figure1_topology(),
        crash_pattern(ALL, CRASH),
        SENDS,
        seed=4,
        variant="strict",
    )

    def scenario():
        return run_scenario(spec).record

    record = run_once(benchmark, scenario)
    assert check_strict_ordering(record) == []
    assert check_termination(record) == []
    ROWS.append(
        ("ok", "strict", "mu ∧ 1^{g∩h}", "real-time order holds")
    )


def test_row_pairwise_order_needs_no_gamma(benchmark):
    """Row 6: pairwise ordering is computably F = ∅ — on an acyclic
    topology (gamma trivially silent) the remaining conjuncts suffice."""

    spec = ScenarioSpec.capture(
        chain_topology(3),
        failure_free(pset(make_processes(4))),
        [Send(1, "g1", 0), Send(2, "g2", 0), Send(4, "g3", 1)],
        seed=5,
    )

    def scenario():
        return run_scenario(spec).record

    record = run_once(benchmark, scenario)
    assert check_pairwise_ordering(record) == []
    assert check_termination(record) == []
    ROWS.append(
        (
            "ok",
            "pairwise",
            "(∧ Sigma_{g∩h}) ∧ (∧ Omega_g)",
            "no gamma needed (F = ∅)",
        )
    )


def test_row_strongly_genuine_isolation(benchmark):
    """Row 7: with F = ∅ and intersection-hosted logs (Omega_{g∩h}),
    a group delivers in isolation (group parallelism)."""

    def scenario():
        topo = chain_topology(2)
        procs = make_processes(3)
        system = MulticastSystem(
            topo, failure_free(pset(procs)), isolation=True, seed=6
        )
        m = system.multicast(procs[0], "g1")
        participation = by_indices(1, 2)
        for _ in range(60):
            system.tick(participation=participation)
        return system.record, m, participation

    record, message, participation = run_once(benchmark, scenario)
    assert check_group_parallelism(record, message, participation) == []
    ROWS.append(
        (
            "strong",
            "global",
            "mu ∧ Omega_{g∩h}",
            "delivers in isolation (F = ∅)",
        )
    )


def test_necessity_witness_gamma(benchmark):
    """Weakened gamma (never completes) blocks termination: the waiters
    of line 18/32 never learn that the cyclic family died."""

    # p2 = g1∩g2 dies *before* the g1 traffic: the commit wait of
    # line 18 can only be released by gamma's completeness.
    spec = ScenarioSpec.capture(
        paper_figure1_topology(),
        crash_pattern(ALL, {PROCS[1]: 1}),
        [Send(1, "g1", 5)],
        seed=7,
        gamma_lag=10_000,  # effectively: completeness never fires
        max_rounds=120,
    )

    def scenario():
        return run_scenario(spec).record

    record = run_once(benchmark, scenario)
    assert check_termination(record) != [], (
        "without gamma's completeness the run must block"
    )
    ROWS.append(
        ("ok", "global", "mu minus gamma", "BLOCKS (necessity witness)")
    )


def test_necessity_witness_sigma(benchmark):
    """Without quorums (participants below the Sigma sample) nothing can
    be ordered: the quorum component is load-bearing."""

    def scenario():
        topo = chain_topology(2)
        procs = make_processes(3)
        system = MulticastSystem(topo, failure_free(pset(procs)), seed=8)
        m = system.multicast(procs[0], "g1")
        for _ in range(40):
            system.tick(participation=by_indices(1))  # no quorum
        return system.record, m

    record, message = run_once(benchmark, scenario)
    assert record.delivered_by(message) == frozenset()
    ROWS.append(
        ("ok", "global", "mu minus Sigma", "BLOCKS (necessity witness)")
    )


def test_matrix_rows_as_campaign_sweep(benchmark):
    """The mu rows of the matrix, swept across seeds via the campaign API.

    What each row above checks once, the campaign re-checks as a grid:
    the Figure 1 crash scenario under four seeds and both ordering
    variants, every row verdict-checked in batch.  This is the sweep
    style bench_campaign.py measures at scale.
    """
    campaign = Campaign(
        name="table1-mu-row",
        cases=(
            case(
                "figure1-crash",
                paper_figure1_topology(),
                crashes=tuple((p.index, t) for p, t in CRASH.items()),
                sends=tuple(SENDS),
            ),
        ),
        seeds=(3, 4, 5, 6),
        variants=("vanilla", "strict"),
    )

    report = run_once(benchmark, lambda: run_campaign(campaign, workers=1))
    summary = report.summary
    assert summary["scenarios"] == 8
    assert summary["ok"] == 8 and summary["failed"] == 0
    assert summary["delivered"] == 8 and summary["truncated"] == 0
    assert sum(summary["violations"].values()) == 0
    for row in report.ok_rows():
        assert verdicts_ok(row["verdicts"]), row["name"]
    ROWS.append(
        (
            "ok",
            "global+strict",
            "mu (campaign sweep)",
            "8 seeded scenarios, all properties hold",
        )
    )
