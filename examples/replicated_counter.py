#!/usr/bin/env python3
"""Linearizable replicated objects over *strict* atomic multicast (§6.1).

The paper's §6.1 observes that vanilla atomic multicast is too weak for
state-machine replication: a command submitted after another completed
could still be ordered before it.  The strict variation (whose weakest
detector strengthens mu with the indicators 1^{g∩h}) closes the gap.

This example replicates counters over two overlapping replica groups and
shows (i) convergence, (ii) real-time order preservation across sequential
clients, and (iii) a replica crash being absorbed.
"""

from repro import crash_pattern, make_processes, pset, topology_from_indices
from repro.core import MulticastSystem
from repro.core.smr import ReplicatedStateMachine
from repro.props import check_strict_ordering


def main() -> None:
    topology = topology_from_indices(
        4,
        {
            "tickets": [1, 2, 3],   # replica group for ticket counters
            "billing": [2, 3, 4],   # replica group for billing counters
        },
    )
    processes = make_processes(4)
    p1, p2, p3, p4 = processes

    # Replica p3 (in both groups) crashes mid-run.
    pattern = crash_pattern(pset(processes), {p3: 12})
    system = MulticastSystem(topology, pattern, variant="strict", seed=3)
    smr = ReplicatedStateMachine(system)

    print("Client 1 books two tickets...")
    smr.submit(p1, "tickets", ("incr", "sold"))
    smr.submit(p1, "tickets", ("incr", "sold"))
    smr.run()
    print(f"  tickets sold at p2: {smr.read(p2, 'sold')}")

    print("Client 2 bills — strictly after the bookings completed...")
    bill = smr.submit(p4, "billing", ("put", "invoice", "2-tickets"))
    smr.run()
    print(f"  invoice at p4: {smr.read(p4, 'invoice')}")
    print(f"  output computed by replica p2: {smr.output_of(p2, bill)}")

    print("A cross-group audit command after the crash of p3...")
    smr.submit(p2, "tickets", ("incr", "audits"))
    smr.run()

    for p in processes:
        status = "CRASHED" if pattern.is_faulty(p) else "ok"
        print(f"  {p.name} [{status}]: {smr.state_at(p)}")

    violations = check_strict_ordering(system.record)
    print(f"Strict (real-time) ordering machine-checked: "
          f"{'OK' if not violations else violations}")

    # Replicas of the same group converge on their shared keys.
    assert smr.read(p1, "sold") == smr.read(p2, "sold") == 2
    assert smr.read(p2, "invoice") == smr.read(p4, "invoice")
    print("Replica convergence: OK")


if __name__ == "__main__":
    main()
