#!/usr/bin/env python3
"""A sharded key-value store replicated with genuine atomic multicast.

This is the paper's motivating application shape (partially replicated /
sharded data stores [17, 34, 38]): keys are spread over three shards, each
shard is a destination group, and *cross-shard transactions* are multicast
to the union of the shards they touch.  Atomic multicast's global order
makes every replica apply conflicting transactions in the same order —
without any shard learning about traffic it does not serve (genuineness).

Shard layout (6 processes)::

    shard_ab  = {p1, p2}        keys a*, b*
    shard_cd  = {p3, p4}        keys c*, d*
    shard_ef  = {p5, p6}        keys e*, f*
    cross groups: shard_ab ∪ shard_cd and shard_cd ∪ shard_ef

The run includes a replica crash (p4) to show fault tolerance.
"""

from repro import (
    AtomicMulticast,
    MulticastSystem,
    assert_run_ok,
    crash_pattern,
    make_processes,
    pset,
    topology_from_indices,
)


def apply_transaction(store, payload):
    """A deterministic state machine: 'set k v' | 'incr k' operations."""
    for op in payload.split(";"):
        parts = op.split()
        if parts[0] == "set":
            store[parts[1]] = int(parts[2])
        elif parts[0] == "incr":
            store[parts[1]] = store.get(parts[1], 0) + 1
    return store


def main() -> None:
    topology = topology_from_indices(
        6,
        {
            "shard_ab": [1, 2],
            "shard_cd": [3, 4],
            "shard_ef": [5, 6],
            "cross_ab_cd": [1, 2, 3, 4],
            "cross_cd_ef": [3, 4, 5, 6],
        },
    )
    processes = make_processes(6)
    p1, p2, p3, p4, p5, p6 = processes

    # Replica p4 of shard_cd crashes mid-run.
    pattern = crash_pattern(pset(processes), {p4: 6})
    system = MulticastSystem(topology, pattern, seed=13)
    amc = AtomicMulticast(system)

    print("Submitting transactions (single- and cross-shard)...")
    amc.multicast(p1, "shard_ab", payload="set a 5")
    amc.multicast(p3, "shard_cd", payload="set c 10")
    amc.multicast(p2, "cross_ab_cd", payload="incr a;incr c")
    amc.multicast(p5, "shard_ef", payload="set e 1")
    amc.multicast(p4, "cross_cd_ef", payload="incr c;incr e")
    amc.multicast(p1, "shard_ab", payload="incr a")
    rounds = amc.run()
    print(f"Quiescent after {rounds} rounds (p4 crashed at t=6).\n")

    # Replay each replica's delivery sequence through the state machine.
    print("Replica states after applying the delivered sequence:")
    for p in processes:
        store = {}
        for message in amc.delivered_at(p):
            apply_transaction(store, message.payload)
        status = "CRASHED" if pattern.is_faulty(p) else "ok"
        print(f"  {p.name} [{status}]: {store}")
    print()

    # Replicas of the same shard must agree on their shard's keys.
    def shard_view(p, keys):
        store = {}
        for message in amc.delivered_at(p):
            apply_transaction(store, message.payload)
        return {k: v for k, v in store.items() if k[0] in keys}

    assert shard_view(p1, "ab") == shard_view(p2, "ab")
    assert shard_view(p5, "ef") == shard_view(p6, "ef")
    print("Shard replicas converged: OK")

    # The ef-shard never worked for ab-only traffic and vice versa.
    assert_run_ok(system.record)
    print("Properties machine-checked (incl. genuineness): OK")


if __name__ == "__main__":
    main()
