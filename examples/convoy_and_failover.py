#!/usr/bin/env python3
"""Contention, the convoy effect and crash failover (§6.2 and Fig. 1).

Two demonstrations:

1. **Convoy effect** — in a chain of intersecting groups, a message to
   the first group cannot be delivered until the messages contending in
   each intersection are ordered; its latency grows with the contention
   chain length even though its own group is idle ([1], §6.2's
   motivation for strong genuineness).

2. **Failover** — on the Figure 1 topology we crash p2 = g1∩g2 and watch
   the gamma detector unblock the survivors: the cyclic families through
   the dead edge are excluded and delivery proceeds without it.
"""

from repro import (
    AtomicMulticast,
    MulticastSystem,
    assert_run_ok,
    crash_pattern,
    failure_free,
    make_processes,
    paper_figure1_topology,
    pset,
)
from repro.metrics import format_table, latency_of
from repro.workloads import chain_topology


def convoy_demo() -> None:
    print("=== Convoy effect: latency vs contention chain length ===")
    rows = []
    for k in (2, 3, 4, 5):
        topology = chain_topology(k)
        processes = make_processes(k + 1)
        system = MulticastSystem(
            topology, failure_free(pset(processes)), seed=5
        )
        amc = AtomicMulticast(system)
        # Contention all along the chain, then the probe to g1.
        for i in range(k - 1, 0, -1):
            amc.multicast(processes[i], f"g{i + 1}")
        probe = amc.multicast(processes[0], "g1")
        amc.run()
        rows.append((k, latency_of(system.record, probe)))
        assert_run_ok(system.record)
    print(format_table(("chain length", "probe latency (rounds)"), rows))
    print("  -> the probe's latency tracks the chain it never asked for.\n")


def failover_demo() -> None:
    print("=== Failover on Figure 1: crash p2 = g1∩g2 ===")
    topology = paper_figure1_topology()
    processes = make_processes(5)
    p1, p2, p3, p4, p5 = processes
    pattern = crash_pattern(pset(processes), {p2: 3})
    system = MulticastSystem(topology, pattern, seed=9)
    amc = AtomicMulticast(system)

    m1 = amc.multicast(p1, "g1", payload="pre-crash to g1")
    m2 = amc.multicast(p3, "g2", payload="pre-crash to g2")
    rounds = amc.run()
    m3 = amc.multicast(p1, "g3", payload="post-crash to g3")
    rounds += amc.run()

    gamma_output = system.mu.gamma.query(p1, system.time)
    print(f"  quiescent after {rounds} rounds")
    print(f"  cyclic families still alive at p1: {len(gamma_output)} "
          f"(of {len(topology.cyclic_families())})")
    for message in (m1, m2, m3):
        who = sorted(q.name for q in system.record.delivered_by(message))
        print(f"  {message.payload!r} delivered by {who}")
    assert_run_ok(system.record)
    print("  properties machine-checked: OK")


def main() -> None:
    convoy_demo()
    failover_demo()


if __name__ == "__main__":
    main()
