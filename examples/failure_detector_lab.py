#!/usr/bin/env python3
"""Failure-detector laboratory: the necessity side of the paper.

The weakest-failure-detector result has two halves.  Sufficiency
(Algorithm 1) is what the other examples run.  This lab demonstrates the
*necessity* half: given atomic multicast as a black box, the paper's
Algorithms 2-4 extract the components of mu from it —

* Algorithm 2 squeezes a quorum detector ``Sigma_{g∩h}`` out of which
  participant subsets manage to deliver;
* Algorithm 3 squeezes the cyclicity detector ``gamma`` out of chains of
  multicasts around each cyclic family;
* Algorithm 4 squeezes the indicator ``1^{g∩h}`` out of a *strict*
  multicast box.

Each emulated history is validated against the exact same property
checkers as the ideal oracles.
"""

from repro import by_indices, crash_pattern, make_processes, pset
from repro.detectors import check_gamma, check_indicator, check_sigma
from repro.emulation import GammaExtraction, IndicatorExtraction, SigmaExtraction
from repro.groups import topology_from_indices
from repro.workloads import chain_topology, ring_topology


def sigma_lab() -> None:
    print("=== Algorithm 2: extracting Sigma_{g∩h} ===")
    topology = topology_from_indices(4, {"g": [1, 2, 3], "h": [2, 3, 4]})
    processes = make_processes(4)
    pattern = crash_pattern(pset(processes), {processes[1]: 6})
    extraction = SigmaExtraction(topology, pattern, ["g", "h"], seed=1)
    history = []
    for r in range(50):
        extraction.tick()
        if r % 5 == 0:
            for p in sorted(extraction.scope):
                if pattern.is_alive(p, extraction.time):
                    sample = extraction.query(p, extraction.time)
                    history.append((p, extraction.time, sample))
    p3 = processes[2]
    print(f"  scope g∩h = {sorted(q.name for q in extraction.scope)}")
    print(f"  p2 crashes at t=6; final quorum at p3: "
          f"{sorted(q.name for q in extraction.query(p3, extraction.time))}")
    violations = check_sigma(history, pattern, extraction.scope)
    print(f"  Intersection + Liveness validated: "
          f"{'OK' if not violations else violations}\n")


def gamma_lab() -> None:
    print("=== Algorithm 3: extracting gamma ===")
    topology = ring_topology(4)
    processes = make_processes(4)
    pattern = crash_pattern(pset(processes), {processes[2]: 4})
    extraction = GammaExtraction(topology, pattern, seed=2)
    history = []
    for _ in range(90):
        extraction.tick()
        for p in processes:
            if pattern.is_alive(p, extraction.time):
                history.append(
                    (p, extraction.time, extraction.query(p, extraction.time))
                )
    print("  4-group ring; p3 (= g2∩g3) crashes at t=4")
    for p in processes:
        if pattern.is_correct(p):
            out = extraction.query(p, extraction.time)
            print(f"  {p.name} final output: "
                  f"{len(out)} families (0 = the ring family was excluded)")
    violations = check_gamma(history, pattern, topology)
    print(f"  Accuracy + Completeness validated: "
          f"{'OK' if not violations else violations}\n")


def indicator_lab() -> None:
    print("=== Algorithm 4: extracting 1^{g∩h} from strict multicast ===")
    topology = chain_topology(2)
    processes = make_processes(3)
    pattern = crash_pattern(pset(processes), {processes[1]: 6})
    extraction = IndicatorExtraction(topology, pattern, "g1", "g2", seed=3)
    history = []
    for _ in range(70):
        extraction.tick()
        for p in processes:
            if pattern.is_alive(p, extraction.time):
                history.append(
                    (p, extraction.time, extraction.query(p, extraction.time))
                )
    print("  g1 = {p1,p2}, g2 = {p2,p3}; the watched set g1∩g2 = {p2}")
    for p in processes:
        print(f"  {p.name} indicator: {extraction.query(p, extraction.time)}")
    violations = check_indicator(history, pattern, extraction.watched)
    print(f"  Accuracy + Completeness validated: "
          f"{'OK' if not violations else violations}")


def main() -> None:
    sigma_lab()
    gamma_lab()
    indicator_lab()


if __name__ == "__main__":
    main()
