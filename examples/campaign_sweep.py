#!/usr/bin/env python3
"""Campaign sweep: run a grid of seeded scenarios through the campaign API.

A :class:`repro.campaign.Campaign` is a declarative grid: a handful of
named cases (topology + failure pattern + send script) crossed with
seeds and protocol variants.  ``Campaign.specs()`` expands the grid into
frozen, hashable :class:`repro.workloads.ScenarioSpec` values;
``run_campaign`` executes them — serially or on a process pool — and
aggregates one JSON-ready row per scenario, property verdicts included.

The aggregated artifacts (``manifest.json`` + ``results.jsonl``) are
byte-stable: the same campaign serializes identically no matter how many
workers ran it, so sweep outputs diff cleanly across machines.
"""

import sys
import tempfile

from repro import crash_pattern, make_processes, paper_figure1_topology, pset
from repro.campaign import Campaign, case, run_campaign
from repro.metrics import sweep_table
from repro.workloads import Send, ring_topology


def main() -> None:
    figure1 = paper_figure1_topology()
    procs = make_processes(5)
    sends = (
        Send(1, "g1", 0),
        Send(3, "g2", 0),
        Send(4, "g3", 1),
        Send(2, "g1", 2),
    )

    campaign = Campaign(
        name="quickstart-sweep",
        cases=(
            # Figure 1, failure-free.
            case("figure1", figure1, sends=sends),
            # Figure 1 with p2 = g1∩g2 crashing at round 4.
            case("figure1-crash", figure1, sends=sends, crashes=((2, 4),)),
            # A 4-ring: one big cyclic family.
            case(
                "ring4",
                ring_topology(4),
                sends=(Send(1, "g1", 0), Send(3, "g3", 0), Send(2, "g2", 1)),
            ),
        ),
        seeds=(0, 1, 2),
        variants=("vanilla", "strict"),
    )

    specs = campaign.specs()
    print(f"Campaign '{campaign.name}': {len(specs)} scenarios "
          f"({len(campaign.cases)} cases x {len(campaign.seeds)} seeds "
          f"x {len(campaign.variants)} variants)\n")

    # workers=2 fans out over a process pool; workers=1 runs in-process.
    # Either way the aggregated rows are byte-identical.
    report = run_campaign(campaign, workers=2)

    print(sweep_table(report.rows))
    summary = report.summary
    print(f"\n{summary['ok']}/{summary['scenarios']} scenarios ok, "
          f"{summary['delivered']} delivered everywhere, "
          f"{sum(summary['violations'].values())} property violations, "
          f"mean rounds {summary['mean_rounds']}")

    out = tempfile.mkdtemp(prefix="campaign-")
    paths = report.write(out)
    print(f"\nArtifacts: {paths['manifest']}\n           {paths['results']}")

    if report.failed_rows() or sum(summary["violations"].values()):
        sys.exit(1)


if __name__ == "__main__":
    main()
