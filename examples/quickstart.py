#!/usr/bin/env python3
"""Quickstart: genuine atomic multicast on the paper's Figure 1 topology.

Five processes, four overlapping destination groups::

    g1 = {p1, p2}   g2 = {p2, p3}   g3 = {p1, p3, p4}   g4 = {p1, p4, p5}

We multicast a handful of messages — concurrently, from different
senders — run the system to quiescence, and show that every process
delivered exactly the messages addressed to it, in a globally consistent
order, while processes with no traffic took zero steps (genuineness).
"""

from repro import (
    AtomicMulticast,
    MulticastSystem,
    assert_run_ok,
    failure_free,
    make_processes,
    paper_figure1_topology,
    pset,
)

def main() -> None:
    topology = paper_figure1_topology()
    processes = make_processes(5)
    p1, p2, p3, p4, p5 = processes

    print("Topology:")
    for group in topology.groups:
        print(f"  {group}")
    print()

    # A failure-free run with the candidate detector mu.
    system = MulticastSystem(topology, failure_free(pset(processes)), seed=7)
    amc = AtomicMulticast(system)

    sent = [
        amc.multicast(p1, "g1", payload="transfer:acct-a->acct-b"),
        amc.multicast(p3, "g2", payload="read:acct-b"),
        amc.multicast(p4, "g3", payload="rebalance:shard-3"),
        amc.multicast(p2, "g1", payload="transfer:acct-b->acct-c"),
    ]
    rounds = amc.run()
    print(f"Run reached quiescence after {rounds} rounds.\n")

    print("Delivery order per process:")
    for p in processes:
        delivered = [str(m.payload) for m in amc.delivered_at(p)]
        print(f"  {p.name}: {delivered or '(nothing addressed here)'}")
    print()

    print("Steps per process (genuineness: p5 is idle):")
    for p in processes:
        print(f"  {p.name}: {system.record.steps_of(p)}")
    print()

    # Machine-check Integrity, Termination, Ordering and Minimality.
    assert_run_ok(system.record)
    print("All properties of §2.2 + Minimality machine-checked: OK")


if __name__ == "__main__":
    main()
