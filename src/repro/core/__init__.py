"""The paper's contribution: Algorithm 1 and its variants.

* :class:`MulticastSystem` — the group-sequential engine (§4.3).
* :class:`AtomicMulticast` — vanilla atomic multicast via the
  Proposition 1 reduction (§4.1).
* ``variant="strict"`` — the real-time-ordered variation (§6.1).
* :class:`ReplicatedStateMachine` — linearizable SMR over strict
  multicast (§6.1's motivating application).
* :class:`SpanningTreeMulticast` — the §7 failure-free strongly genuine
  sketch (spanning-tree delivery orders).
"""

from repro.core.algorithm1 import Algorithm1Process, VARIANTS
from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.core.phases import COMMIT, DELIVER, PENDING, STABLE, START, Phase
from repro.core.smr import ReplicatedStateMachine, kv_apply
from repro.core.spanning_tree import SpanningTreeMulticast, spanning_tree_order

__all__ = [
    "Algorithm1Process",
    "VARIANTS",
    "MulticastSystem",
    "AtomicMulticast",
    "COMMIT",
    "DELIVER",
    "PENDING",
    "STABLE",
    "START",
    "Phase",
    "ReplicatedStateMachine",
    "kv_apply",
    "SpanningTreeMulticast",
    "spanning_tree_order",
]
