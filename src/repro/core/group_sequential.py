"""Vanilla atomic multicast via the Proposition 1 reduction (§4.1).

Group-sequential atomic multicast requires that any two messages addressed
to the same group are ``≺``-ordered (the sender of the later one delivered
the earlier one first).  Proposition 1 reduces vanilla atomic multicast to
this variation using, per group ``g``, a shared list ``L_g`` maintained by
the members of ``g``:

* to multicast ``m``, add it to ``L_g``;
* every member pushes the *first locally-undelivered* entry of ``L_g``
  into the group-sequential instance ``A`` (helping — so a crashed sender
  cannot strand its message);
* the first ``A``-delivery of an entry is the vanilla delivery.

Pushing only the first undelivered entry makes the inputs of ``A``
group-sequential: whoever first pushes ``L_g[i+1]`` has delivered
``L_g[i]``.  ``A.multicast`` (Algorithm 1's line 7 append) is idempotent,
so concurrent helpers are harmless.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.core.algorithm1 import Algorithm1Process
from repro.core.engine import MulticastSystem
from repro.core.phases import DELIVER
from repro.groups.topology import Group
from repro.model.errors import SimulationError
from repro.model.messages import MessageId, MulticastMessage
from repro.model.processes import ProcessId
from repro.objects.log import Log
from repro.objects.space import LogHandle


class AtomicMulticast:
    """The vanilla (not group-sequential) atomic-multicast interface.

    Wraps a :class:`MulticastSystem` with the Proposition 1 reduction.
    Clients call :meth:`multicast` at any time, with any concurrency;
    running the system's rounds then drives every multicast message to
    delivery at the correct members of its destination group.
    """

    def __init__(self, system: MulticastSystem) -> None:
        self.system = system
        self._lists: Dict[Group, LogHandle] = {}
        self._pushed: Set[Tuple[ProcessId, MessageId]] = set()
        system.add_component(self._reduction_actions)

    # -- The shared lists L_g ----------------------------------------------------

    def _list_of(self, g: Group) -> LogHandle:
        handle = self._lists.get(g)
        if handle is None:
            handle = LogHandle(
                Log(f"L_{g.name}"),
                g.members,
                self.system._charge,
                on_write=self.system._on_object_write,
            )
            self._lists[g] = handle
        return handle

    # -- Client interface ----------------------------------------------------------

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Multicast ``payload`` from ``src`` to ``group`` (vanilla)."""
        if not self.system.is_alive(src):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.system.topology.group(group)
        if src not in g:
            raise SimulationError(
                f"closed model: {src.name} does not belong to {group}"
            )
        message = self.system.factory.multicast(src, g.members, payload)
        self.system.record.note_multicast(self.system.time, src, message)
        self._list_of(g).append(src, message)
        return message

    # -- The helping component, ticked by the engine -------------------------------

    def _reduction_actions(self, pid: ProcessId, t: int) -> int:
        """Push the first locally-undelivered entry of each ``L_g``."""
        fired = 0
        algo: Algorithm1Process = self.system.processes[pid]
        for g in algo.my_groups:
            handle = self._lists.get(g)
            if handle is None:
                continue
            for message in handle.messages():
                if algo.phase.get(message.mid) == DELIVER:
                    continue  # move on to the next entry of L_g
                key = (pid, message.mid)
                if key not in self._pushed:
                    algo.multicast(message)
                    self._pushed.add(key)
                    fired += 1
                break  # wait for this entry before pushing the next
        return fired

    # -- Convenience ------------------------------------------------------------------

    def run(self, **kwargs: object) -> int:
        return self.system.run(**kwargs)

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.system.delivered_at(p)
