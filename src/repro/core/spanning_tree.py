"""Strongly genuine delivery orders from spanning trees (§7).

The paper's closing discussion sketches how strongly genuine atomic
multicast is failure-free solvable even when ``F ≠ ∅``: fix a spanning
tree ``T`` of the intersection graph (one per connected component) and
deliver each message across its intersections following the tree order
``<_T``; a fault-tolerant version would use
``mu ∧ (∧ Omega_{g∩h}) ∧ (∧_{g,h∈F} 1^{g∩h})`` — conjectured weakest.

This module implements the failure-free sketch as an executable protocol:

* :func:`spanning_tree_order` — a deterministic spanning forest of the
  intersection graph with the induced total pre-order on groups;
* :class:`SpanningTreeMulticast` — per message, timestamps are assigned
  per group following the tree order (parent intersections first), and
  delivery follows the resulting lexicographic order.  Each group
  progresses as soon as its tree ancestors have stamped — in particular
  disjoint subtrees progress in isolation, the strong-genuineness gain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.groups.topology import Group, GroupTopology
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord


def spanning_tree_order(
    topology: GroupTopology,
) -> Tuple[Dict[Group, int], Dict[Group, Optional[Group]]]:
    """A deterministic spanning forest of the intersection graph.

    Returns ``(rank, parent)``: a BFS numbering per connected component
    (roots first — the order ``<_T``) and each group's tree parent.
    """
    adjacency = topology.intersection_graph()
    rank: Dict[Group, int] = {}
    parent: Dict[Group, Optional[Group]] = {}
    counter = 0
    for root in topology.groups:
        if root in rank:
            continue
        parent[root] = None
        queue = [root]
        while queue:
            current = queue.pop(0)
            if current in rank:
                continue
            rank[current] = counter
            counter += 1
            for neighbor in sorted(adjacency[current]):
                if neighbor not in rank and neighbor not in queue:
                    parent[neighbor] = current
                    queue.append(neighbor)
    return rank, parent


@dataclass
class _Pending:
    message: MulticastMessage
    group: Group
    stamp: Optional[Tuple[int, int]] = None


class SpanningTreeMulticast:
    """Failure-free strongly genuine atomic multicast (§7 sketch).

    Each group ``g`` owns a logical clock; a message to ``g`` is stamped
    ``(clock_g, rank_T(g))`` once every message to a ``<_T``-smaller
    *intersecting* group already in flight has been stamped — delivery
    then follows stamps.  Because groups in different subtrees never wait
    on each other, a group whose subtree is idle delivers in isolation.
    """

    def __init__(
        self, topology: GroupTopology, pattern: FailurePattern, seed: int = 0
    ) -> None:
        self.topology = topology
        self.pattern = pattern
        self.rank, self.parent = spanning_tree_order(topology)
        self.record = RunRecord(topology.processes, pattern)
        self.factory = MessageFactory()
        self.time: Time = 0
        self._clock = 0
        self._pending: List[_Pending] = []
        self._delivered: Set[Tuple[ProcessId, object]] = set()

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        if not self.pattern.is_alive(src, self.time):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(f"{src.name} does not belong to {group}")
        message = self.factory.multicast(src, g.members, payload)
        self.record.note_multicast(self.time, src, message)
        self._pending.append(_Pending(message, g))
        return message

    def _may_stamp(self, pending: _Pending) -> bool:
        """Tree discipline: wait for unstamped messages at intersecting
        groups of strictly smaller tree rank."""
        for other in self._pending:
            if other is pending or other.stamp is not None:
                continue
            if not other.group.intersects(pending.group):
                continue
            if self.rank[other.group] < self.rank[pending.group]:
                return False
        return True

    def tick(self) -> int:
        self.time += 1
        fired = 0
        for pending in sorted(
            self._pending, key=lambda item: self.rank[item.group]
        ):
            if pending.stamp is None and self._may_stamp(pending):
                self._clock += 1
                pending.stamp = (self._clock, self.rank[pending.group])
                for p in pending.group.members:
                    if self.pattern.is_alive(p, self.time):
                        self.record.note_step(
                            self.time, p, received="tree.stamp"
                        )
                fired += 1
        for pending in sorted(
            (item for item in self._pending if item.stamp is not None),
            key=lambda item: item.stamp,
        ):
            if not self._stamp_stable(pending):
                continue
            for p in sorted(pending.message.dst):
                key = (p, pending.message.mid)
                if key in self._delivered:
                    continue
                if not self.pattern.is_alive(p, self.time):
                    continue
                self._delivered.add(key)
                self.record.note_delivery(self.time, p, pending.message)
                self.record.note_step(self.time, p, received="tree.deliver")
                fired += 1
        return fired

    def _stamp_stable(self, pending: _Pending) -> bool:
        """Deliverable once no intersecting message can stamp lower."""
        for other in self._pending:
            if other is pending:
                continue
            if not other.group.intersects(pending.group):
                continue
            if other.stamp is None:
                return False
            if other.stamp < pending.stamp:
                delivered = all(
                    (p, other.message.mid) in self._delivered
                    for p in other.message.dst
                    if self.pattern.is_alive(p, self.time)
                )
                if not delivered:
                    return False
        return True

    def run(self, max_rounds: int = 200) -> int:
        rounds = 0
        idle = 0
        while rounds < max_rounds and idle < 2:
            if self.tick() == 0:
                idle += 1
            else:
                idle = 0
            rounds += 1
        return rounds

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        return self.record.local_order(p)
