"""The round-based execution engine for Algorithm 1 and its variants.

The engine realizes the asynchronous model at the granularity the paper's
correctness argument uses: shared-object operations are linearizable, so a
run is a sequence of atomic actions (§4.4 "we reason directly upon the
linearization").  Each round advances the global clock by one, then lets
every live process scan its enabled actions, in a seeded random order — an
adversarially shuffled, yet reproducible, schedule.

Crash injection follows the run's :class:`repro.model.FailurePattern`:
from its crash time on, a process takes no further step.  *Participation
sets* restrict which processes are scheduled at all; they express the
P-fair runs of §6.2 (group parallelism) and the emulation constructions of
§5 where entire group remainders take no step.

Scheduling
==========

The seed engine re-scanned every scheduled process each round, paying
O(processes × rounds) even when almost everyone was blocked on a quorum
or a ``gamma`` wait.  The engine is now *event-driven*: a process whose
scan fired nothing is parked until an event that can change its wait
condition —

* a write to a shared object it can read (its group logs, the
  intersection logs of its groups, its reduction lists ``L_g``), via a
  static *wake index* mapping object names to reader sets;
* a change of the participation/responder sets (quorum availability);
* a detector transition or a crash — conservatively covered by falling
  back to a full scan while ``time <= settle_horizon()``, the window in
  which gamma, the indicators and Omega may still move and processes may
  still crash.

The seeded random schedule is *unchanged*: the full eligible order is
shuffled exactly as before and parked processes are merely skipped, so
the RNG stream — and therefore the :class:`repro.model.RunRecord` trace —
is byte-identical to the scan-everything engine (a skipped process would
have fired nothing and recorded nothing).  ``scheduling="scan"`` restores
the seed behaviour for differential testing; the per-round counters of
both modes land in :attr:`MulticastSystem.tracer`.

Caveat for auxiliary :data:`Component` sources: a component is re-run
only while its process is awake.  Components whose enabledness is driven
by shared-object state (like the Proposition 1 reduction) wake up with
their process; a component driven by state the wake index cannot see
must call :meth:`MulticastSystem.wake_all`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.algorithm1 import Algorithm1Process
from repro.detectors.indicator import IndicatorOracle
from repro.detectors.mu import Mu
from repro.groups.topology import Group, GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId, ProcessSet
from repro.model.runs import RunRecord
from repro.objects.space import ObjectSpace
from repro.runtime import SCHEDULING_MODES, Scheduler, SharedObjectActor

#: An auxiliary per-process action source (e.g. the Prop. 1 reduction):
#: called as ``component(pid, t)`` and returns the number of actions fired.
Component = Callable[[ProcessId, Time], int]

__all__ = ["Component", "MulticastSystem", "SCHEDULING_MODES"]


class MulticastSystem:
    """One deployment of Algorithm 1 over a topology and failure pattern.

    The ``multicast`` method is the *group-sequential* interface (the
    caller promises the §4.1 discipline: per group, a new message is
    multicast only by a sender that delivered the previous one).  The
    vanilla interface is :class:`repro.core.group_sequential.AtomicMulticast`.

    Attributes:
        topology: destination groups.
        pattern: the failure pattern of this run.
        record: the observable trace, consumed by the property checkers.
        tracer: per-round scheduling/stall counters (JSONL-exportable).
        scheduling: ``"event"`` (wake-index driven, default) or
            ``"scan"`` (the seed engine's scan-everything loop).
    """

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        variant: str = "vanilla",
        gamma_lag: Time = 0,
        indicator_lag: Time = 0,
        omega_stabilization: Optional[Time] = None,
        seed: int = 0,
        isolation: bool = False,
        scheduling: str = "event",
        injector: Optional[Any] = None,
        gamma_scope: str = "group",
    ) -> None:
        if pattern.processes != topology.processes:
            raise SimulationError("pattern and topology disagree on processes")
        if scheduling not in SCHEDULING_MODES:
            raise SimulationError(f"unknown scheduling mode {scheduling!r}")
        self.topology = topology
        self.pattern = pattern
        self.variant = variant
        #: Optional :class:`repro.faults.FaultInjector`.  The engine has
        #: no message buffer (shared objects stand in for the network),
        #: so only the detector-noise and churn slices of a plan apply
        #: here: ``gamma_delay`` widens the gamma lag, ``omega_late``
        #: postpones leader stabilization, ``sigma_noise`` pins the
        #: quorum requirement to the full scope for the window, ``churn``
        #: filters the scheduler.  ``None`` keeps every code path
        #: byte-identical to the fault-free engine.
        self.injector = injector
        if injector is not None:
            gamma_lag = gamma_lag + injector.extra_gamma_lag()
        self.record = RunRecord(topology.processes, pattern)
        self.tracer = TraceRecorder()
        #: Wake index: shared-object name -> processes that read it.
        self._wake_index: Dict[str, FrozenSet[ProcessId]] = (
            self._build_wake_index(topology)
        )
        #: Processes whose wait condition may have changed since their
        #: last clean (zero-fired) scan.  Starts as everyone.
        self._dirty: Set[ProcessId] = set(topology.processes)
        #: Optional observer of wake events, called with the processes
        #: just dirtied.  The async driver installs itself here to route
        #: wakes through latency-modelled channels; ``None`` (round
        #: execution) keeps the wake path untouched.
        self.wake_listener: Optional[Callable[[FrozenSet[ProcessId]], None]] = None
        self.space = ObjectSpace(
            self._charge,
            guard=self.quorum_ok,
            isolation=isolation,
            consensus_gate=self.consensus_ok,
            on_write=self._on_object_write,
        )
        # ``gamma_scope="process"`` replays the pre-fix per-process
        # partner/consensus scoping; only the frozen golden runtime
        # suite should ask for it (see Mu.gamma_scope).
        self.mu = Mu(
            pattern,
            topology,
            gamma_lag=gamma_lag,
            omega_stabilization=omega_stabilization,
            gamma_scope=gamma_scope,
        )
        self.indicators: Dict[FrozenSet[ProcessId], IndicatorOracle] = {}
        if variant == "strict":
            for g, h in topology.intersecting_pairs():
                shared = g.intersection(h)
                if shared not in self.indicators:
                    self.indicators[shared] = IndicatorOracle(
                        pattern, shared, detection_lag=indicator_lag
                    )
        self.factory = MessageFactory()
        self.processes: Dict[ProcessId, Algorithm1Process] = {
            p: Algorithm1Process(
                p,
                topology,
                self.space,
                self.mu,
                on_deliver=self._on_deliver,
                variant=variant,
                indicators=self.indicators,
                stats=self.tracer,
            )
            for p in sorted(topology.processes)
        }
        self._components: List[Component] = []
        self._rng = random.Random(seed)
        self._gamma_lag = gamma_lag
        self._indicator_lag = indicator_lag
        if injector is not None:
            # Late-Omega windows: postpone leader stabilization before
            # the settle horizon is computed, so quiescence detection
            # keeps waiting the windows out.
            for group_name, until in injector.omega_delays():
                self.mu.delay_omega(group_name, until)
        # Last alive-set change: the final crash, or (under the
        # crash–recovery overlay) the final rejoin if later.
        last_change = max(pattern.change_instants(), default=0)
        self._settle_time: Time = (
            max(
                last_change + gamma_lag + indicator_lag,
                self.mu.omega_settle_time(),
                injector.horizon if injector is not None else 0,
            )
            + 1
        )
        self._scheduler: Scheduler = Scheduler(
            {p: SharedObjectActor(self, p) for p in sorted(topology.processes)},
            rng=self._rng,
            tracer=self.tracer,
            is_alive=pattern.is_alive,
            scheduling=scheduling,
            settle_horizon=lambda: self._settle_time,
            responders=frozenset(
                p for p in topology.processes if pattern.is_alive(p, 0)
            ),
            injector=injector,
            alive_instants={
                when
                for p, when in pattern.crash_times.items()
                if p in topology.processes
            }
            | {
                when
                for p, when in pattern.recovery_times.items()
                if p in topology.processes
            },
        )

    # -- Scheduler delegation -------------------------------------------------

    @property
    def time(self) -> Time:
        """The global round clock (owned by the shared scheduler)."""
        return self._scheduler.time

    @property
    def scheduling(self) -> str:
        return self._scheduler.scheduling

    @scheduling.setter
    def scheduling(self, mode: str) -> None:
        if mode not in SCHEDULING_MODES:
            raise SimulationError(f"unknown scheduling mode {mode!r}")
        self._scheduler.scheduling = mode

    @property
    def last_run_quiescent(self) -> bool:
        """Whether the most recent :meth:`run` ended in quiescence (True)
        or by exhausting its round budget (False).  True before any
        :meth:`run` call — nothing has been cut short yet."""
        return self._scheduler.last_run_quiescent

    @property
    def _active(self) -> FrozenSet[ProcessId]:
        """Processes able to respond to quorum requests *right now*:
        the alive processes within the current responder set."""
        return self._scheduler.responders

    # -- Wiring ---------------------------------------------------------------

    @staticmethod
    def _build_wake_index(
        topology: GroupTopology,
    ) -> Dict[str, FrozenSet[ProcessId]]:
        """Map each shared-object name to the processes that read it.

        ``LOG_g`` and the reduction list ``L_g`` are read by the members
        of ``g``; ``LOG_{g∩h}`` is read by the members of both groups.
        Consensus objects need no entry: their state is only consumed by
        the proposer within its own (already-fired) commit action.
        """
        index: Dict[str, Set[ProcessId]] = {}
        for g in topology.groups:
            index.setdefault(f"LOG_{g.name}", set()).update(g.members)
            index.setdefault(f"L_{g.name}", set()).update(g.members)
        for g, h in topology.intersecting_pairs():
            first, second = sorted((g, h), key=lambda x: x.name)
            readers = index.setdefault(
                f"LOG_{first.name}∩{second.name}", set()
            )
            readers.update(g.members)
            readers.update(h.members)
        return {name: frozenset(pids) for name, pids in index.items()}

    def _on_object_write(self, name: str) -> None:
        """A shared object mutated: wake its readers (everyone if unknown)."""
        woken = self._wake_index.get(name, self.topology.processes)
        self._dirty |= woken
        if self.wake_listener is not None:
            self.wake_listener(woken)

    def wake_all(self) -> None:
        """Force every process through the next action scan."""
        self._dirty = set(self.topology.processes)
        if self.wake_listener is not None:
            self.wake_listener(self.topology.processes)

    def _charge(self, p: ProcessId, reason: str) -> None:
        self.record.note_step(self.time, p, received=reason)

    def quorum_ok(self, caller: ProcessId, scope: ProcessSet) -> bool:
        """Whether a ``Sigma_scope`` quorum can respond right now.

        The required quorum is the oracle's current sample: the alive
        members of the scope (pinned to the full scope when the whole
        scope is doomed, preserving Intersection).  The operation can
        complete only when that quorum lies within the processes actually
        taking steps — alive and inside the current participation set.
        This is what makes P-fair runs (§6.2) and the sub-runs of the
        necessity constructions (§5) behave as in the message-passing
        model: silent processes cannot be part of a responsive quorum.
        """
        alive_scope = {q for q in scope if self.pattern.is_alive(q, self.time)}
        if any(self.pattern.is_correct(q) for q in scope):
            required = alive_scope
        else:
            required = set(scope)
        if self.injector is not None and self.injector.sigma_noisy(
            frozenset(q.index for q in scope), self.time
        ):
            # Transient false suspicion, rendered admissibly: during the
            # noise window the Sigma sample is pinned to the full scope,
            # so any two samples still intersect (Intersection holds) and
            # operations merely stall until the window closes (Liveness
            # constrains only the suffix).
            required = set(scope)
        available = required <= self._active
        self.tracer.note_quorum_query(available)
        return available

    def consensus_ok(self, caller: ProcessId, host: Group) -> bool:
        """Whether the consensus hosted by ``host`` can terminate now.

        The §4.3 construction builds consensus from ``Omega_g ∧ Sigma_g``;
        its termination is guaranteed only once ``Omega_g`` has
        stabilized.  The engine takes the adversarial reading: before the
        oracle's stabilization time, ballots may be preempted forever, so
        proposals do not complete.  (When the whole host group is faulty
        the Leadership obligation is vacuous and the quorum guard already
        pins the operation.)
        """
        omega = self.mu.omega(host)
        if omega.eventual_leader is None:
            return True
        return self.time >= omega.stabilization_time

    def _on_deliver(self, p: ProcessId, m: MulticastMessage) -> None:
        self.record.note_delivery(self.time, p, m)

    def add_component(self, component: Component) -> None:
        """Register an auxiliary action source, run before the algorithm."""
        self._components.append(component)
        self.wake_all()

    # -- Interface -----------------------------------------------------------------

    def group(self, name: str) -> Group:
        return self.topology.group(name)

    def is_alive(self, p: ProcessId) -> bool:
        return self.pattern.is_alive(p, self.time)

    def make_message(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Mint (but do not yet multicast) a message to a named group."""
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(
                f"closed model: {src.name} does not belong to {group}"
            )
        return self.factory.multicast(src, g.members, payload)

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Group-sequential multicast: ``src`` sends to ``group`` now."""
        if not self.is_alive(src):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        message = self.make_message(src, group, payload)
        self.record.note_multicast(self.time, src, message)
        # The sender must retry its line-7 append even when the append is
        # deferred on a quorum (no object write happens in that case).
        self._dirty.add(src)
        if self.wake_listener is not None:
            self.wake_listener((src,))
        self.processes[src].multicast(message)
        return message

    # -- Execution -----------------------------------------------------------------

    def tick(
        self,
        participation: Optional[ProcessSet] = None,
        responders: Optional[ProcessSet] = None,
        action_budget: Optional[int] = None,
    ) -> int:
        """One round: advance the clock, let live processes act.

        ``participation`` restricts who *acts* this round; ``responders``
        (defaulting to the participation set) restricts who may answer
        quorum requests — CHT-style simulated runs schedule one actor per
        step while the other scheduled processes still serve quorums.
        ``action_budget`` caps actions per process per round (finest
        interleaving = 1, used by latency measurements).  Returns the
        number of actions fired across the system.

        The per-round contract itself (clock, filtering, shuffle,
        dispatch, tracer accounting) lives in the shared
        :class:`repro.runtime.Scheduler`; this is a thin delegation.
        """
        return self._scheduler.round(participation, responders, action_budget)

    def settle_horizon(self) -> Time:
        """A time by which all detector outputs have stabilized.

        Covers the last crash plus the gamma and indicator detection
        lags, *and* the Omega stabilization time: actions blocked on the
        §4.3 consensus construction only re-enable once the leader
        oracles have settled (see :meth:`consensus_ok`).
        """
        return self._settle_time

    def run(
        self,
        max_rounds: int = 500,
        participation: Optional[ProcessSet] = None,
        quiescent_rounds: int = 2,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run rounds until quiescence (or ``max_rounds``).

        Quiescence requires ``quiescent_rounds`` consecutive idle rounds
        *after* the detector settle horizon, since actions blocked on
        ``gamma``, an indicator or an unstable Omega may re-enable when
        the detectors settle.  ``stop_when`` is evaluated after every
        round and cuts the run short without claiming quiescence (the
        stall watchdog plugs in here).  Returns the number of rounds
        executed; :attr:`last_run_quiescent` reports how the run ended.
        """
        outcome = self._scheduler.run(
            max_rounds, participation, quiescent_rounds, stop_when=stop_when
        )
        return outcome.rounds

    # -- Inspection ----------------------------------------------------------------

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        """The delivery sequence at ``p``."""
        return self.record.local_order(p)

    def everyone_delivered(self, message: MulticastMessage) -> bool:
        """Whether every *correct* destination member delivered it."""
        wanted = {
            p for p in message.dst if self.pattern.is_correct(p)
        }
        return wanted <= self.record.delivered_by(message)
