"""The round-based execution engine for Algorithm 1 and its variants.

The engine realizes the asynchronous model at the granularity the paper's
correctness argument uses: shared-object operations are linearizable, so a
run is a sequence of atomic actions (§4.4 "we reason directly upon the
linearization").  Each round advances the global clock by one, then lets
every live process scan its enabled actions, in a seeded random order — an
adversarially shuffled, yet reproducible, schedule.

Crash injection follows the run's :class:`repro.model.FailurePattern`:
from its crash time on, a process takes no further step.  *Participation
sets* restrict which processes are scheduled at all; they express the
P-fair runs of §6.2 (group parallelism) and the emulation constructions of
§5 where entire group remainders take no step.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.algorithm1 import Algorithm1Process
from repro.detectors.indicator import IndicatorOracle
from repro.detectors.mu import Mu
from repro.groups.topology import Group, GroupTopology
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId, ProcessSet
from repro.model.runs import RunRecord
from repro.objects.space import ObjectSpace

#: An auxiliary per-process action source (e.g. the Prop. 1 reduction):
#: called as ``component(pid, t)`` and returns the number of actions fired.
Component = Callable[[ProcessId, Time], int]


class MulticastSystem:
    """One deployment of Algorithm 1 over a topology and failure pattern.

    The ``multicast`` method is the *group-sequential* interface (the
    caller promises the §4.1 discipline: per group, a new message is
    multicast only by a sender that delivered the previous one).  The
    vanilla interface is :class:`repro.core.group_sequential.AtomicMulticast`.

    Attributes:
        topology: destination groups.
        pattern: the failure pattern of this run.
        record: the observable trace, consumed by the property checkers.
    """

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        variant: str = "vanilla",
        gamma_lag: Time = 0,
        indicator_lag: Time = 0,
        omega_stabilization: Optional[Time] = None,
        seed: int = 0,
        isolation: bool = False,
    ) -> None:
        if pattern.processes != topology.processes:
            raise SimulationError("pattern and topology disagree on processes")
        self.topology = topology
        self.pattern = pattern
        self.variant = variant
        self.time: Time = 0
        self.record = RunRecord(topology.processes, pattern)
        #: Processes able to respond to quorum requests *right now*:
        #: the alive processes within the current participation set.
        self._active: FrozenSet[ProcessId] = frozenset(
            p for p in topology.processes if pattern.is_alive(p, 0)
        )
        self._participation: Optional[ProcessSet] = None
        self.space = ObjectSpace(
            self._charge, guard=self.quorum_ok, isolation=isolation
        )
        self.mu = Mu(
            pattern,
            topology,
            gamma_lag=gamma_lag,
            omega_stabilization=omega_stabilization,
        )
        self.indicators: Dict[FrozenSet[ProcessId], IndicatorOracle] = {}
        if variant == "strict":
            for g, h in topology.intersecting_pairs():
                shared = g.intersection(h)
                if shared not in self.indicators:
                    self.indicators[shared] = IndicatorOracle(
                        pattern, shared, detection_lag=indicator_lag
                    )
        self.factory = MessageFactory()
        self.processes: Dict[ProcessId, Algorithm1Process] = {
            p: Algorithm1Process(
                p,
                topology,
                self.space,
                self.mu,
                on_deliver=self._on_deliver,
                variant=variant,
                indicators=self.indicators,
            )
            for p in sorted(topology.processes)
        }
        self._components: List[Component] = []
        self._rng = random.Random(seed)
        self._gamma_lag = gamma_lag
        self._indicator_lag = indicator_lag

    # -- Wiring ---------------------------------------------------------------

    def _charge(self, p: ProcessId, reason: str) -> None:
        self.record.note_step(self.time, p, received=reason)

    def quorum_ok(self, caller: ProcessId, scope: ProcessSet) -> bool:
        """Whether a ``Sigma_scope`` quorum can respond right now.

        The required quorum is the oracle's current sample: the alive
        members of the scope (pinned to the full scope when the whole
        scope is doomed, preserving Intersection).  The operation can
        complete only when that quorum lies within the processes actually
        taking steps — alive and inside the current participation set.
        This is what makes P-fair runs (§6.2) and the sub-runs of the
        necessity constructions (§5) behave as in the message-passing
        model: silent processes cannot be part of a responsive quorum.
        """
        alive_scope = {q for q in scope if self.pattern.is_alive(q, self.time)}
        if any(self.pattern.is_correct(q) for q in scope):
            required = alive_scope
        else:
            required = set(scope)
        return required <= self._active

    def _on_deliver(self, p: ProcessId, m: MulticastMessage) -> None:
        self.record.note_delivery(self.time, p, m)

    def add_component(self, component: Component) -> None:
        """Register an auxiliary action source, run before the algorithm."""
        self._components.append(component)

    # -- Interface -----------------------------------------------------------------

    def group(self, name: str) -> Group:
        return self.topology.group(name)

    def is_alive(self, p: ProcessId) -> bool:
        return self.pattern.is_alive(p, self.time)

    def make_message(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Mint (but do not yet multicast) a message to a named group."""
        g = self.topology.group(group)
        if src not in g:
            raise SimulationError(
                f"closed model: {src.name} does not belong to {group}"
            )
        return self.factory.multicast(src, g.members, payload)

    def multicast(
        self, src: ProcessId, group: str, payload: object = None
    ) -> MulticastMessage:
        """Group-sequential multicast: ``src`` sends to ``group`` now."""
        if not self.is_alive(src):
            raise SimulationError(f"{src} is crashed and cannot multicast")
        message = self.make_message(src, group, payload)
        self.record.note_multicast(self.time, src, message)
        self.processes[src].multicast(message)
        return message

    # -- Execution -----------------------------------------------------------------

    def tick(
        self,
        participation: Optional[ProcessSet] = None,
        responders: Optional[ProcessSet] = None,
        action_budget: Optional[int] = None,
    ) -> int:
        """One round: advance the clock, let live processes act.

        ``participation`` restricts who *acts* this round; ``responders``
        (defaulting to the participation set) restricts who may answer
        quorum requests — CHT-style simulated runs schedule one actor per
        step while the other scheduled processes still serve quorums.
        ``action_budget`` caps actions per process per round (finest
        interleaving = 1, used by latency measurements).  Returns the
        number of actions fired across the system.
        """
        self.time += 1
        order = [
            p
            for p in self.topology.processes
            if self.is_alive(p)
            and (participation is None or p in participation)
        ]
        if responders is None:
            self._active = frozenset(order)
        else:
            self._active = frozenset(
                p for p in responders if self.is_alive(p)
            )
        order.sort()
        self._rng.shuffle(order)
        fired = 0
        for p in order:
            for component in self._components:
                fired += component(p, self.time)
            fired += self.processes[p].try_actions(
                self.time, budget=action_budget
            )
        return fired

    def settle_horizon(self) -> Time:
        """A time by which all detector outputs have stabilized."""
        last_crash = max(self.pattern.crash_times.values(), default=0)
        return last_crash + self._gamma_lag + self._indicator_lag + 1

    def run(
        self,
        max_rounds: int = 500,
        participation: Optional[ProcessSet] = None,
        quiescent_rounds: int = 2,
    ) -> int:
        """Run rounds until quiescence (or ``max_rounds``).

        Quiescence requires ``quiescent_rounds`` consecutive idle rounds
        *after* the detector settle horizon, since actions blocked on
        ``gamma`` or an indicator may re-enable when a family dies.
        Returns the number of rounds executed.
        """
        idle = 0
        rounds = 0
        while rounds < max_rounds:
            fired = self.tick(participation)
            rounds += 1
            if fired == 0 and self.time >= self.settle_horizon():
                idle += 1
                if idle >= quiescent_rounds:
                    break
            else:
                idle = 0
        return rounds

    # -- Inspection ----------------------------------------------------------------

    def delivered_at(self, p: ProcessId) -> Tuple[MulticastMessage, ...]:
        """The delivery sequence at ``p``."""
        return self.record.local_order(p)

    def everyone_delivered(self, message: MulticastMessage) -> bool:
        """Whether every *correct* destination member delivered it."""
        wanted = {
            p for p in message.dst if self.pattern.is_correct(p)
        }
        return wanted <= self.record.delivered_by(message)
