"""Algorithm 1: genuine (group-sequential) atomic multicast from ``mu``.

This module is a line-by-line executable rendering of Algorithm 1 (§4.3).
Each process runs an *action system*: an action executes once its
preconditions hold, and its effects apply atomically (the engine in
:mod:`repro.core.engine` serializes actions, which realizes the
linearization the paper reasons on in §4.4).

Mapping to the pseudo-code:

=================  ====================================================
paper              here
=================  ====================================================
lines 5–7          :meth:`Algorithm1Process.multicast`
lines 8–15         :meth:`Algorithm1Process._try_pending`
lines 16–24        :meth:`Algorithm1Process._try_commit`
lines 25–29        :meth:`Algorithm1Process._try_stabilize`
lines 30–33        :meth:`Algorithm1Process._try_stable`
lines 34–37        :meth:`Algorithm1Process._try_deliver`
=================  ====================================================

The *strict* variation of §6.1 changes only the ``stable`` precondition:
a process waits, for every intersecting group ``h``, for either the
stabilization record ``(m, h)`` or the indicator ``1^{g∩h}`` — supply
``variant="strict"`` together with indicator oracles.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.detectors.indicator import IndicatorOracle
from repro.detectors.mu import Mu
from repro.core.phases import COMMIT, DELIVER, PENDING, STABLE, START, Phase
from repro.groups.topology import Group, GroupTopology
from repro.metrics.trace import (
    TraceRecorder,
    WAIT_CONSENSUS,
    WAIT_GAMMA,
    WAIT_INDICATOR,
    WAIT_ORDER,
    WAIT_QUORUM,
)
from repro.model.errors import SimulationError
from repro.model.messages import MessageId, MulticastMessage
from repro.model.processes import ProcessId
from repro.objects.space import LogHandle, ObjectSpace

#: Upcall invoked on delivery: (process, message).
DeliverFn = Callable[[ProcessId, MulticastMessage], None]

#: Supported algorithm variants.
VARIANTS = ("vanilla", "strict")


class Algorithm1Process:
    """The code of Algorithm 1 at one process.

    Attributes:
        pid: this process.
        topology: the destination groups ``G``.
        space: the shared-object space (logs and consensus objects).
        mu: the candidate failure detector (strict mode additionally uses
            the ``indicators`` mapping).
        variant: ``"vanilla"`` (§4) or ``"strict"`` (§6.1).
    """

    def __init__(
        self,
        pid: ProcessId,
        topology: GroupTopology,
        space: ObjectSpace,
        mu: Mu,
        on_deliver: DeliverFn,
        variant: str = "vanilla",
        indicators: Optional[Dict[FrozenSet[ProcessId], IndicatorOracle]] = None,
        stats: Optional[TraceRecorder] = None,
    ) -> None:
        if variant not in VARIANTS:
            raise SimulationError(f"unknown variant {variant!r}")
        if variant == "strict" and indicators is None:
            raise SimulationError("strict variant needs indicator detectors")
        self.pid = pid
        self.topology = topology
        self.space = space
        self.mu = mu
        self.variant = variant
        self.indicators = indicators or {}
        self._on_deliver = on_deliver
        self.my_groups: Tuple[Group, ...] = topology.groups_of(pid)
        #: PHASE[m], keyed by message id; absent = start (line 4).
        self.phase: Dict[MessageId, Phase] = {}
        #: Messages known locally, keyed by id.
        self.known: Dict[MessageId, MulticastMessage] = {}
        #: (message, group) pairs already stabilized by this process.
        self._stabilized: Set[Tuple[MessageId, Group]] = set()
        #: Locally requested multicasts whose line-7 append is still
        #: waiting for a quorum (retried by the action scan).
        self._to_multicast: Set[MessageId] = set()
        #: Per-destination-group consensus family, memoized (line 20).
        self._family_keys: Dict[Group, FrozenSet[str]] = {}
        #: Known message ids in sorted order (the scan order), maintained
        #: incrementally so each scan avoids re-sorting all of ``known``.
        self._known_order: List[MessageId] = []
        #: Message ids the scan can never act on again: delivered here,
        #: or addressed to a group this process is not a member of.
        self._done: Set[MessageId] = set()
        #: Per-group-log version at the last ``discover()``; an unchanged
        #: log cannot contain new messages, so its re-scan is skipped.
        self._discover_versions: Dict[str, int] = {}
        #: ``targets`` of lines 13/22 per destination group, memoized
        #: (``my_groups`` and the intersection structure never change).
        self._targets_cache: Dict[Group, Tuple[Group, ...]] = {}
        #: Instrumentation sink (detector-query counters); optional.
        self.stats = stats
        #: Why the last action scan ended blocked: a subset of the
        #: ``WAIT_*`` reasons of :mod:`repro.metrics.trace`.  Empty after
        #: a scan that fired actions, or when the process is simply idle.
        #: The engine's wake-index and the trace exporter both read it.
        self.wait_reasons: Set[str] = set()

    # -- Wait-reason reporting -------------------------------------------------

    def _waiting(self, reason: str) -> None:
        self.wait_reasons.add(reason)

    def is_idle(self) -> bool:
        """Whether the last scan found nothing to do and nothing to wait on."""
        return not self.wait_reasons and not self._to_multicast

    # -- Phase bookkeeping ---------------------------------------------------

    def phase_of(self, message: MulticastMessage) -> Phase:
        return self.phase.get(message.mid, START)

    def _learn(self, message: MulticastMessage) -> None:
        if message.mid not in self.known:
            self.known[message.mid] = message
            insort(self._known_order, message.mid)

    def _all_at_least(
        self, messages: Tuple[MulticastMessage, ...], threshold: Phase
    ) -> bool:
        return all(self.phase_of(m) >= threshold for m in messages)

    # -- Shared-object accessors ----------------------------------------------

    def _log(self, g: Group) -> LogHandle:
        return self.space.group_log(g)

    def _ilog(self, g: Group, h: Group) -> LogHandle:
        return self.space.intersection_log(g, h)

    def _destination_group(self, message: MulticastMessage) -> Group:
        g = self.topology.group_with_members(message.dst)
        if g is None:
            raise SimulationError(
                f"message {message!r} addressed to a group outside G"
            )
        return g

    def _targets(self, g: Group) -> Tuple[Group, ...]:
        """Lines 13/22: the local groups whose logs carry ``m``."""
        cached = self._targets_cache.get(g)
        if cached is None:
            cached = tuple(
                h for h in self.my_groups if h == g or g.intersects(h)
            )
            self._targets_cache[g] = cached
        return cached

    # -- multicast(m), lines 5-7 ---------------------------------------------

    def multicast(self, message: MulticastMessage) -> None:
        """Append ``m`` to the log of its destination group.

        The caller must be a member of the destination group (closed
        dissemination) and the workload must be group-sequential — the
        vanilla interface in :mod:`repro.core.group_sequential` enforces
        both.
        """
        g = self._destination_group(message)
        if self.pid not in g:
            raise SimulationError(f"{self.pid} is not in {g.name}")
        self._learn(message)
        if self.phase_of(message) != START:
            return  # pre: PHASE[m] = start
        log_g = self._log(g)
        if not log_g.mutation_available(self.pid):
            self._to_multicast.add(message.mid)  # retried by the scan
            return
        log_g.append(self.pid, message)

    # -- The action scan -------------------------------------------------------

    def discover(self) -> None:
        """Learn messages appearing in the logs of this process's groups.

        Each group log keeps a mutation counter; a log whose counter is
        unchanged since the previous scan cannot hold new messages and is
        skipped outright.
        """
        for g in self.my_groups:
            handle = self._log(g)
            version = handle.version
            if self._discover_versions.get(g.name) == version:
                continue
            self._discover_versions[g.name] = version
            for message in handle.messages():
                self._learn(message)

    def try_actions(self, t: int, budget: Optional[int] = None) -> int:
        """Run one pass over all enabled actions; return how many fired.

        ``budget`` caps the number of actions fired in this scan (finer
        interleaving for latency measurements); ``None`` = fire all.
        """
        self.discover()
        self.wait_reasons = set()
        fired = 0
        for mid in sorted(self._to_multicast):
            message = self.known[mid]
            if self.phase_of(message) != START or message in self._log(
                self._destination_group(message)
            ):
                self._to_multicast.discard(mid)
                continue
            if self._log(self._destination_group(message)).mutation_available(
                self.pid
            ):
                self._log(self._destination_group(message)).append(
                    self.pid, message
                )
                self._to_multicast.discard(mid)
                fired += 1
            else:
                self._waiting(WAIT_QUORUM)
        done = self._done
        for mid in self._known_order:
            if mid in done:
                continue
            if budget is not None and fired >= budget:
                return fired
            message = self.known[mid]
            if self.phase.get(mid) == DELIVER:
                # Delivered messages satisfy no action precondition and
                # report no wait reason — drop them from future scans.
                done.add(mid)
                continue
            g = self._destination_group(message)
            if self.pid not in g:
                done.add(mid)  # never actionable at a non-member
                continue
            if self._try_pending(t, message, g):
                fired += 1
            if budget is not None and fired >= budget:
                return fired
            if self._try_commit(t, message, g):
                fired += 1
            if budget is not None and fired >= budget:
                return fired
            remaining = None if budget is None else budget - fired
            fired += self._try_stabilize(t, message, g, remaining)
            if budget is not None and fired >= budget:
                return fired
            if self._try_stable(t, message, g):
                fired += 1
            if budget is not None and fired >= budget:
                return fired
            if self._try_deliver(t, message, g):
                fired += 1
        return fired

    # -- pending(m), lines 8-15 -------------------------------------------------

    def _try_pending(self, t: int, m: MulticastMessage, g: Group) -> bool:
        log_g = self._log(g)
        if self.phase_of(m) != START:
            return False
        if m not in log_g:
            return False
        if not self._all_at_least(log_g.messages_before(m), COMMIT):
            self._waiting(WAIT_ORDER)
            return False
        targets = self._targets(g)
        if not log_g.mutation_available(self.pid):
            self._waiting(WAIT_QUORUM)
            return False
        for h in targets:
            if not self._ilog(g, h).mutation_available(self.pid, "append", m):
                self._waiting(WAIT_QUORUM)
                return False  # wait for a quorum of the carrier
        for h in targets:
            position = self._ilog(g, h).append(self.pid, m)
            log_g.append(self.pid, (m.mid, h.name, position))
        self.phase[m.mid] = PENDING
        return True

    # -- commit(m), lines 16-24 ---------------------------------------------------

    def _gamma_partners(self, t: int, g: Group) -> Tuple[Group, ...]:
        """``gamma(g)`` as observed by this process now (§3)."""
        if self.stats is not None:
            self.stats.note_gamma_query()
        return self.mu.gamma_partners(self.pid, t, g)

    def _consensus_family(self, g: Group) -> FrozenSet[str]:
        """Line 20: ``f = {h : ∃f' ∈ F(g). h ∈ f' ∧ g ∩ h ≠ ∅}``.

        Computed from ``F(g)`` — the families of the *group* — so every
        committer of ``(m, g)`` addresses the same ``CONS_{m,f}``
        instance.  The former ``F(p)`` scoping gave a non-carrier member
        of ``g`` a different (possibly empty) key, i.e. a private
        consensus object whose decision could disagree with everyone
        else's ``k``, locking the message at inconsistent positions
        across the intersection logs (ROADMAP item 6).
        """
        cached = self._family_keys.get(g)
        if cached is not None:
            return cached
        members: Set[str] = set()
        if getattr(self.mu, "gamma_scope", "group") == "process":
            # Legacy F(p) scoping, kept for the frozen golden traces.
            for family in self.topology.families_of_process(self.pid):
                if g not in family:
                    continue
                for h in family:
                    if g.intersects(h):
                        members.add(h.name)
        else:
            for family in self.topology.families_of_group(g):
                for h in family:
                    if g.intersects(h):
                        members.add(h.name)
        key = frozenset(members)
        self._family_keys[g] = key
        return key

    def _try_commit(self, t: int, m: MulticastMessage, g: Group) -> bool:
        if self.phase_of(m) != PENDING:
            return False
        log_g = self._log(g)
        records = log_g.position_records_for(m.mid)
        recorded_groups = {r[1] for r in records}
        for h in self._gamma_partners(t, g):
            if h.name not in recorded_groups:
                self._waiting(WAIT_GAMMA)
                return False  # line 18
        if not records:
            return False  # k undefined until some (m, h, i) exists
        k = max(r[2] for r in records)  # line 19
        family_key = self._consensus_family(g)  # line 20
        cons = self.space.consensus(m.mid, family_key, g)
        targets = self._targets(g)
        if not cons.mutation_available(self.pid):
            self._waiting(WAIT_CONSENSUS)
            return False
        for h in targets:
            if not self._ilog(g, h).mutation_available(
                self.pid, "bumpAndLock", m, k
            ):
                self._waiting(WAIT_QUORUM)
                return False
        k = cons.propose(self.pid, k)  # line 21
        for h in targets:  # lines 22-23
            self._ilog(g, h).bump_and_lock(self.pid, m, k)
        self.phase[m.mid] = COMMIT
        return True

    # -- stabilize(m, h), lines 25-29 -----------------------------------------------

    def _try_stabilize(
        self,
        t: int,
        m: MulticastMessage,
        g: Group,
        max_fires: Optional[int] = None,
    ) -> int:
        if self.phase_of(m) != COMMIT:
            return 0  # pre at line 26: PHASE[m] = commit
        fired = 0
        log_g = self._log(g)
        for h in self._targets(g):  # line 27: h in G(p), g ∩ h ≠ ∅
            if max_fires is not None and fired >= max_fires:
                return fired
            if (m.mid, h) in self._stabilized:
                continue
            ilog = self._ilog(g, h)
            if m not in ilog:
                continue
            if not self._all_at_least(ilog.messages_before(m), STABLE):
                self._waiting(WAIT_ORDER)
                continue  # line 28
            if not log_g.mutation_available(self.pid):
                self._waiting(WAIT_QUORUM)
                continue
            log_g.append(self.pid, (m.mid, h.name))  # line 29
            self._stabilized.add((m.mid, h))
            fired += 1
        return fired

    # -- stable(m), lines 30-33 ---------------------------------------------------

    def _stable_precondition(self, t: int, m: MulticastMessage, g: Group) -> bool:
        log_g = self._log(g)
        recorded = {r[1] for r in log_g.stabilization_records_for(m.mid)}
        if self.variant == "strict":
            # §6.1: wait on every intersecting group, with the indicator
            # 1^{g∩h} as the escape hatch.
            for h in self.topology.groups:
                if h == g or not g.intersects(h):
                    continue
                if h.name in recorded:
                    continue
                indicator = self.indicators.get(g.intersection(h))
                if self.stats is not None and indicator is not None:
                    self.stats.note_indicator_query()
                if indicator is None or not indicator.query(self.pid, t):
                    self._waiting(WAIT_INDICATOR)
                    return False
            return True
        for h in self._gamma_partners(t, g):  # line 32
            if h.name not in recorded:
                self._waiting(WAIT_GAMMA)
                return False
        return True

    def _try_stable(self, t: int, m: MulticastMessage, g: Group) -> bool:
        if self.phase_of(m) != COMMIT:
            return False
        if not self._stable_precondition(t, m, g):
            return False
        self.phase[m.mid] = STABLE  # line 33
        return True

    # -- deliver(m), lines 34-37 -----------------------------------------------------

    def _try_deliver(self, t: int, m: MulticastMessage, g: Group) -> bool:
        if self.phase_of(m) != STABLE:
            return False
        for h in self._targets(g):  # line 36, over the logs at p holding m
            ilog = self._ilog(g, h)
            if m not in ilog:
                continue
            if not self._all_at_least(ilog.messages_before(m), DELIVER):
                self._waiting(WAIT_ORDER)
                return False
        self.phase[m.mid] = DELIVER  # line 37
        self._on_deliver(self.pid, m)
        return True

    # -- Introspection ---------------------------------------------------------------

    def delivered(self) -> Tuple[MulticastMessage, ...]:
        return tuple(
            self.known[mid]
            for mid in sorted(self.known)
            if self.phase.get(mid) == DELIVER
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Algorithm1Process({self.pid.name}, {self.variant})"
