"""Message phases of Algorithm 1 (§4.3).

A message progresses through ``start -> pending -> commit -> stable ->
deliver``; phases are totally ordered by that progression and the
``deliver`` phase is terminal (Lemma 18 relies on this).
"""

from __future__ import annotations

import enum


class Phase(enum.IntEnum):
    """The five phases of a message at a process, in progression order."""

    START = 0
    PENDING = 1
    COMMIT = 2
    STABLE = 3
    DELIVER = 4

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name.lower()


#: Convenience aliases matching the paper's typography.
START = Phase.START
PENDING = Phase.PENDING
COMMIT = Phase.COMMIT
STABLE = Phase.STABLE
DELIVER = Phase.DELIVER
