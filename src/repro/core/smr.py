"""State-machine replication over strict atomic multicast (§6.1).

The paper's motivation for the strict variation: vanilla atomic multicast
is too weak for linearizable SMR — "if some command d is submitted after
a command c got delivered, atomic multicast does not enforce c to be
delivered before d, breaking linearizability" [3].  This module is that
application layer:

* a :class:`ReplicatedStateMachine` funnels commands through a strict
  :class:`repro.core.MulticastSystem` deployment and applies deliveries,
  in order, to a deterministic state machine per replica;
* sharded machines are supported naturally: one machine per destination
  group, cross-group commands multicast to group unions.

Because the transport is *strict*, the real-time order between a
completed command and a later submission is preserved, which is exactly
the linearizability obligation SMR adds on top of total order.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.model.errors import SimulationError
from repro.model.messages import MulticastMessage
from repro.model.processes import ProcessId

#: A deterministic transition: (state, command payload) -> (state, output).
ApplyFn = Callable[[Any, Any], Tuple[Any, Any]]


def kv_apply(state: Dict[str, Any], command: Tuple[str, ...]) -> Tuple[Dict, Any]:
    """The bundled example machine: a key-value store.

    Commands: ``("put", k, v)``, ``("get", k)``, ``("incr", k)``.
    """
    op = command[0]
    if op == "put":
        _, key, value = command
        new_state = dict(state)
        new_state[key] = value
        return new_state, value
    if op == "incr":
        _, key = command
        new_state = dict(state)
        new_state[key] = new_state.get(key, 0) + 1
        return new_state, new_state[key]
    if op == "get":
        _, key = command
        return state, state.get(key)
    raise SimulationError(f"unknown command {command!r}")


class ReplicatedStateMachine:
    """Linearizable replicated objects over strict atomic multicast.

    Attributes:
        system: the underlying strict deployment (``variant="strict"``).
        apply_fn: the deterministic transition function.
    """

    def __init__(
        self,
        system: MulticastSystem,
        apply_fn: ApplyFn = kv_apply,
        initial_state: Any = None,
    ) -> None:
        if system.variant != "strict":
            raise SimulationError(
                "linearizable SMR needs the strict variant (§6.1)"
            )
        self.system = system
        self.multicaster = AtomicMulticast(system)
        self.apply_fn = apply_fn
        self._initial_state = initial_state if initial_state is not None else {}
        #: Applied command count per replica (cursor into local_order).
        self._applied_upto: Dict[ProcessId, int] = {}
        #: Current state per replica.
        self._states: Dict[ProcessId, Any] = {}
        #: Outputs per command id, per replica.
        self._outputs: Dict[Tuple[ProcessId, object], Any] = {}

    # -- Client interface ---------------------------------------------------------

    def submit(
        self, client: ProcessId, group: str, command: Tuple[str, ...]
    ) -> MulticastMessage:
        """Submit a command to the replicas of ``group``."""
        return self.multicaster.multicast(client, group, payload=command)

    def run(self, **kwargs: object) -> int:
        rounds = self.system.run(**kwargs)
        self._apply_deliveries()
        return rounds

    # -- Replica application --------------------------------------------------------

    def _apply_deliveries(self) -> None:
        for p in self.system.topology.processes:
            order = self.system.record.local_order(p)
            start = self._applied_upto.get(p, 0)
            state = self._states.get(p, self._initial_state)
            for message in order[start:]:
                state, output = self.apply_fn(state, message.payload)
                self._outputs[(p, message.mid)] = output
            self._states[p] = state
            self._applied_upto[p] = len(order)

    def state_at(self, p: ProcessId) -> Any:
        """The replica's current state."""
        return self._states.get(p, self._initial_state)

    def output_of(
        self, p: ProcessId, message: MulticastMessage
    ) -> Optional[Any]:
        """The output the replica computed for a command, if applied."""
        return self._outputs.get((p, message.mid))

    def read(self, p: ProcessId, key: str) -> Any:
        """A local read of the replica state (for the kv machine)."""
        state = self.state_at(p)
        return state.get(key) if isinstance(state, dict) else None
