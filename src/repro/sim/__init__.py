"""Step-level simulation kernel for message-passing automata (Appendix A)."""

from repro.sim.kernel import Automaton, Context, Kernel

__all__ = ["Automaton", "Context", "Kernel"]
