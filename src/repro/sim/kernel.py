"""The step-level simulation kernel (Appendix A).

This kernel executes protocol *automata* at the granularity of the formal
model: a step receives at most one datagram from the shared message
buffer, queries the local failure-detector module, updates local state and
sends datagrams.  Schedules are seeded-random with round-robin fairness
(every alive process is scheduled in every round), so the standard
well-formedness conditions hold: crashed processes take no steps and every
message addressed to a live process is eventually received.

The kernel hosts the genuine message-passing substrates of §4.3
(:mod:`repro.substrates`): ABD registers from ``Sigma``, adopt–commit from
``Sigma_{g∩h}`` and leader-driven consensus from ``Omega ∧ Sigma``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.detectors.base import FailureDetector
from repro.metrics.trace import WAIT_IDLE, TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import Datagram, MessageBuffer
from repro.model.processes import ProcessId, ProcessSet


class Context:
    """The per-step view an automaton gets of the world.

    Attributes:
        pid: the stepping process.
        time: the global time of this step.
        detector: the sample obtained from the local detector module.
    """

    def __init__(
        self,
        pid: ProcessId,
        time: Time,
        detector: Any,
        buffer: MessageBuffer,
        outputs: List[Any],
    ) -> None:
        self.pid = pid
        self.time = time
        self.detector = detector
        self._buffer = buffer
        self._outputs = outputs

    def send(self, dst: ProcessId, tag: str, *body: Any) -> None:
        """Queue a datagram to ``dst``."""
        self._buffer.send(self.pid, dst, tag, tuple(body))

    def broadcast(self, dsts: Sequence[ProcessId], tag: str, *body: Any) -> None:
        """Queue one datagram per destination (including self if listed)."""
        for dst in dsts:
            self._buffer.send(self.pid, dst, tag, tuple(body))

    def output(self, value: Any) -> None:
        """Append to the process's output queue (OUT of Appendix A)."""
        self._outputs.append((self.time, value))


class Automaton:
    """Base class of protocol automata: one instance per process."""

    def on_start(self, ctx: Context) -> None:
        """Called once, on the process's first step."""

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        """Called at every step with the received datagram (or null)."""
        raise NotImplementedError

    def idle(self) -> bool:
        """True when a step with no datagram cannot change this automaton.

        Event-driven kernels (``Kernel(event_driven=True)``) skip started
        processes that are idle and have nothing pending in the buffer.
        The default is conservative — ``False`` keeps every process
        stepping each round, which is always sound.  Automata that are
        purely message-driven after start-up (they neither poll detectors
        nor act spontaneously) may override this to report quiescence.
        """
        return False


class Kernel:
    """Drives a set of automata over the shared message buffer.

    Attributes:
        pattern: the failure pattern; crashed processes stop stepping and
            their pending datagrams are dropped.
    """

    def __init__(
        self,
        pattern: FailurePattern,
        automata: Dict[ProcessId, Automaton],
        detectors: Optional[Dict[ProcessId, FailureDetector]] = None,
        seed: int = 0,
        event_driven: bool = False,
    ) -> None:
        self.pattern = pattern
        self.automata = dict(automata)
        self.detectors = detectors or {}
        self.buffer = MessageBuffer()
        self.time: Time = 0
        self.event_driven = event_driven
        self.tracer = TraceRecorder()
        self.outputs: Dict[ProcessId, List[Tuple[Time, Any]]] = {
            p: [] for p in automata
        }
        self.steps_taken: Dict[ProcessId, int] = {p: 0 for p in automata}
        self._started: set = set()
        self._rng = random.Random(seed)

    # -- Stepping --------------------------------------------------------------

    def step_process(self, p: ProcessId) -> None:
        """Execute one step of ``p`` (receive, sample, transition)."""
        if not self.pattern.is_alive(p, self.time):
            raise SimulationError(f"{p} is crashed and cannot step")
        detector = self.detectors.get(p)
        sample = detector.query(p, self.time) if detector else None
        ctx = Context(p, self.time, sample, self.buffer, self.outputs[p])
        if p not in self._started:
            self._started.add(p)
            self.automata[p].on_start(ctx)
        datagram = self.buffer.receive(p)
        self.automata[p].on_step(ctx, datagram)
        self.steps_taken[p] += 1

    def round(self, participation: Optional[ProcessSet] = None) -> int:
        """One fair round: every eligible alive process takes one step.

        The intra-round order is seeded-random.  Datagrams addressed to
        processes crashed by now are dropped (they will never receive).
        Returns the number of steps taken.

        With ``event_driven=True`` a started process whose automaton
        reports :meth:`Automaton.idle` and whose inbox is empty is
        skipped: its step would receive the null message and, by the
        automaton's own declaration, change nothing.  The full shuffled
        order is still drawn first, so the schedule of the processes
        that *do* step is identical to the scan kernel's.
        """
        self.time += 1
        for p in self.automata:
            if not self.pattern.is_alive(p, self.time):
                self.buffer.drop_all_for(p)
        order = [
            p
            for p in self.automata
            if self.pattern.is_alive(p, self.time)
            and (participation is None or p in participation)
        ]
        order.sort()
        self._rng.shuffle(order)
        self.tracer.begin_round(
            self.time, len(order), full_scan=not self.event_driven
        )
        stepped = 0
        for p in order:
            if (
                self.event_driven
                and p in self._started
                and self.automata[p].idle()
                and not self.buffer.has_pending(p)
            ):
                self.tracer.note_skipped()
                self.tracer.note_wait(WAIT_IDLE)
                continue
            self.step_process(p)
            self.tracer.note_scanned(1)
            stepped += 1
        self.tracer.end_round()
        return stepped

    def run(
        self,
        rounds: int,
        participation: Optional[ProcessSet] = None,
        stop_when: Optional[Callable[[], bool]] = None,
    ) -> int:
        """Run up to ``rounds`` fair rounds; stop early on ``stop_when``."""
        done = 0
        for _ in range(rounds):
            self.round(participation)
            done += 1
            if stop_when is not None and stop_when():
                break
        return done

    # -- Introspection -------------------------------------------------------------

    def outputs_of(self, p: ProcessId) -> Tuple[Any, ...]:
        return tuple(value for _, value in self.outputs[p])

    def total_messages(self) -> int:
        return self.buffer.sent_count
