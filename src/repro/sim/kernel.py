"""The step-level simulation kernel (Appendix A).

This kernel executes protocol *automata* at the granularity of the formal
model: a step receives at most one datagram from the shared message
buffer, queries the local failure-detector module, updates local state and
sends datagrams.  Schedules are seeded-random with round-robin fairness
(every alive process is scheduled in every round), so the standard
well-formedness conditions hold: crashed processes take no steps and every
message addressed to a live process is eventually received.

The kernel hosts the genuine message-passing substrates of §4.3
(:mod:`repro.substrates`): ABD registers from ``Sigma``, adopt–commit from
``Sigma_{g∩h}`` and leader-driven consensus from ``Omega ∧ Sigma``.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.detectors.base import FailureDetector
from repro.metrics.trace import TraceRecorder
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import Datagram, MessageBuffer
from repro.model.processes import ProcessId, ProcessSet
from repro.runtime import AutomatonActor, Scheduler


class Context:
    """The per-step view an automaton gets of the world.

    Attributes:
        pid: the stepping process.
        time: the global time of this step.
        detector: the sample obtained from the local detector module.
    """

    __slots__ = ("pid", "time", "detector", "_buffer", "_outputs")

    def __init__(
        self,
        pid: ProcessId,
        time: Time,
        detector: Any,
        buffer: MessageBuffer,
        outputs: List[Any],
    ) -> None:
        self.pid = pid
        self.time = time
        self.detector = detector
        self._buffer = buffer
        self._outputs = outputs

    def bind(
        self,
        pid: ProcessId,
        time: Time,
        detector: Any,
        outputs: List[Any],
    ) -> "Context":
        """Re-point this view at another step (kernel-internal reuse).

        Automata only use the context synchronously within one step, so
        the kernel keeps a single instance instead of allocating one per
        step.
        """
        self.pid = pid
        self.time = time
        self.detector = detector
        self._outputs = outputs
        return self

    def send(self, dst: ProcessId, tag: str, *body: Any) -> None:
        """Queue a datagram to ``dst``."""
        self._buffer.send(self.pid, dst, tag, tuple(body))

    def broadcast(self, dsts: Sequence[ProcessId], tag: str, *body: Any) -> None:
        """Queue one datagram per destination (including self if listed)."""
        self._buffer.broadcast(self.pid, dsts, tag, tuple(body))

    def output(self, value: Any) -> None:
        """Append to the process's output queue (OUT of Appendix A)."""
        self._outputs.append((self.time, value))


def snapshot_hash(snapshot: Any) -> str:
    """Content address of a durable-state snapshot (sha256 hex).

    Snapshots are plain JSON-serializable dicts; the address is the
    hash of the canonical encoding, so two replicas with identical
    durable state produce identical addresses — the kernel's rejoin
    path records one per recovery for triage.
    """
    canonical = json.dumps(
        snapshot, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class Automaton:
    """Base class of protocol automata: one instance per process."""

    def on_start(self, ctx: Context) -> None:
        """Called once, on the process's first step."""

    def on_step(self, ctx: Context, datagram: Optional[Datagram]) -> None:
        """Called at every step with the received datagram (or null)."""
        raise NotImplementedError

    def idle(self) -> bool:
        """True when a step with no datagram cannot change this automaton.

        Event-driven kernels (``Kernel(event_driven=True)``) skip started
        processes that are idle and have nothing pending in the buffer.
        The default is conservative — ``False`` keeps every process
        stepping each round, which is always sound.  Automata that are
        purely message-driven after start-up (they neither poll detectors
        nor act spontaneously) may override this to report quiescence.
        """
        return False


class Kernel:
    """Drives a set of automata over the shared message buffer.

    Attributes:
        pattern: the failure pattern; crashed processes stop stepping and
            their pending datagrams are dropped.
    """

    def __init__(
        self,
        pattern: FailurePattern,
        automata: Dict[ProcessId, Automaton],
        detectors: Optional[Dict[ProcessId, FailureDetector]] = None,
        seed: int = 0,
        event_driven: bool = False,
        injector: Optional[Any] = None,
    ) -> None:
        self.pattern = pattern
        self.automata = dict(automata)
        #: Optional :class:`repro.faults.FaultInjector` — link faults run
        #: through the buffer, detector noise through wrapped modules,
        #: churn through the scheduler.  ``None`` (the default) keeps
        #: every code path byte-identical to the fault-free kernel.
        self.injector = injector
        self.detectors = detectors or {}
        if injector is not None:
            self.detectors = {
                p: injector.wrap_detector(d) for p, d in self.detectors.items()
            }
        self.buffer = MessageBuffer(injector)
        self.event_driven = event_driven
        self.tracer = TraceRecorder()
        self.outputs: Dict[ProcessId, List[Tuple[Time, Any]]] = {
            p: [] for p in automata
        }
        self.steps_taken: Dict[ProcessId, int] = {p: 0 for p in automata}
        self._started: set = set()
        #: Reusable per-step context view (see :meth:`Context.bind`).
        self._ctx = Context(None, 0, None, self.buffer, [])
        self._rng = random.Random(seed)
        #: Crash-time drop schedule: instead of sweeping every inbox each
        #: round, pending datagrams are dropped once when their owner's
        #: crash time arrives (and on any later round where new datagrams
        #: were addressed to an already-dead process).
        self._crash_schedule: List[Tuple[Time, ProcessId]] = sorted(
            (when, p)
            for p, when in pattern.crash_times.items()
            if p in self.automata
        )
        self._crash_cursor = 0
        self._dead: List[ProcessId] = []
        #: Crash–recovery overlay: rejoin schedule, durable snapshots
        #: taken at crash time, and a (when, process, snapshot hash)
        #: ledger of completed recoveries for triage rows.
        self._recover_schedule: List[Tuple[Time, ProcessId]] = sorted(
            (when, p)
            for p, when in pattern.recovery_times.items()
            if p in self.automata
        )
        self._recover_cursor = 0
        self._snapshots: Dict[ProcessId, Any] = {}
        self.recoveries: List[Tuple[Time, ProcessId, Optional[str]]] = []
        self._scheduler: Scheduler = Scheduler(
            {p: AutomatonActor(self, p) for p in sorted(self.automata)},
            rng=self._rng,
            tracer=self.tracer,
            is_alive=pattern.is_alive,
            scheduling="event" if event_driven else "scan",
            pre_round=self._pre_round if injector is not None else self._drop_crashed,
            settle_horizon=(lambda: injector.horizon) if injector is not None else None,
            injector=injector,
            pending_work=(
                self.buffer.delayed_count if injector is not None else None
            ),
            alive_instants={
                when
                for p, when in pattern.crash_times.items()
                if p in self.automata
            }
            | {
                when
                for p, when in pattern.recovery_times.items()
                if p in self.automata
            },
        )

    @property
    def time(self) -> Time:
        """The global round clock (owned by the shared scheduler)."""
        return self._scheduler.time

    def settle_horizon(self) -> Time:
        """The detectors' stabilization time (0 when none declared)."""
        return self._scheduler.settle_horizon()

    @property
    def last_run_quiescent(self) -> bool:
        """Whether the most recent :meth:`run` *ended* quiescent.

        With an explicit ``quiescent_rounds`` the run halts on
        quiescence like :meth:`repro.core.MulticastSystem.run`; without
        one the full round budget executes and this flag reports whether
        the final round(s) were productive — ``False`` flags a run cut
        short mid-protocol.  True before any :meth:`run` call.
        """
        return self._scheduler.last_run_quiescent

    def _pre_round(self, t: Time) -> None:
        """Faulted-run round prologue: release delayed datagrams, then
        drop the inboxes of crashed processes (in that order, so a
        datagram released to a dead destination is dropped the same
        round it lands)."""
        self.buffer.release(t)
        self._drop_crashed(t)

    def _drop_crashed(self, t: Time) -> None:
        """Drop pending datagrams of processes crashed by time ``t``.

        Replaces the former per-round every-inbox sweep: with zero
        crashes this is free, and with crashes it touches only the dead
        processes' inboxes (a message addressed to a dead process is
        still dropped at the start of the next round, exactly as
        before).  Datagrams a link fault is still sequestering for a
        dead destination are purged too — a delayed datagram to a
        crashed process would otherwise be released into a queue nobody
        will ever drain, distorting ``in_transit()`` and the
        delay-heap-aware quiescence check.
        """
        schedule = self._crash_schedule
        while (
            self._crash_cursor < len(schedule)
            and schedule[self._crash_cursor][0] <= t
        ):
            p = schedule[self._crash_cursor][1]
            self._dead.append(p)
            if p in self.pattern.recovery_times:
                # The process will rejoin: capture its durable state
                # now (the state after its last alive step).  Automata
                # without a ``snapshot`` method are treated as fully
                # durable — the rejoin resumes their live state.
                snapshot = getattr(self.automata[p], "snapshot", None)
                if callable(snapshot):
                    self._snapshots[p] = snapshot()
            self._crash_cursor += 1
        rejoins = self._recover_schedule
        while (
            self._recover_cursor < len(rejoins)
            and rejoins[self._recover_cursor][0] <= t
        ):
            when, p = rejoins[self._recover_cursor]
            self._recover_cursor += 1
            if p in self._dead:
                self._dead.remove(p)
            snapshot = self._snapshots.pop(p, None)
            digest = None
            if snapshot is not None:
                restore = getattr(self.automata[p], "restore", None)
                if callable(restore):
                    restore(snapshot)
                digest = snapshot_hash(snapshot)
            self.recoveries.append((when, p, digest))
        for p in self._dead:
            if self.buffer.has_pending(p) or self.buffer.delayed_count():
                self.buffer.drop_all_for(p)

    # -- Stepping --------------------------------------------------------------

    def step_process(self, p: ProcessId) -> None:
        """Execute one step of ``p`` (receive, sample, transition)."""
        t = self._scheduler.time
        if not self.pattern.is_alive(p, t):
            raise SimulationError(f"{p} is crashed and cannot step")
        detector = self.detectors.get(p)
        sample = detector.query(p, t) if detector else None
        ctx = self._ctx.bind(p, t, sample, self.outputs[p])
        automaton = self.automata[p]
        if p not in self._started:
            self._started.add(p)
            automaton.on_start(ctx)
        datagram = self.buffer.receive(p)
        automaton.on_step(ctx, datagram)
        self.steps_taken[p] += 1

    def round(self, participation: Optional[ProcessSet] = None) -> int:
        """One fair round: every eligible alive process takes one step.

        The intra-round order is seeded-random.  Datagrams addressed to
        processes crashed by now are dropped (they will never receive).
        Returns the number of steps taken.

        With ``event_driven=True`` a started process whose automaton
        reports :meth:`Automaton.idle` and whose inbox is empty is
        skipped: its step would receive the null message and, by the
        automaton's own declaration, change nothing.  The full shuffled
        order is still drawn first, so the schedule of the processes
        that *do* step is identical to the scan kernel's.

        The per-round contract itself lives in the shared
        :class:`repro.runtime.Scheduler`; this is a thin delegation.
        Returns the number of *productive* steps — a step an idle
        automaton took on an empty inbox is fair-scheduling overhead,
        not progress, and does not count.
        """
        self._scheduler.scheduling = "event" if self.event_driven else "scan"
        return self._scheduler.round(participation)

    def run(
        self,
        rounds: int,
        participation: Optional[ProcessSet] = None,
        stop_when: Optional[Callable[[], bool]] = None,
        quiescent_rounds: Optional[int] = None,
    ) -> int:
        """Run up to ``rounds`` fair rounds; stop early on ``stop_when``.

        With ``quiescent_rounds`` set, the run additionally halts once
        that many consecutive rounds take zero productive steps — the
        same semantics as :meth:`repro.core.MulticastSystem.run` — and
        :attr:`last_run_quiescent` reports whether it did.  Without it
        the full budget executes (the legacy contract) and the flag
        reports whether the run *ended* idle.
        """
        self._scheduler.scheduling = "event" if self.event_driven else "scan"
        outcome = self._scheduler.run(
            rounds,
            participation,
            quiescent_rounds=1 if quiescent_rounds is None else quiescent_rounds,
            stop_when=stop_when,
            halt_on_quiescence=quiescent_rounds is not None,
        )
        return outcome.rounds

    # -- Introspection -------------------------------------------------------------

    def outputs_of(self, p: ProcessId) -> Tuple[Any, ...]:
        return tuple(value for _, value in self.outputs[p])

    def total_messages(self) -> int:
        return self.buffer.sent_count
