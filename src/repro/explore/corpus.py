"""The exploration corpus: entries that bought novel coverage.

AFL's central data structure, transplanted: a corpus entry is a
scenario spec (the cell identity: spec hash, seed, backend, fault plan,
delay model) remembered because its run contributed at least one
fingerprint nobody had produced before.  Entries are content-addressed
by :func:`repro.workloads.runner.scenario_cache_key` — the same key the
campaign result cache uses — so corpus persistence, result caching and
shrink memoization all speak one address space.

The **energy schedule** decides which parent the mutation engine
breeds from: an entry's energy is ``sum(1 / global_count[fp])`` over
its fingerprints, so entries holding *rare* coverage (fingerprints few
runs produce) are exponentially more attractive than entries whose
coverage everybody reproduces.  Counts accumulate over every evaluated
run, not just admitted entries — a fingerprint that every random draw
hits decays toward zero energy even though some corpus entry owns it.

Persistence is one JSON file per entry under the corpus root (same
two-level fan-out and atomic-write discipline as the campaign cache).
Global fingerprint counts are rebuilt from the entries on load; counts
contributed by *rejected* runs are not persisted, so a reloaded corpus
starts with slightly flatter energies than the live one had.  That is a
deliberate trade: exact count persistence would need a write per
evaluation instead of one per admission.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Mapping, Optional, Tuple

from repro.explore.coverage import coverage_of
from repro.workloads.runner import scenario_cache_key
from repro.workloads.spec import ScenarioSpec

#: Bumped on breaking changes to the corpus entry layout.
CORPUS_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CorpusEntry:
    """One admitted scenario and the coverage it bought.

    Attributes:
        key: the cell's content address (:func:`scenario_cache_key`).
        spec: the full scenario (replayable on its own).
        fingerprints: the run's whole fingerprint set.
        novel: the subset that was unseen at admission time — the
            entry's reason to exist.
    """

    key: str
    spec: ScenarioSpec
    fingerprints: FrozenSet[str]
    novel: FrozenSet[str]

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema": CORPUS_SCHEMA_VERSION,
            "key": self.key,
            "spec": self.spec.to_json(),
            "fingerprints": sorted(self.fingerprints),
            "novel": sorted(self.novel),
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "CorpusEntry":
        return cls(
            key=data["key"],
            spec=ScenarioSpec.from_json(data["spec"]),
            fingerprints=frozenset(data["fingerprints"]),
            novel=frozenset(data["novel"]),
        )


class Corpus:
    """The admitted entries plus the global fingerprint frequencies.

    Args:
        root: optional persistence directory.  ``None`` keeps the
            corpus in-memory only (tests, one-shot campaigns); a path
            loads any existing entries eagerly and persists admissions
            as they happen.
    """

    def __init__(self, root: Optional[str] = None) -> None:
        self.root = root
        self.entries: Dict[str, CorpusEntry] = {}
        #: fingerprint -> number of evaluated runs that produced it.
        self.counts: Dict[str, int] = {}
        self.evaluated = 0
        self.admitted = 0
        if root is not None and os.path.isdir(root):
            self._load(root)

    # -- Persistence -------------------------------------------------------

    def _path(self, key: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, key[:2], key + ".json")

    def _load(self, root: str) -> None:
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                try:
                    with open(
                        os.path.join(shard_dir, name), encoding="utf-8"
                    ) as fh:
                        data = json.load(fh)
                    if data.get("schema") != CORPUS_SCHEMA_VERSION:
                        continue
                    entry = CorpusEntry.from_json(data)
                except (OSError, ValueError, KeyError):
                    continue  # corruption is a missing entry, never a crash
                self.entries[entry.key] = entry
                for fp in entry.fingerprints:
                    self.counts[fp] = self.counts.get(fp, 0) + 1

    def _persist(self, entry: CorpusEntry) -> None:
        if self.root is None:
            return
        path = self._path(entry.key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry.to_json(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    # -- Admission ---------------------------------------------------------

    def consider(
        self, spec: ScenarioSpec, row: Mapping[str, Any]
    ) -> Tuple[Optional[CorpusEntry], FrozenSet[str]]:
        """Account one evaluated run; admit it if it bought coverage.

        Returns ``(entry or None, the novel fingerprints)``.  Counts
        are updated for *every* fingerprint of every evaluated run —
        that is what makes energies decay on common behaviour.
        """
        fps = coverage_of(row)
        novel = frozenset(fp for fp in fps if fp not in self.counts)
        self.evaluated += 1
        for fp in fps:
            self.counts[fp] = self.counts.get(fp, 0) + 1
        if not novel:
            return None, novel
        entry = CorpusEntry(
            key=scenario_cache_key(spec),
            spec=spec,
            fingerprints=fps,
            novel=novel,
        )
        self.entries[entry.key] = entry
        self.admitted += 1
        self._persist(entry)
        return entry, novel

    # -- Energy schedule ---------------------------------------------------

    def energy(self, entry: CorpusEntry) -> float:
        """Rarity-weighted attractiveness of an entry for mutation."""
        return sum(
            1.0 / self.counts.get(fp, 1) for fp in entry.fingerprints
        )

    def pick(self, rng: random.Random) -> Optional[CorpusEntry]:
        """An energy-weighted draw from the corpus (None when empty).

        Iteration order is the sorted key order, so the draw is a pure
        function of ``(corpus state, rng state)``.
        """
        if not self.entries:
            return None
        keys = sorted(self.entries)
        weights = [self.energy(self.entries[k]) for k in keys]
        total = sum(weights)
        if total <= 0:
            return self.entries[rng.choice(keys)]
        point = rng.random() * total
        acc = 0.0
        for key, weight in zip(keys, weights):
            acc += weight
            if point <= acc:
                return self.entries[key]
        return self.entries[keys[-1]]

    # -- Reporting ---------------------------------------------------------

    def distinct_coverage(self) -> int:
        """How many distinct fingerprints all evaluated runs produced."""
        return len(self.counts)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self.entries),
            "distinct_fingerprints": len(self.counts),
            "evaluated": self.evaluated,
            "admitted": self.admitted,
        }
