"""``python -m repro.explore`` — the coverage-guided exploration CLI.

Runs a budgeted :class:`repro.explore.driver.Explorer` campaign over the
standard base scenarios (one fault-free cell per requested backend),
prints the deduplicated triage ledger, and writes ``report.json`` plus
one self-contained repro file per distinct violation into ``--out``.

Two flags turn this into the nightly soak lane:

* ``--baseline FILE`` compares the triage keys against a committed
  ``{"known": [...]}`` baseline and exits non-zero **only when a new
  distinct violation appears** — known violations (retained quirks,
  intrinsic baselines) keep the lane green;
* ``--wall-budget SECONDS`` bounds the campaign by wall clock instead
  of (or in addition to) ``--iterations``, so the nightly job costs a
  fixed amount regardless of how fast the runners are.

``--compare-random`` additionally runs the pure-sampling ablation
(``strategy="random"``) under the same seed and budget and prints the
coverage comparison — the quick console version of the committed
guided-vs-random curves in ``benchmarks/BENCH_explore.json``.

The ``supersede-wait`` rediscovery (EXPERIMENTS.md "Exploring the fault
space") is::

    python -m repro.explore --backends kernel --quirks supersede-wait \\
        --iterations 48 --seed 7 --out explore-artifacts
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
from typing import List, Optional, Tuple

from repro.explore.driver import Explorer, load_baseline
from repro.groups.topology import paper_figure1_topology
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import disjoint_topology

#: Backends the CLI can build a base cell for.
BACKENDS = ("engine", "kernel", "async")


def base_cells(
    backends: Tuple[str, ...],
    quirks: Tuple[str, ...] = (),
    max_rounds: int = 240,
) -> List[ScenarioSpec]:
    """One fault-free base scenario per requested backend.

    The engine and async backends run the paper's Figure 1 topology
    (overlapping groups); the kernel backend needs pairwise-disjoint
    groups, so it runs a two-group disjoint grid.  ``quirks`` attach to
    the **kernel** cell only — the quirk axis selects replicated-log
    kernel behaviour (see ``KNOWN_QUIRKS``) and is inert elsewhere.
    """
    unknown = set(backends) - set(BACKENDS)
    if unknown:
        raise ValueError(
            f"unknown backends {sorted(unknown)}; pick from {BACKENDS}"
        )
    figure1 = TopologySpec.capture(paper_figure1_topology())
    disjoint = TopologySpec.capture(disjoint_topology(2, group_size=3))
    cells: List[ScenarioSpec] = []
    if "engine" in backends:
        cells.append(
            ScenarioSpec(
                topology=figure1,
                sends=(
                    Send(1, "g1", 0),
                    Send(3, "g2", 0),
                    Send(4, "g3", 1),
                    Send(5, "g4", 1),
                ),
                backend="engine",
                max_rounds=max_rounds,
                name="engine-base",
            )
        )
    if "kernel" in backends:
        cells.append(
            ScenarioSpec(
                topology=disjoint,
                sends=(Send(1, "g1", 0), Send(4, "g2", 0)),
                backend="kernel",
                max_rounds=max_rounds,
                quirks=quirks,
                name="kernel-base",
            )
        )
    if "async" in backends:
        cells.append(
            ScenarioSpec(
                topology=figure1,
                sends=(Send(1, "g1", 0), Send(2, "g2", 1)),
                backend="async",
                max_rounds=max(400, max_rounds),
                delay_model=("uniform", 0.1, 0.9),
                name="async-base",
            )
        )
    return cells


class _GracefulStop:
    """SIGINT/SIGTERM → stop at the next iteration boundary.

    The first signal requests a graceful stop: the explorer finishes
    its in-flight iteration (corpus entries and shrink verdicts are
    write-through, so nothing needs an explicit flush), prints the
    partial ledger and writes a partial ``report.json`` marked
    ``interrupted``.  A second signal restores the default disposition
    and re-raises itself — an explorer wedged inside one iteration can
    still be killed the ordinary way.
    """

    def __init__(self) -> None:
        self.signum: Optional[int] = None
        self._previous: dict = {}

    def install(self) -> "_GracefulStop":
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                self._previous[signum] = signal.signal(signum, self._handle)
            except (ValueError, OSError):
                pass  # non-main thread / unsupported platform: no-op
        return self

    def uninstall(self) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()

    def _handle(self, signum, frame) -> None:
        if self.signum is not None:
            # Second signal: give up on graceful, die the normal way.
            signal.signal(signum, signal.SIG_DFL)
            signal.raise_signal(signum)
            return
        self.signum = signum
        name = signal.Signals(signum).name
        print(
            f"\n{name}: finishing the in-flight iteration, then writing "
            f"the partial report (repeat to force-quit)",
            file=sys.stderr,
        )

    def stopped(self) -> bool:
        return self.signum is not None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="coverage-guided fault/schedule exploration",
    )
    parser.add_argument(
        "--iterations", type=int, default=None, metavar="N",
        help="step budget (default: 64 unless --wall-budget is given)",
    )
    parser.add_argument(
        "--wall-budget", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; with --iterations, first exhausted wins",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--strategy", choices=("guided", "random"), default="guided",
    )
    parser.add_argument(
        "--epsilon", type=float, default=0.25,
        help="fresh-draw probability once the corpus is non-empty",
    )
    parser.add_argument(
        "--backends", default="engine,kernel", metavar="BACKENDS",
        help="comma-separated base backends (default: engine,kernel)",
    )
    parser.add_argument(
        "--quirks", default="", metavar="QUIRKS",
        help="comma-separated retained quirks for the kernel base "
        "(e.g. supersede-wait)",
    )
    parser.add_argument(
        "--max-rounds", type=int, default=240,
        help="round budget per run (default: 240; async floors at 400)",
    )
    parser.add_argument(
        "--harness", default="scenario",
        help="shrink/triage harness (default: scenario)",
    )
    parser.add_argument(
        "--corpus-dir", default=None, metavar="DIR",
        help="persistent corpus directory (default: in-memory)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="campaign result cache (shared with python -m repro.campaign)",
    )
    parser.add_argument(
        "--shrink-cache-dir", default=None, metavar="DIR",
        help="persistent shrink-verdict cache",
    )
    parser.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for report.json and repro-*.json files",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help="known-violations baseline; exit non-zero only on NEW "
        "distinct violations",
    )
    parser.add_argument(
        "--compare-random", action="store_true",
        help="also run the pure-random ablation under the same budget",
    )
    args = parser.parse_args(argv)

    iterations = args.iterations
    if iterations is None and args.wall_budget is None:
        iterations = 64
    backends = tuple(
        b.strip() for b in args.backends.split(",") if b.strip()
    )
    quirks = tuple(q.strip() for q in args.quirks.split(",") if q.strip())
    bases = base_cells(backends, quirks=quirks, max_rounds=args.max_rounds)

    explorer = Explorer(
        bases,
        seed=args.seed,
        strategy=args.strategy,
        harness=args.harness,
        epsilon=args.epsilon,
        corpus=args.corpus_dir,
        cache=args.cache_dir,
        shrink_cache=args.shrink_cache_dir,
        out_dir=args.out,
        mutate_delay="async" in backends,
    )
    stop = _GracefulStop().install()
    try:
        report = explorer.run(
            iterations=iterations,
            wall_budget=args.wall_budget,
            should_stop=stop.stopped,
        )
    finally:
        stop.uninstall()

    partial = " (partial: interrupted)" if report.interrupted else ""
    print(
        f"explore[{report.strategy}]{partial}: "
        f"{report.iterations} iterations, "
        f"{report.coverage} distinct fingerprints, "
        f"{explorer.violations} violating runs, "
        f"{len(report.triage)} distinct violations, "
        f"{explorer.inadmissible} inadmissible probes "
        f"[{report.elapsed:.2f}s, {explorer.cache_hits} cache hits]"
    )
    for record in report.triage:
        shrunk = (
            f"shrunk {record['original_events']}->"
            f"{record['minimal_events']} events"
            if "minimal_events" in record
            else "unshrunk"
        )
        print(
            f"  [{','.join(record['properties'])}] x{record['count']} {shrunk} "
            f"plan={record['plan_hash'][:10]} "
            f"(first at iteration {record['first_iteration']})"
        )

    if args.compare_random and not report.interrupted:
        ablation = Explorer(
            bases,
            seed=args.seed,
            strategy="random",
            harness=args.harness,
            mutate_delay="async" in backends,
        )
        random_report = ablation.run(
            iterations=iterations, wall_budget=args.wall_budget
        )
        print(
            f"compare: guided {report.coverage} vs random "
            f"{random_report.coverage} distinct fingerprints under the "
            f"same budget "
            f"({report.coverage - random_report.coverage:+d} guided)"
        )

    if args.out:
        path = report.write(args.out)
        print(f"wrote {path}")

    if args.baseline is not None:
        new = report.new_keys(load_baseline(args.baseline))
        if new:
            print(f"NEW violations vs {args.baseline}:")
            for key in new:
                print(f"  {key}")
            if not report.interrupted:
                return 1
        elif not report.interrupted:
            print(
                f"no new violations vs {args.baseline} "
                f"({len(report.triage)} known)"
            )
    if report.interrupted:
        # Conventional interrupted-by-signal exit code: the partial
        # report is on disk, but the campaign did not run to budget, so
        # neither a green soak lane nor a red one can be claimed.
        return 128 + (stop.signum or signal.SIGINT)
    return 0


if __name__ == "__main__":
    sys.exit(main())
