"""The explorer driver: a budgeted coverage-guided search campaign.

One :class:`Explorer` iteration is the classic fuzzing loop transplanted
onto scenario specs:

1. **choose** — with probability ``epsilon`` (or always, before the
   corpus has entries) draw a fresh adversary for a random base scenario
   via :func:`repro.faults.nemesis.random_plan`; otherwise pick an
   energy-weighted corpus parent and breed from it with the
   :class:`repro.explore.mutate.MutationEngine` (a second corpus pick
   serves as the splice partner);
2. **evaluate** — run the spec through the same code path the campaign
   executor uses (:func:`repro.campaign.executor.execute_spec`), fronted
   by the shared :class:`repro.campaign.cache.CampaignCache`: a cell the
   nightly sweep already ran is a cache hit, not a re-run;
3. **account** — feed the row to the corpus (novel fingerprints admit
   the spec as a future parent) and append one point to the
   coverage-vs-iterations curve;
4. **triage** — when the row violates (a checker fires, the run is
   truncated, or the harness itself crashes), auto-invoke the ddmin
   :class:`repro.faults.shrink.PlanShrinker` (memoized through the
   persistent :class:`ShrinkCache`), write a self-contained repro file,
   and deduplicate by ``(harness, violated properties, shrunk plan
   hash)`` — a hundred witnesses of one bug are one triage record with
   ``count=100``.

``strategy="random"`` disables steps 1's corpus half (every draw is a
fresh ``random_plan``), which is exactly the ablation the committed
guided-vs-random coverage curves compare against.

Everything is deterministic given ``(bases, seed, budget)``: the single
``random.Random(f"explore:{seed}")`` stream drives every choice, runs
are pure functions of their specs, and corpus iteration order is sorted.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.cache import CampaignCache, ensure_cache
from repro.campaign.executor import execute_spec
from repro.explore.corpus import Corpus
from repro.explore.mutate import MutationEngine
from repro.faults.nemesis import MIXES, random_plan
from repro.faults.plan import FaultPlan
from repro.faults.shrink import (
    ShrinkCache,
    ensure_shrink_cache,
    repro_payload,
    shrink_plan,
    write_repro,
)
from repro.workloads.runner import scenario_cache_key, triage_record
from repro.workloads.spec import ScenarioSpec

#: Exploration strategies: ``guided`` is the coverage-guided search,
#: ``random`` the pure-sampling ablation (fresh ``random_plan`` draws
#: only, no corpus feedback).
STRATEGIES = ("guided", "random")

#: Error types that mark an *inadmissible probe*, not a violation.
#: Mutated events are admissible one by one (the ``FaultEvent``
#: constructor guarantees it), but whole-plan admissibility is a
#: property of the plan against the topology and schedule — e.g. a
#: crash burst that leaves some group without a live majority — and the
#: runtime auditor is the authority on that envelope.  When it rejects
#: a run, the *adversary* left the model, not the system: the paper's
#: results only quantify over admissible environments, so the probe is
#: counted (and its error fingerprint still buys coverage) but never
#: triaged.
INADMISSIBLE_ERRORS = ("AdmissibilityError",)


def error_type(row: Dict[str, Any]) -> str:
    """The exception class name of a ``failed`` row."""
    error = str(row.get("error", ""))
    return error.split("(", 1)[0].strip() or "unknown"


@dataclass
class ExploreReport:
    """Everything one exploration campaign produced.

    ``curve`` is the per-iteration ``(coverage, distinct violations)``
    series — the artifact the guided-vs-random comparison plots.
    ``triage`` is the deduplicated violation ledger, one record per
    distinct ``(harness, violated properties, shrunk plan hash)``.
    """

    strategy: str
    harness: str
    seed: int
    iterations: int
    elapsed: float
    coverage: int
    corpus: Dict[str, int]
    inadmissible: int = 0
    curve: List[Dict[str, int]] = field(default_factory=list)
    triage: List[Dict[str, Any]] = field(default_factory=list)
    cache: Optional[Dict[str, int]] = None
    shrink_cache: Optional[Dict[str, int]] = None
    #: True when the campaign stopped early on a stop request (SIGINT /
    #: SIGTERM) rather than exhausting its budget — the report is then
    #: *partial* but internally consistent: the in-flight iteration
    #: completed and every corpus entry and shrink verdict is on disk.
    interrupted: bool = False

    @property
    def triage_keys(self) -> List[str]:
        return [record["key"] for record in self.triage]

    def new_keys(self, known: Iterable[str]) -> List[str]:
        """Triage keys no baseline entry covers — the soak failure signal."""
        baseline = list(known)
        return [
            record["key"]
            for record in self.triage
            if not any(
                matches_baseline(record, entry) for entry in baseline
            )
        ]

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": "explore-report",
            "strategy": self.strategy,
            "harness": self.harness,
            "seed": self.seed,
            "iterations": self.iterations,
            "elapsed": round(self.elapsed, 3),
            "coverage": self.coverage,
            "corpus": self.corpus,
            "inadmissible": self.inadmissible,
            "curve": self.curve,
            "triage": self.triage,
            "cache": self.cache,
            "shrink_cache": self.shrink_cache,
            "interrupted": self.interrupted,
        }

    def write(self, out_dir: str) -> str:
        """Write ``report.json`` into ``out_dir``; returns its path."""
        os.makedirs(out_dir, exist_ok=True)
        path = os.path.join(out_dir, "report.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        return path


def matches_baseline(record: Dict[str, Any], entry: str) -> bool:
    """Whether one baseline entry covers one triage record.

    Two entry forms:

    * an **exact key** — ``harness|properties|shrunk plan hash`` — pins
      one specific minimized counterexample;
    * a **class pattern** — ``harness|properties|kind:<k>`` — covers
      every finding with the same harness and violated properties whose
      minimal plan *contains* an event of kind ``<k>``.  This is how a
      known finding class (e.g. the kernel's crash-induced
      non-quiescence, whose shrunk plans differ in timing and targets
      on every rediscovery) stays baselined without enumerating hashes.
    """
    if entry == record["key"]:
        return True
    parts = entry.split("|")
    if len(parts) == 3 and parts[2].startswith("kind:"):
        return (
            parts[0] == record["harness"]
            and parts[1] == ",".join(record["properties"])
            and parts[2][len("kind:"):] in record.get("kinds", ())
        )
    return False


def load_baseline(path: str) -> List[str]:
    """The known-violation entries of a committed soak baseline.

    The file is ``{"known": [entry, ...]}`` (exact keys and/or
    ``kind:`` class patterns — see :func:`matches_baseline`); a missing
    file is an empty baseline (every violation is new — the bootstrap
    case).
    """
    try:
        with open(path, encoding="utf-8") as fh:
            data = json.load(fh)
    except OSError:
        return []
    return list(data.get("known", ()))


class Explorer:
    """The coverage-guided fault/schedule explorer.

    Args:
        bases: the base scenarios to explore around (fault-free cells;
            the search never mutates their workload half — topology,
            sends, crashes — only the adversary axes).
        seed: the campaign seed; the whole run is a pure function of
            ``(bases, seed, budget, caches on disk)``.
        strategy: ``"guided"`` or ``"random"`` (the ablation).
        harness: the failure predicate namespace for shrinking
            (:data:`repro.faults.shrink.HARNESSES`).
        epsilon: fresh-draw probability once the corpus is non-empty.
        mixes: named nemesis mixes fresh draws sample from.
        corpus: a :class:`Corpus`, a directory path, or ``None`` for an
            in-memory corpus.
        cache: campaign result cache (instance, path or ``None``).
        shrink_cache: shrink verdict cache (instance, path or ``None``).
        out_dir: where repro files are written (``None`` keeps payloads
            in the triage records only).
        mutate_delay: enable the async delay-model mutation axis.
        horizon: window bound for freshly drawn mutation events.
    """

    def __init__(
        self,
        bases: Sequence[ScenarioSpec],
        seed: int = 0,
        strategy: str = "guided",
        harness: str = "scenario",
        epsilon: float = 0.25,
        mixes: Tuple[str, ...] = MIXES,
        corpus: Optional[Any] = None,
        cache: Optional[Any] = None,
        shrink_cache: Optional[Any] = None,
        out_dir: Optional[str] = None,
        mutate_delay: bool = False,
        horizon: int = 12,
    ) -> None:
        if not bases:
            raise ValueError("explorer needs at least one base scenario")
        if strategy not in STRATEGIES:
            raise ValueError(
                f"unknown strategy {strategy!r}; pick from {STRATEGIES}"
            )
        if not 0.0 < epsilon <= 1.0:
            raise ValueError(f"epsilon must be in (0, 1], got {epsilon}")
        self.bases = tuple(bases)
        self.seed = seed
        self.strategy = strategy
        self.harness = harness
        self.epsilon = epsilon
        self.mixes = tuple(mixes)
        if isinstance(corpus, str):
            corpus = Corpus(corpus)
        self.corpus = corpus if corpus is not None else Corpus()
        self.cache: Optional[CampaignCache] = ensure_cache(cache)
        self.shrink_cache: Optional[ShrinkCache] = ensure_shrink_cache(
            shrink_cache
        )
        self.out_dir = out_dir
        self.mutate_delay = mutate_delay
        self.horizon = horizon
        self.rng = random.Random(f"explore:{seed}")
        self.iterations = 0
        self.executed = 0
        self.cache_hits = 0
        self.violations = 0
        self.inadmissible = 0
        self.curve: List[Dict[str, int]] = []
        #: triage key -> deduplicated violation record.
        self.triage: Dict[str, Dict[str, Any]] = {}
        #: original cell address -> triage key (skips re-shrinking an
        #: already-triaged cell the search stumbles on again).
        self._triaged_cells: Dict[str, str] = {}

    # -- Choosing the next spec --------------------------------------------

    def _engine_for(self, spec: ScenarioSpec) -> MutationEngine:
        topology = spec.topology
        return MutationEngine(
            process_count=topology.process_count,
            groups=tuple(name for name, _ in topology.groups),
            horizon=self.horizon,
            mutate_delay=self.mutate_delay,
        )

    def _fresh(self) -> ScenarioSpec:
        """A fresh adversary: random base, random seed, random_plan mix."""
        base = self.rng.choice(self.bases)
        seed = self.rng.randrange(1 << 16)
        mix = self.rng.choice(self.mixes)
        topology = base.topology
        plan = random_plan(
            seed,
            mix,
            process_count=topology.process_count,
            groups=tuple(name for name, _ in topology.groups),
        )
        return dataclasses.replace(
            base,
            seed=seed,
            faults=None if plan.is_empty() else plan,
            name=f"{base.backend}:{mix}:s{seed}:f{plan.plan_hash()[:6]}",
        )

    def _next_spec(self) -> ScenarioSpec:
        if (
            self.strategy == "random"
            or not self.corpus.entries
            or self.rng.random() < self.epsilon
        ):
            return self._fresh()
        parent = self.corpus.pick(self.rng)
        assert parent is not None  # entries is non-empty
        partner = self.corpus.pick(self.rng)
        engine = self._engine_for(parent.spec)
        child = engine.mutate(
            parent.spec,
            self.rng,
            partner=partner.spec if partner is not None else None,
        )
        plan = child.faults or FaultPlan()
        return dataclasses.replace(
            child,
            name=(
                f"{child.backend}:mut:s{child.seed}"
                f":f{plan.plan_hash()[:6]}"
            ),
        )

    # -- Evaluation ---------------------------------------------------------

    def _evaluate(self, spec: ScenarioSpec) -> Dict[str, Any]:
        if self.cache is not None:
            row = self.cache.get(spec)
            if row is not None:
                self.cache_hits += 1
                return row
        row = execute_spec((0, spec))
        self.executed += 1
        if self.cache is not None:
            self.cache.put(spec, row)
        return row

    @staticmethod
    def violated_properties(row: Dict[str, Any]) -> List[str]:
        """The violation labels of one row (empty = clean run).

        A harness crash is labelled by its error type — except the
        :data:`INADMISSIBLE_ERRORS`, which mean the adversary left the
        admissibility envelope and the run proves nothing (empty, like
        a clean run; the driver counts these separately).  A truncated
        run carries the pseudo-property ``"truncated"`` (it never
        witnessed Termination — the stall class of bug).
        """
        if row.get("status") != "ok":
            etype = error_type(row)
            if etype in INADMISSIBLE_ERRORS:
                return []
            return [f"harness-error:{etype}"]
        violated = sorted(
            prop
            for prop, count in (row.get("verdicts") or {}).items()
            if count
        )
        if row.get("truncated"):
            violated.append("truncated")
        return violated

    # -- Triage -------------------------------------------------------------

    def _triage_violation(
        self,
        spec: ScenarioSpec,
        row: Dict[str, Any],
        violated: List[str],
        iteration: int,
    ) -> None:
        self.violations += 1
        label = ",".join(violated)
        cell = scenario_cache_key(spec)
        known = self._triaged_cells.get(cell)
        if known is not None:
            self.triage[known]["count"] += 1
            return

        original = spec.faults or FaultPlan()
        minimal: Optional[FaultPlan] = None
        shrinker = None
        if row.get("status") == "ok":
            try:
                minimal, shrinker = shrink_plan(
                    spec, harness=self.harness, cache=self.shrink_cache
                )
            except ValueError:
                # The campaign row and the shrink harness disagree (e.g.
                # a custom harness judging a scenario row): triage the
                # witness unshrunk rather than dropping it.
                minimal = None

        plan_hash = (
            minimal.plan_hash() if minimal is not None else original.plan_hash()
        )
        key = f"{self.harness}|{label}|{plan_hash}"
        self._triaged_cells[cell] = key
        existing = self.triage.get(key)
        if existing is not None:
            existing["count"] += 1
            return

        triaged_plan = minimal if minimal is not None else original
        record: Dict[str, Any] = {
            "key": key,
            "harness": self.harness,
            "properties": violated,
            "plan_hash": plan_hash,
            # The minimal plan's kind set — the coarse *class* of the
            # finding, which baseline entries can match with a
            # ``kind:<k>`` pattern (see :func:`matches_baseline`).
            "kinds": sorted({event.kind for event in triaged_plan}),
            "count": 1,
            "first_iteration": iteration,
            "witness": triage_record(spec),
            "original_events": len(original),
        }
        if minimal is not None and shrinker is not None:
            payload = repro_payload(
                spec, minimal, original, harness=self.harness,
                shrinker=shrinker,
            )
            record["minimal_events"] = len(minimal)
            record["minimal_plan"] = minimal.to_json()
            record["shrink"] = payload["shrink"]
            if self.out_dir is not None:
                os.makedirs(self.out_dir, exist_ok=True)
                name = (
                    f"repro-{len(self.triage):03d}-{plan_hash[:10]}.json"
                )
                write_repro(os.path.join(self.out_dir, name), payload)
                record["repro"] = name
            else:
                record["payload"] = payload
        self.triage[key] = record

    # -- The loop -----------------------------------------------------------

    def run(
        self,
        iterations: Optional[int] = None,
        wall_budget: Optional[float] = None,
        should_stop: Optional[Any] = None,
    ) -> ExploreReport:
        """Explore until either budget is spent; returns the report.

        At least one of ``iterations`` (step budget) and ``wall_budget``
        (seconds) must be given; with both, whichever runs out first
        stops the campaign.  Calling ``run`` again continues the same
        search (the rng, corpus and triage ledger persist on the
        instance), which is how a soak lane strings fixed-size bursts
        together under one wall clock.

        ``should_stop`` (a nullary callable) is polled between
        iterations: when it returns True the campaign stops at that
        boundary and the report comes back with ``interrupted=True``.
        Nothing is lost on an interrupt — the corpus and shrink cache
        persist write-through per entry, so the partial report plus the
        on-disk state are exactly the campaign prefix that ran.
        """
        if iterations is None and wall_budget is None:
            raise ValueError(
                "explorer needs a budget: iterations, wall_budget or both"
            )
        start = time.monotonic()
        done = 0
        interrupted = False
        while True:
            if should_stop is not None and should_stop():
                interrupted = True
                break
            if iterations is not None and done >= iterations:
                break
            if (
                wall_budget is not None
                and time.monotonic() - start >= wall_budget
            ):
                break
            spec = self._next_spec()
            row = self._evaluate(spec)
            self.corpus.consider(spec, row)
            if (
                row.get("status") != "ok"
                and error_type(row) in INADMISSIBLE_ERRORS
            ):
                self.inadmissible += 1
            violated = self.violated_properties(row)
            if violated:
                self._triage_violation(
                    spec, row, violated, iteration=self.iterations + done
                )
            done += 1
            self.curve.append(
                {
                    "iteration": self.iterations + done,
                    "coverage": self.corpus.distinct_coverage(),
                    "violations": self.violations,
                    "distinct_triage": len(self.triage),
                }
            )
        self.iterations += done
        return self.report(
            elapsed=time.monotonic() - start, interrupted=interrupted
        )

    def report(
        self, elapsed: float = 0.0, interrupted: bool = False
    ) -> ExploreReport:
        """The campaign report (triage records sorted by first sighting)."""
        records = sorted(
            self.triage.values(), key=lambda r: r["first_iteration"]
        )
        return ExploreReport(
            strategy=self.strategy,
            harness=self.harness,
            seed=self.seed,
            iterations=self.iterations,
            elapsed=elapsed,
            coverage=self.corpus.distinct_coverage(),
            corpus=self.corpus.stats(),
            inadmissible=self.inadmissible,
            curve=list(self.curve),
            triage=records,
            cache=self.cache.stats() if self.cache is not None else None,
            shrink_cache=(
                {
                    "hits": self.shrink_cache.hits,
                    "misses": self.shrink_cache.misses,
                    "stored": self.shrink_cache.stored,
                }
                if self.shrink_cache is not None
                else None
            ),
            interrupted=interrupted,
        )
