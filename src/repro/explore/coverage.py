"""Coverage extraction: one campaign row -> a fingerprint set.

A *fingerprint* is a short string naming one observed behaviour of a
run: an outcome flag, a per-property verdict, a log2-bucketed trace
counter, a wait-reason bucket, or one interleaving transition signature
from the :class:`repro.runtime.core.ExecutionCore` stream.  The
extractor is a **pure function of the row** — byte-identical rows
produce identical fingerprint sets, which is what lets cached campaign
rows (cache schema 2 carries the full trace section) stand in for live
runs during warm exploration.

Counters are bucketed by ``int.bit_length()`` (log2) so coverage is
about *regimes*, not exact totals: a run with 1000 quorum stalls and
one with 1024 land in the same bucket, while 0, 1 and 100 are all
distinct.  Without bucketing every run would be "novel" and the corpus
would admit everything; with it, novelty means a genuinely different
shape of execution.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping

#: Trace counters fingerprinted as log2 buckets, in row-layout order.
TRACE_COUNTERS = (
    "rounds",
    "skipped",
    "full_scan_rounds",
    "quorum_queries",
    "quorum_stalls",
    "gamma_queries",
    "indicator_queries",
)


def bucket(value: int) -> int:
    """The log2 bucket of a nonnegative counter (0 -> 0, 1 -> 1,
    2-3 -> 2, 4-7 -> 3, ...)."""
    return int(value).bit_length()


def coverage_of(row: Mapping[str, Any]) -> FrozenSet[str]:
    """The fingerprint set of one campaign result row.

    Works on both live rows (:meth:`ScenarioResult.to_row`) and cached
    rows; rows predating cache schema 2 simply yield fewer fingerprints
    (their trace section lacks the coverage signals) — the extractor
    never raises on missing keys.
    """
    fps = set()
    status = row.get("status", "ok")
    if status != "ok":
        # A harness crash is its own coverage point: the error type is
        # the signal (a new exception class is a new behaviour).
        error = str(row.get("error", ""))
        etype = error.split("(", 1)[0].strip() or "unknown"
        fps.add("outcome:failed")
        fps.add(f"error:{etype}")
        return frozenset(fps)

    backend = row.get("backend", "engine")
    fps.add(f"backend:{backend}")
    for flag in ("delivered_everywhere", "truncated", "quiescent"):
        fps.add(f"outcome:{flag}:{bool(row.get(flag))}")
    fps.add(f"deliveries:b{bucket(int(row.get('deliveries', 0)))}")
    fps.add(f"skipped_sends:b{bucket(int(row.get('skipped_sends', 0)))}")

    for prop, count in (row.get("verdicts") or {}).items():
        fps.add(f"verdict:{prop}:{'violated' if count else 'ok'}")

    trace = row.get("trace") or {}
    for counter in TRACE_COUNTERS:
        if counter in trace:
            fps.add(f"trace:{counter}:b{bucket(int(trace[counter]))}")
    for reason, count in (trace.get("wait_reasons") or {}).items():
        fps.add(f"wait:{reason}:b{bucket(int(count))}")
    interleaving = trace.get("interleaving") or {}
    fps.add(f"interleave:n:b{bucket(int(interleaving.get('transitions', 0)))}")
    for signature in interleaving.get("signatures", ()):
        fps.add(f"interleave:{signature}")

    faults = row.get("faults") or {}
    fps.add(f"plan:events:b{bucket(int(faults.get('events', 0)))}")
    for stat, count in (faults.get("stats") or {}).items():
        fps.add(f"inject:{stat}:b{bucket(int(count))}")
    return frozenset(fps)


def coverage_stats(fps: FrozenSet[str]) -> Dict[str, int]:
    """Per-prefix fingerprint counts (report/debug aid)."""
    prefixes: Dict[str, int] = {}
    for fp in fps:
        prefix = fp.split(":", 1)[0]
        prefixes[prefix] = prefixes.get(prefix, 0) + 1
    return dict(sorted(prefixes.items()))
