"""The mutation engine: breed new scenarios from corpus parents.

Mutations act on the three adversary axes a scenario exposes:

* **fault-plan structure** — add a freshly drawn admissible event,
  remove one, retime/retarget/resize one (``dataclasses.replace``
  guarded by the :class:`FaultEvent` constructor, so an inadmissible
  mutation is retried as a different operator instead of producing a
  broken plan), or *splice* the plan with a second corpus parent's
  (AFL's crossover);
* **schedule seed** — jitter or reroll the engine scheduling seed (a
  different shuffle stream over the same adversary);
* **delay model** — for the async backend: switch the distribution
  kind, jitter its parameters, or grow/shrink/retune the slow-pairs
  set (the adversarial pair *search* ROADMAP item 1 names).

Every operator is admissible by construction: fault events pass
``FaultEvent.__post_init__``, delay specs pass
``canonical_delay_spec``, and the spec itself re-validates in
``ScenarioSpec.__post_init__``.  The engine never mutates the workload
half of the spec (topology, sends, crashes, variant) — the explorer
searches the *adversary* space around fixed base scenarios, mirroring
how the nemesis campaign holds its cells fixed per backend.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Any, List, Optional, Sequence, Tuple

from repro.faults.plan import (
    DETECTOR_KINDS,
    FaultEvent,
    FaultPlan,
    FaultPlanError,
    LINK_KINDS,
    RECOVERY_KINDS,
)
from repro.workloads.spec import ScenarioSpec

#: How many mutation operators one ``mutate`` call may stack (1-3, an
#: AFL-style havoc burst kept small because scenario runs are cheap but
#: not free).
MAX_STACK = 3


def random_event(
    rng: random.Random,
    process_count: int,
    groups: Sequence[str],
    horizon: int,
) -> FaultEvent:
    """Draw one admissible event of a uniformly chosen kind.

    Unlike :func:`repro.faults.nemesis.random_plan`, every kind is
    reachable — including ``crash_burst`` and ``churn``, which the
    named mixes draw rarely or never, and the recovery axis
    (``partition`` / ``crash_recover`` / ``link_flaky``).  That
    asymmetry is deliberate: kinds only the *guided* search injects are
    coverage pure random sampling cannot buy.
    """
    kind = rng.choice(
        LINK_KINDS + DETECTOR_KINDS + ("churn", "link_flaky")
        + (("crash_burst",) if process_count >= 3 else ())
        + (("partition",) if process_count >= 2 else ())
        + (("crash_recover",) if process_count >= 3 else ())
    )
    start = rng.randint(1, max(1, horizon))
    if kind == "link_flaky":
        return FaultEvent(
            kind=kind,
            start=start,
            until=start + rng.randint(2, 6),
            amount=rng.randint(0, 3),
        )
    if kind == "partition":
        size = rng.randint(1, max(1, process_count // 2))
        component = tuple(
            sorted(rng.sample(range(1, process_count + 1), size))
        )
        return FaultEvent(
            kind=kind,
            start=start,
            until=start + rng.randint(2, 8),
            targets=component,
        )
    if kind == "crash_recover":
        return FaultEvent(
            kind=kind,
            start=max(2, start),
            until=max(2, start) + rng.randint(3, 8),
            targets=(rng.randint(1, process_count),),
        )
    if kind in LINK_KINDS:
        amount = rng.randint(2, 4) if kind == "link_reorder" else rng.randint(1, 4)
        return FaultEvent(
            kind=kind,
            start=start,
            until=start + rng.randint(2, 8),
            amount=amount,
        )
    if kind == "sigma_noise":
        scope = rng.choice((None,) + tuple(groups)) if groups else None
        return FaultEvent(
            kind=kind, group=scope, start=start,
            until=start + rng.randint(2, 8),
        )
    if kind == "omega_late":
        scope = rng.choice((None,) + tuple(groups)) if groups else None
        return FaultEvent(
            kind=kind, group=scope, until=rng.randint(3, 2 * horizon),
        )
    if kind == "gamma_delay":
        return FaultEvent(kind=kind, amount=rng.randint(1, 4))
    if kind == "churn":
        victim = rng.randint(1, max(1, process_count))
        return FaultEvent(
            kind=kind, start=start,
            until=start + rng.randint(2, 6), targets=(victim,),
        )
    # crash_burst
    victim = rng.randint(1, process_count)
    return FaultEvent(
        kind="crash_burst",
        start=max(2, start),
        amount=rng.randint(1, 3),
        targets=(victim,),
    )


class MutationEngine:
    """Stacked random mutations over a spec's adversary axes.

    Args:
        process_count: universe size of the base topology (event
            targeting bounds).
        groups: group names (detector-event scoping).
        horizon: rough window bound for freshly drawn events.
        mutate_delay: whether the delay-model axis is in play (only
            meaningful for async-backend specs; the round backends
            ignore ``delay_model``, so mutating it there would burn
            iterations re-running identical cells under new hashes).
    """

    def __init__(
        self,
        process_count: int,
        groups: Sequence[str],
        horizon: int = 12,
        mutate_delay: bool = False,
    ) -> None:
        self.process_count = process_count
        self.groups = tuple(groups)
        self.horizon = horizon
        self.mutate_delay = mutate_delay

    # -- Plan operators ----------------------------------------------------

    def _op_add(self, plan: FaultPlan, rng: random.Random) -> FaultPlan:
        return plan.adding(
            random_event(rng, self.process_count, self.groups, self.horizon)
        )

    def _op_remove(self, plan: FaultPlan, rng: random.Random) -> FaultPlan:
        if plan.is_empty():
            return plan
        return plan.without(rng.choice(plan.events))

    def _op_tweak(self, plan: FaultPlan, rng: random.Random) -> FaultPlan:
        """Retime, retarget or resize one event (validity-guarded)."""
        if plan.is_empty():
            return plan
        event = rng.choice(plan.events)
        fields: dict = {}
        choice = rng.random()
        if choice < 0.4:  # retime: shift the window
            shift = rng.randint(-3, 6)
            fields["start"] = max(0, event.start + shift)
            if event.until:
                fields["until"] = max(fields["start"], event.until + shift)
        elif choice < 0.7:  # resize: amount / window length jitter
            if event.amount:
                fields["amount"] = max(1, event.amount + rng.randint(-1, 2))
            elif event.until > event.start:
                fields["until"] = event.start + max(
                    1, (event.until - event.start) + rng.randint(-2, 4)
                )
        else:  # retarget: scope the event differently
            if event.kind in LINK_KINDS:
                fields["src"] = rng.choice(
                    (None, rng.randint(1, max(1, self.process_count)))
                )
                fields["dst"] = rng.choice(
                    (None, rng.randint(1, max(1, self.process_count)))
                )
            elif event.group is not None or self.groups:
                fields["group"] = (
                    rng.choice((None,) + self.groups) if self.groups else None
                )
            elif event.targets:
                fields["targets"] = (
                    rng.randint(1, max(1, self.process_count)),
                )
        if not fields:
            return plan
        try:
            return plan.replacing(event, dataclasses.replace(event, **fields))
        except FaultPlanError:
            return plan  # the tweak left the envelope: keep the parent

    def _op_splice(
        self,
        plan: FaultPlan,
        rng: random.Random,
        other: Optional[FaultPlan],
    ) -> FaultPlan:
        if other is None or other.is_empty():
            return plan
        keep_self = [i for i in range(len(plan)) if rng.random() < 0.5]
        keep_other = [i for i in range(len(other)) if rng.random() < 0.5]
        if not keep_self and not keep_other:
            keep_other = [rng.randrange(len(other))]
        return plan.spliced(other, keep_self, keep_other)

    # -- Axis operators ----------------------------------------------------

    def _mutate_plan(
        self,
        spec: ScenarioSpec,
        rng: random.Random,
        partner: Optional[ScenarioSpec],
    ) -> ScenarioSpec:
        plan = spec.faults or FaultPlan()
        roll = rng.random()
        if roll < 0.40:
            plan = self._op_add(plan, rng)
        elif roll < 0.60:
            plan = self._op_remove(plan, rng)
        elif roll < 0.85:
            plan = self._op_tweak(plan, rng)
        else:
            plan = self._op_splice(
                plan, rng, partner.faults if partner is not None else None
            )
        return spec.faulted(None if plan.is_empty() else plan)

    def _mutate_seed(
        self, spec: ScenarioSpec, rng: random.Random
    ) -> ScenarioSpec:
        if rng.random() < 0.5:
            seed = spec.seed + rng.randint(1, 4)
        else:
            seed = rng.randrange(1 << 16)
        return dataclasses.replace(spec, seed=seed)

    def _mutate_delay(
        self, spec: ScenarioSpec, rng: random.Random
    ) -> ScenarioSpec:
        from repro.runtime.delay import canonical_delay_spec

        current: Tuple[Any, ...] = spec.delay_model or ("uniform", 0.1, 0.9)
        kind = current[0]
        roll = rng.random()
        if roll < 0.3:  # switch distribution kind
            new_kind = rng.choice(("fixed", "uniform", "exponential", "slow_pairs"))
            if new_kind == "fixed":
                candidate: Tuple[Any, ...] = ("fixed", round(rng.uniform(0.1, 2.0), 3))
            elif new_kind == "uniform":
                lo = round(rng.uniform(0.05, 0.5), 3)
                candidate = ("uniform", lo, round(lo + rng.uniform(0.1, 1.5), 3))
            elif new_kind == "exponential":
                candidate = (
                    "exponential",
                    round(rng.uniform(0.2, 2.0), 3),
                    round(rng.uniform(4.0, 12.0), 3),
                )
            else:
                candidate = self._random_slow_pairs(rng)
        elif kind == "slow_pairs":
            candidate = self._jitter_slow_pairs(current, rng)
        elif kind in ("uniform", "exponential", "fixed"):
            # parameter jitter, shape-preserving
            params = [
                round(max(0.01, float(p) * rng.uniform(0.5, 2.0)), 3)
                for p in current[1:]
            ]
            if kind == "uniform" and params[1] < params[0]:
                params[0], params[1] = params[1], params[0]
            candidate = (kind, *params)
        else:
            candidate = current
        try:
            return dataclasses.replace(
                spec, delay_model=canonical_delay_spec(candidate)
            )
        except Exception:
            return spec  # an out-of-envelope jitter keeps the parent

    def _random_slow_pairs(self, rng: random.Random) -> Tuple[Any, ...]:
        n = max(2, self.process_count)
        pairs = []
        for _ in range(rng.randint(1, 3)):
            src = rng.randint(1, n)
            dst = rng.randint(1, n)
            if src != dst:
                pairs.append((src, dst))
        if not pairs:
            pairs = [(1, 2)]
        return ("slow_pairs", round(rng.uniform(2.0, 8.0), 2), tuple(sorted(set(pairs))))

    def _jitter_slow_pairs(
        self, current: Tuple[Any, ...], rng: random.Random
    ) -> Tuple[Any, ...]:
        """The pair *search*: add a pair, drop one, or retune the factor."""
        factor = float(current[1])
        pairs = [tuple(p) for p in current[2]]
        roll = rng.random()
        n = max(2, self.process_count)
        if roll < 0.4:  # add a pair
            src, dst = rng.randint(1, n), rng.randint(1, n)
            if src != dst and (src, dst) not in pairs:
                pairs.append((src, dst))
        elif roll < 0.7 and len(pairs) > 1:  # drop a pair
            pairs.pop(rng.randrange(len(pairs)))
        else:  # factor jitter
            factor = round(max(1.5, factor * rng.uniform(0.5, 2.0)), 2)
        rest = tuple(current[3:])
        return ("slow_pairs", factor, tuple(sorted(set(pairs)))) + rest

    # -- Entry point -------------------------------------------------------

    def mutate(
        self,
        spec: ScenarioSpec,
        rng: random.Random,
        partner: Optional[ScenarioSpec] = None,
    ) -> ScenarioSpec:
        """One havoc burst: 1-3 stacked axis mutations of ``spec``.

        ``partner`` (a second corpus parent's spec) enables the splice
        operator.  The result always differs from the parent in at
        least one hashed axis unless every drawn operator no-opped (a
        possibility the driver tolerates — an identical child is a
        cache hit costing microseconds).
        """
        child = spec
        for _ in range(rng.randint(1, MAX_STACK)):
            axes = ["plan", "plan", "seed"]  # plan mutations dominate
            if self.mutate_delay and spec.backend == "async":
                axes.append("delay")
            axis = rng.choice(axes)
            if axis == "plan":
                child = self._mutate_plan(child, rng, partner)
            elif axis == "seed":
                child = self._mutate_seed(child, rng)
            else:
                child = self._mutate_delay(child, rng)
        return child
