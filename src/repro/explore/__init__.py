"""Coverage-guided fault/schedule exploration.

The nemesis layer (:mod:`repro.faults`) can *sample* adversaries —
:func:`repro.faults.nemesis.random_plan` draws admissible plans by seed
— but sampling is blind: every draw is independent, and a bug reachable
only through a rare combination of perturbations waits for a lottery
win.  This package closes the loop between the trace layer and the
fault layer with a classic coverage-guided search (AFL-style, over
scenario specs instead of byte strings):

* :mod:`repro.explore.coverage` turns one campaign row into a
  *fingerprint set* built from signals the :class:`TraceRecorder`
  already emits — wait-reason histograms, detector-consultation
  counts, quorum stalls, and the interleaving transition stream the
  :class:`repro.runtime.core.ExecutionCore` records;
* :mod:`repro.explore.corpus` keeps the content-addressed corpus of
  entries that contributed novel coverage, with an energy schedule
  favouring entries whose fingerprints are globally rare;
* :mod:`repro.explore.mutate` mutates specs along the three adversary
  axes — fault-plan structure (add/remove/retime/retarget/splice,
  admissible by construction), schedule seed, and the async backend's
  delay model (slow-pairs search, parameter jitter);
* :mod:`repro.explore.driver` runs budgeted campaigns through the
  cached campaign executor, auto-shrinks every violation with the
  ddmin :class:`repro.faults.shrink.PlanShrinker`, writes
  self-contained repro files and deduplicates triage records by
  ``(harness, violated properties, shrunk plan hash)``.

``python -m repro.explore`` is the CLI; the nightly ``explore-soak``
CI job runs it under a wall-clock budget and fails only on violations
absent from the committed baseline.
"""

from repro.explore.corpus import Corpus, CorpusEntry
from repro.explore.coverage import coverage_of
from repro.explore.driver import ExploreReport, Explorer
from repro.explore.mutate import MutationEngine

__all__ = [
    "Corpus",
    "CorpusEntry",
    "coverage_of",
    "ExploreReport",
    "Explorer",
    "MutationEngine",
]
