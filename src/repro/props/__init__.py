"""Executable correctness properties of atomic multicast (§2, §6, §7)."""

from repro.props.batch import (
    BATCH_CHECKS,
    batch_verdicts,
    variant_checks,
    verdicts_ok,
)
from repro.props.checkers import (
    assert_run_ok,
    check_group_parallelism,
    check_integrity,
    check_minimality,
    check_ordering,
    check_pairwise_ordering,
    check_strict_ordering,
    check_termination,
)
from repro.props.relations import (
    find_cycle,
    local_delivery_edges,
    realtime_edges,
)

__all__ = [
    "BATCH_CHECKS",
    "batch_verdicts",
    "variant_checks",
    "verdicts_ok",
    "assert_run_ok",
    "check_group_parallelism",
    "check_integrity",
    "check_minimality",
    "check_ordering",
    "check_pairwise_ordering",
    "check_strict_ordering",
    "check_termination",
    "find_cycle",
    "local_delivery_edges",
    "realtime_edges",
]
