"""Batch property verdicts: the §2.2 checkers as one sweep-ready call.

Campaign rows must carry a machine-readable verdict per property — not
an exception — so a single misbehaving scenario reads as data instead of
killing a thousand-scenario sweep.  :func:`batch_verdicts` runs every
registered checker and returns a ``{property: violation count}`` map;
:func:`variant_checks` names the extra checkers a protocol variant is
additionally accountable to (e.g. ``"strict"`` adds real-time order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.model.runs import RunRecord
from repro.props.checkers import (
    check_integrity,
    check_minimality,
    check_ordering,
    check_strict_ordering,
    check_termination,
)

#: One checker per correctness property every run is accountable to.
Checker = Callable[[RunRecord], List[str]]

BATCH_CHECKS: Tuple[Tuple[str, Checker], ...] = (
    ("integrity", check_integrity),
    ("termination", check_termination),
    ("ordering", check_ordering),
    ("minimality", check_minimality),
)

#: Extra checkers owed by specific protocol variants.
VARIANT_CHECKS: Dict[str, Tuple[Tuple[str, Checker], ...]] = {
    "strict": (("strict_ordering", check_strict_ordering),),
}


def variant_checks(variant: str) -> Tuple[Tuple[str, Checker], ...]:
    """The additional checkers owed by ``variant`` (possibly none)."""
    return VARIANT_CHECKS.get(variant, ())


def batch_verdicts(
    record: RunRecord,
    extra: Sequence[Tuple[str, Checker]] = (),
) -> Dict[str, int]:
    """Violation counts per property, in registry order.

    Zero everywhere means the run satisfies genuine atomic multicast
    (§2.2 plus Minimality); non-zero counts localize the failure without
    raising, which is what a sweep aggregator needs.
    """
    verdicts: Dict[str, int] = {}
    for name, checker in (*BATCH_CHECKS, *extra):
        verdicts[name] = len(checker(record))
    return verdicts


def verdicts_ok(verdicts: Dict[str, int]) -> bool:
    """Whether a verdict map reports no violation at all."""
    return all(count == 0 for count in verdicts.values())
