"""Executable correctness properties of atomic multicast.

Each checker inspects a finished :class:`repro.model.RunRecord` and
returns a list of violations (empty = the property holds on this run):

* :func:`check_integrity` — §2.2 Integrity;
* :func:`check_termination` — §2.2 Termination (on quiescent runs);
* :func:`check_ordering` — §2.2 Ordering (acyclicity of ``|->``);
* :func:`check_strict_ordering` — §6.1 Strict Ordering
  (acyclicity of ``|-> ∪ ~>``);
* :func:`check_pairwise_ordering` — §7 Pairwise Ordering;
* :func:`check_minimality` — §2.3 Minimality (genuineness audit);
* :func:`check_group_parallelism` — §6.2 Group Parallelism, for runs
  executed under a participation set.

:func:`assert_run_ok` bundles the §2.2 properties and raises
:class:`repro.model.PropertyViolation` on the first failure — the idiom
used throughout the test-suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.errors import PropertyViolation
from repro.model.messages import MulticastMessage
from repro.model.processes import ProcessId, ProcessSet
from repro.model.runs import RunRecord
from repro.props.relations import (
    find_cycle,
    local_delivery_edges,
    realtime_edges,
)


def check_integrity(record: RunRecord) -> List[str]:
    """§2.2 Integrity: deliver at most once, only members, only multicast."""
    violations: List[str] = []
    multicast_ids = {m.mid for m in record.multicast_messages()}
    for event in record.deliveries:
        m = event.message
        if event.process not in m.dst:
            violations.append(
                f"{event.process.name} delivered {m.mid} but is not in dst"
            )
        if m.mid not in multicast_ids:
            violations.append(f"{m.mid} delivered but never multicast")
    for p in record.processes:
        seen: Set[object] = set()
        for m in record.local_order(p):
            if m.mid in seen:
                violations.append(f"{p.name} delivered {m.mid} twice")
            seen.add(m.mid)
    return violations


def check_termination(record: RunRecord) -> List[str]:
    """§2.2 Termination, evaluated on a quiescent run.

    For every message multicast by a correct process, or delivered by any
    process, every correct member of the destination group must have
    delivered it by the end of the run.
    """
    violations: List[str] = []
    pattern = record.pattern
    obligated: Dict[object, MulticastMessage] = {}
    for event in record.multicasts:
        if pattern.is_correct(event.process):
            obligated.setdefault(event.message.mid, event.message)
    for event in record.deliveries:
        obligated.setdefault(event.message.mid, event.message)
    for m in obligated.values():
        expected = {p for p in m.dst if pattern.is_correct(p)}
        got = record.delivered_by(m)
        missing = expected - got
        if missing:
            violations.append(
                f"{m.mid}: not delivered at correct members "
                f"{sorted(q.name for q in missing)}"
            )
    return violations


def check_ordering(record: RunRecord) -> List[str]:
    """§2.2 Ordering: the delivery relation ``|->`` is acyclic."""
    cycle = find_cycle(local_delivery_edges(record))
    if cycle is None:
        return []
    pretty = " |-> ".join(str(mid) for mid in cycle)
    return [f"delivery cycle: {pretty}"]


def check_strict_ordering(record: RunRecord) -> List[str]:
    """§6.1 Strict Ordering: ``|-> ∪ ~>`` is acyclic."""
    edges = local_delivery_edges(record) | realtime_edges(record)
    cycle = find_cycle(edges)
    if cycle is None:
        return []
    pretty = " < ".join(str(mid) for mid in cycle)
    return [f"strict-order cycle: {pretty}"]


def check_pairwise_ordering(record: RunRecord) -> List[str]:
    """§7 Pairwise Ordering: if ``p`` delivers ``m`` then ``m'``, every
    process delivering ``m'`` delivered ``m`` before."""
    violations: List[str] = []
    orders = {p: record.local_order(p) for p in record.processes}
    for p, order in orders.items():
        index_p = {m.mid: i for i, m in enumerate(order)}
        for i, m in enumerate(order):
            for m_prime in order[i + 1 :]:
                for q, q_order in orders.items():
                    index_q = {x.mid: j for j, x in enumerate(q_order)}
                    if m_prime.mid not in index_q:
                        continue
                    pos_m = index_q.get(m.mid)
                    if q in m.dst and (
                        pos_m is None or pos_m > index_q[m_prime.mid]
                    ):
                        violations.append(
                            f"{p.name} delivered {m.mid} then {m_prime.mid} "
                            f"but {q.name} delivered {m_prime.mid} without "
                            f"{m.mid} first"
                        )
    return violations


def check_minimality(record: RunRecord) -> List[str]:
    """§2.3 Minimality: a correct process takes steps only when some
    multicast message is addressed to it."""
    violations: List[str] = []
    pattern = record.pattern
    addressed: Set[ProcessId] = set()
    for m in record.multicast_messages():
        addressed |= set(m.dst)
    for p, steps in record.step_counts().items():
        if steps > 0 and pattern.is_correct(p) and p not in addressed:
            violations.append(
                f"{p.name} took {steps} steps but no message is addressed "
                f"to it"
            )
    return violations


def check_group_parallelism(
    record: RunRecord,
    message: MulticastMessage,
    participation: ProcessSet,
) -> List[str]:
    """§6.2 Group Parallelism, for a run fair exactly for ``participation``.

    With ``P = Correct ∩ dst(m)`` scheduled (and the run quiescent), every
    process of ``P`` must have delivered ``m``.
    """
    violations: List[str] = []
    pattern = record.pattern
    expected = {
        p for p in message.dst if pattern.is_correct(p) and p in participation
    }
    missing = expected - record.delivered_by(message)
    if missing:
        violations.append(
            f"{message.mid}: not delivered in isolation at "
            f"{sorted(q.name for q in missing)}"
        )
    return violations


def assert_run_ok(record: RunRecord, genuineness: bool = True) -> None:
    """Assert the §2.2 properties (and optionally Minimality) on a run."""
    for prop, checker in (
        ("Integrity", check_integrity),
        ("Termination", check_termination),
        ("Ordering", check_ordering),
    ):
        violations = checker(record)
        if violations:
            raise PropertyViolation(prop, "; ".join(violations))
    if genuineness:
        violations = check_minimality(record)
        if violations:
            raise PropertyViolation("Minimality", "; ".join(violations))
