"""The delivery relations of the paper (§2.2, §6.1, §7).

Builds, from a :class:`repro.model.RunRecord`:

* the local delivery order ``m |->_p m'`` — ``p`` (in both destination
  groups) delivered ``m`` at a time when it had not delivered ``m'``;
* the global delivery relation ``|->`` (union over processes);
* the real-time relation ``m ~> m'`` — ``m`` was delivered (somewhere)
  before ``m'`` was multicast.

All relations are returned as edge sets over message ids together with a
cycle oracle, which is what the Ordering / Strict Ordering / Pairwise
Ordering checkers consume.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.messages import MessageId, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord

#: A directed edge between message ids.
Edge = Tuple[MessageId, MessageId]


def local_delivery_edges(record: RunRecord) -> Set[Edge]:
    """All pairs ``m |->_p m'`` over all processes ``p``.

    ``m |->_p m'`` holds when ``p`` belongs to both destination groups,
    delivered ``m``, and at that point had not delivered ``m'`` — which
    covers both "delivered ``m`` before ``m'``" and "delivered ``m`` and
    never ``m'``".
    """
    edges: Set[Edge] = set()
    delivered = record.delivered_messages()
    by_process: Dict[ProcessId, Sequence[MulticastMessage]] = {
        p: record.local_order(p) for p in record.processes
    }
    for p, order in by_process.items():
        seen_ids = [m.mid for m in order]
        position = {mid: i for i, mid in enumerate(seen_ids)}
        for m in order:
            for m_prime in delivered:
                if m.mid == m_prime.mid:
                    continue
                if p not in m_prime.dst or p not in m.dst:
                    continue
                later = position.get(m_prime.mid)
                if later is None or later > position[m.mid]:
                    edges.add((m.mid, m_prime.mid))
    return edges


def realtime_edges(record: RunRecord) -> Set[Edge]:
    """All pairs ``m ~> m'``: ``m`` delivered before ``m'`` multicast."""
    edges: Set[Edge] = set()
    delivered = record.delivered_messages()
    multicast = record.multicast_messages()
    for m in delivered:
        first = record.first_delivery_time(m)
        if first is None:
            continue
        for m_prime in multicast:
            if m.mid == m_prime.mid:
                continue
            sent = record.multicast_time(m_prime)
            if sent is not None and first < sent:
                edges.add((m.mid, m_prime.mid))
    return edges


def find_cycle(edges: Iterable[Edge]) -> Optional[List[MessageId]]:
    """A cycle in the directed graph, or ``None`` when acyclic.

    Returns the cycle as a vertex list ``[v0, v1, ..., v0]``.
    """
    adjacency: Dict[MessageId, List[MessageId]] = {}
    for src, dst in edges:
        adjacency.setdefault(src, []).append(dst)
        adjacency.setdefault(dst, [])

    WHITE, GRAY, BLACK = 0, 1, 2
    color: Dict[MessageId, int] = {v: WHITE for v in adjacency}
    parent: Dict[MessageId, Optional[MessageId]] = {}

    for root in adjacency:
        if color[root] != WHITE:
            continue
        stack: List[Tuple[MessageId, Iterable[MessageId]]] = [
            (root, iter(adjacency[root]))
        ]
        color[root] = GRAY
        parent[root] = None
        while stack:
            vertex, children = stack[-1]
            advanced = False
            for child in children:
                if color[child] == WHITE:
                    color[child] = GRAY
                    parent[child] = vertex
                    stack.append((child, iter(adjacency[child])))
                    advanced = True
                    break
                if color[child] == GRAY:
                    # Found a back-edge: reconstruct the cycle.
                    cycle = [child, vertex]
                    walker = parent[vertex]
                    while walker is not None and cycle[-1] != child:
                        cycle.append(walker)
                        walker = parent.get(walker)
                    if cycle[-1] != child:
                        cycle.append(child)
                    cycle.reverse()
                    return cycle
            if not advanced:
                color[vertex] = BLACK
                stack.pop()
        # fall through: this component is acyclic.
    return None
