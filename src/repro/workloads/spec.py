"""Scenario specifications: a run described as a *value*.

``run_scenario`` grew one positional parameter per PR until a scenario
could only be described by an argument list — impossible to hash, store
in a manifest, or ship to a worker process.  A :class:`ScenarioSpec`
fixes that: it captures **everything that determines a run** (topology,
failure pattern, send script, seed, variant, detector lags, round
budget, scheduling mode) as a frozen, hashable, JSON-round-trippable
dataclass.  Two specs that compare equal describe byte-identical runs;
:meth:`ScenarioSpec.spec_hash` is the stable content address the
campaign subsystem keys its manifests and result rows on.

Deliberately *not* part of a spec: output sinks such as
``trace_path``.  Where a trace lands does not change what the scenario
is, and the hash must identify the scenario, not the filesystem of the
machine that ran it.

Payloads inside :class:`repro.workloads.runner.Send` instructions
should be JSON scalars (strings, numbers, booleans, ``None``) so the
spec survives the JSON round trip unchanged; richer payloads still run
but will not round-trip.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.groups.topology import GroupTopology, topology_from_indices
from repro.model.errors import SimulationError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, make_processes, pset

#: Bumped on breaking changes to the spec JSON layout.  Version 2 added
#: the execution-backend axes (``backend``, ``event_driven``); version 3
#: added the ``faults`` axis (a :class:`repro.faults.FaultPlan`);
#: version 4 added the *generator* form of :class:`TopologySpec` (a
#: topology addressed by recipe instead of by expanded group map);
#: version 5 added the asynchronous backend and its axes
#: (``delay_model``, ``clock``); version 6 added the ``quirks`` axis
#: (named, replayable legacy behaviours such as the pre-fix superseded-
#: proposer stall).  Older payloads load unchanged: v1–v3 topologies
#: always carry the explicit ``groups`` map, which still round-trips
#: byte-identically, and the v5/v6 axes default to absent.
SPEC_SCHEMA_VERSION = 6

#: The execution backends a scenario can run on: the round-based
#: shared-object engine of §4.4, the step-level Appendix-A kernel, or
#: the real-time asynchronous driver over the engine's actors.
BACKENDS = ("engine", "kernel", "async")

#: Clock sources of the async backend (see repro.runtime.async_driver).
CLOCKS = ("virtual", "wall")

#: Named, replayable legacy behaviours a scenario may opt back into
#: (schema v6).  A *quirk* re-enables a retired code path byte-for-byte
#: so a historical bug stays a reachable, content-addressed target for
#: the fault/schedule explorer instead of vanishing with its fix:
#:
#: * ``"supersede-wait"`` — the pre-PR-4 :class:`ConsensusAutomaton`
#:   prepare phase: a proposer superseded by a higher promised ballot
#:   keeps waiting for promises that can never arrive instead of
#:   abandoning the ballot (the consensus liveness stall surfaced by
#:   ``omega_late`` leader rotation).  Kernel backend only.
KNOWN_QUIRKS = ("supersede-wait",)


def _delay_spec_to_json(spec: Any) -> Any:
    """Canonical delay tuple -> JSON-ready nested lists (None passes)."""
    if spec is None:
        return None
    if isinstance(spec, (tuple, list)):
        return [_delay_spec_to_json(item) for item in spec]
    return spec


@dataclass(frozen=True)
class TopologySpec:
    """A destination-group topology as plain data.

    Two forms:

    * **explicit map** (v1+): ``groups`` carries every group's member
      indices — one canonical form per topology, so equal topologies
      produce equal specs;
    * **generator** (v4+): ``generator`` carries a recipe such as
      ``{"kind": "ring", "k": 200}`` addressing a registered factory in
      :mod:`repro.workloads.topologies`.  The spec (and hence the
      scenario hash) covers the *recipe*, not the expanded group map —
      a 200-group ring is three JSON scalars, and its content address
      never depends on how the factory happens to lay groups out.

    Attributes:
        process_count: size of the process universe ``P``.
        groups: ``(name, member indices)`` pairs, sorted by name, each
            member tuple sorted ascending.  Empty for generator specs.
        generator: canonicalized ``(key, value)`` recipe items, or
            ``None`` for explicit-map specs.
    """

    process_count: int
    groups: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    generator: Optional[Tuple[Tuple[str, Any], ...]] = None

    @classmethod
    def capture(cls, topology: GroupTopology) -> "TopologySpec":
        """Extract the spec of a live :class:`GroupTopology`."""
        return cls(
            process_count=max(p.index for p in topology.processes),
            groups=tuple(
                sorted(
                    (g.name, tuple(p.index for p in sorted(g.members)))
                    for g in topology.groups
                )
            ),
        )

    @classmethod
    def from_generator(cls, recipe: Mapping[str, Any]) -> "TopologySpec":
        """A spec addressing a registered topology generator by recipe.

        The recipe is validated by building the topology once (cheap:
        construction does not enumerate families); parameters should be
        JSON scalars so the spec round-trips unchanged.
        """
        from repro.workloads.topologies import build_generator

        topology = build_generator(recipe)
        return cls(
            process_count=max(p.index for p in topology.processes),
            groups=(),
            generator=tuple(sorted(recipe.items())),
        )

    def build(self) -> GroupTopology:
        """Reconstruct the live topology this spec describes."""
        if self.generator is not None:
            from repro.workloads.topologies import build_generator

            return build_generator(dict(self.generator))
        return topology_from_indices(
            self.process_count, {name: list(members) for name, members in self.groups}
        )

    def to_json(self) -> Dict[str, Any]:
        if self.generator is not None:
            return {
                "process_count": self.process_count,
                "generator": dict(self.generator),
            }
        return {
            "process_count": self.process_count,
            "groups": {name: list(members) for name, members in self.groups},
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "TopologySpec":
        if "generator" in data:
            return cls(
                process_count=int(data["process_count"]),
                groups=(),
                generator=tuple(sorted(data["generator"].items())),
            )
        return cls(
            process_count=int(data["process_count"]),
            groups=tuple(
                sorted(
                    (name, tuple(int(i) for i in members))
                    for name, members in data["groups"].items()
                )
            ),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that determines one ``run_scenario`` execution.

    Attributes:
        topology: the destination groups, as a :class:`TopologySpec`.
        crashes: ``(process index, crash time)`` pairs, sorted — the
            failure pattern of the run.
        sends: the scripted multicasts (see
            :class:`repro.workloads.runner.Send`).
        seed: engine scheduling seed.
        variant: protocol variant (``"vanilla"``, ``"strict"``, ...).
        gamma_lag: detection lag of the gamma oracle.
        indicator_lag: detection lag of the intersection indicators.
        max_rounds: total round budget (script issuance + drain).
        scheduling: engine scheduling mode (``"event"`` or ``"scan"``).
        backend: which execution loop runs the scenario — ``"engine"``
            (the §4.4 shared-object system, the default), ``"kernel"``
            (the Appendix-A step-level kernel driving one replicated log
            per destination group; requires pairwise-disjoint groups) or
            ``"async"`` (the same Algorithm 1 actors as asyncio tasks
            under a wall- or virtual-clock delay model; schema v5).
        delay_model: the async backend's channel-latency model as a
            canonical spec tuple (see :mod:`repro.runtime.delay`), e.g.
            ``("uniform", 0.1, 0.9)``.  ``None`` (the default) uses the
            driver default and is excluded from :meth:`spec_hash`, so
            pre-v5 scenario addresses are stable.  Ignored by the round
            backends.
        clock: the async backend's time source — ``"virtual"`` (seeded
            deterministic, the default, excluded from the hash) or
            ``"wall"`` (real time).  Ignored by the round backends.
        event_driven: kernel scheduling mode.  ``None`` (the default)
            derives it from ``scheduling`` (``"event"`` → ``True``), so
            a scan-vs-event sweep exercises both loops with one axis; an
            explicit boolean overrides.  Ignored by the engine backend.
        faults: optional :class:`repro.faults.FaultPlan` — the nemesis
            perturbations applied to the run (schema v3).  ``None``, the
            default, runs fault-free and is excluded from
            :meth:`spec_hash`, so pre-nemesis scenario addresses are
            stable.
        quirks: named legacy behaviours to replay (schema v6), each a
            member of :data:`KNOWN_QUIRKS`; stored sorted.  The empty
            default is excluded from :meth:`spec_hash`, so pre-v6
            scenario addresses are stable.
        name: free-form label for reports.  Excluded from equality and
            from :meth:`spec_hash` — a label is not part of the
            scenario's identity.
    """

    topology: TopologySpec
    crashes: Tuple[Tuple[int, Time], ...] = ()
    sends: Tuple["Send", ...] = ()
    seed: int = 0
    variant: str = "vanilla"
    gamma_lag: Time = 0
    indicator_lag: Time = 0
    max_rounds: int = 600
    scheduling: str = "event"
    backend: str = "engine"
    event_driven: Optional[bool] = None
    faults: Optional["FaultPlan"] = None
    delay_model: Optional[Tuple[Any, ...]] = None
    clock: str = "virtual"
    quirks: Tuple[str, ...] = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise SimulationError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.clock not in CLOCKS:
            raise SimulationError(
                f"unknown clock {self.clock!r}; expected one of {CLOCKS}"
            )
        for quirk in self.quirks:
            if quirk not in KNOWN_QUIRKS:
                raise SimulationError(
                    f"unknown quirk {quirk!r}; expected members of {KNOWN_QUIRKS}"
                )
        # Canonical form: sorted, deduplicated — equal quirk sets must
        # compare (and hash) equal regardless of the order given.
        object.__setattr__(self, "quirks", tuple(sorted(set(self.quirks))))
        if self.delay_model is not None:
            from repro.runtime.delay import canonical_delay_spec

            # Canonicalize eagerly (lists -> tuples, parameters checked)
            # so equal scenarios compare equal after a JSON round trip.
            object.__setattr__(
                self, "delay_model", canonical_delay_spec(self.delay_model)
            )

    def kernel_event_driven(self) -> bool:
        """The effective kernel scheduling mode (see ``event_driven``)."""
        if self.event_driven is not None:
            return self.event_driven
        return self.scheduling == "event"

    # -- Construction -----------------------------------------------------

    @classmethod
    def capture(
        cls,
        topology: GroupTopology,
        pattern: FailurePattern,
        sends: Sequence["Send"] = (),
        *,
        seed: int = 0,
        variant: str = "vanilla",
        gamma_lag: Time = 0,
        indicator_lag: Time = 0,
        max_rounds: int = 600,
        scheduling: str = "event",
        backend: str = "engine",
        event_driven: Optional[bool] = None,
        faults: Optional[FaultPlan] = None,
        delay_model: Optional[Tuple[Any, ...]] = None,
        clock: str = "virtual",
        quirks: Tuple[str, ...] = (),
        name: str = "",
    ) -> "ScenarioSpec":
        """Extract a spec from the live objects a legacy call passes."""
        return cls(
            topology=TopologySpec.capture(topology),
            crashes=tuple(
                sorted((p.index, t) for p, t in pattern.crash_times.items())
            ),
            sends=tuple(sends),
            seed=seed,
            variant=variant,
            gamma_lag=gamma_lag,
            indicator_lag=indicator_lag,
            max_rounds=max_rounds,
            scheduling=scheduling,
            backend=backend,
            event_driven=event_driven,
            faults=faults,
            delay_model=delay_model,
            clock=clock,
            quirks=quirks,
            name=name,
        )

    def faulted(self, plan: Optional[FaultPlan]) -> "ScenarioSpec":
        """The same scenario under a (possibly absent) fault plan."""
        return replace(self, faults=plan)

    def labelled(self, name: str) -> "ScenarioSpec":
        """The same scenario under a different report label."""
        return replace(self, name=name)

    # -- Reconstruction ----------------------------------------------------

    def build_topology(self) -> GroupTopology:
        return self.topology.build()

    def build_pattern(self) -> FailurePattern:
        processes = pset(make_processes(self.topology.process_count))
        return FailurePattern(
            processes,
            {ProcessId(index): when for index, when in self.crashes},
        )

    # -- Serialization -----------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        """A JSON-ready dict; inverse of :meth:`from_json`."""
        return {
            "schema": SPEC_SCHEMA_VERSION,
            "topology": self.topology.to_json(),
            "crashes": [[index, when] for index, when in self.crashes],
            "sends": [
                [s.sender, s.group, s.at_round, s.payload] for s in self.sends
            ],
            "seed": self.seed,
            "variant": self.variant,
            "gamma_lag": self.gamma_lag,
            "indicator_lag": self.indicator_lag,
            "max_rounds": self.max_rounds,
            "scheduling": self.scheduling,
            "backend": self.backend,
            "event_driven": self.event_driven,
            "faults": None if self.faults is None else self.faults.to_json(),
            "delay_model": _delay_spec_to_json(self.delay_model),
            "clock": self.clock,
            "quirks": list(self.quirks),
            "name": self.name,
        }

    @classmethod
    def from_json(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        from repro.workloads.runner import Send

        return cls(
            topology=TopologySpec.from_json(data["topology"]),
            crashes=tuple(
                sorted((int(i), int(t)) for i, t in data["crashes"])
            ),
            sends=tuple(
                Send(
                    sender=int(sender),
                    group=group,
                    at_round=int(at_round),
                    payload=payload,
                )
                for sender, group, at_round, payload in data["sends"]
            ),
            seed=int(data["seed"]),
            variant=data["variant"],
            gamma_lag=int(data["gamma_lag"]),
            indicator_lag=int(data["indicator_lag"]),
            max_rounds=int(data["max_rounds"]),
            scheduling=data["scheduling"],
            # Absent in schema-version-1 payloads: engine defaults.
            backend=data.get("backend", "engine"),
            event_driven=data.get("event_driven"),
            # Absent before schema version 3: fault-free.
            faults=(
                FaultPlan.from_json(data["faults"])
                if data.get("faults") is not None
                else None
            ),
            # Absent before schema version 5: round backends, no delay
            # axis.  __post_init__ canonicalizes the JSON lists back
            # into the tuple form.
            delay_model=data.get("delay_model"),
            clock=data.get("clock", "virtual"),
            # Absent before schema version 6: no legacy behaviours.
            quirks=tuple(data.get("quirks", ())),
            name=data.get("name", ""),
        )

    def spec_hash(self) -> str:
        """Content address of the scenario (sha256 hex).

        The label (``name``) is excluded: renaming a scenario must not
        change its identity, and deduplication across campaigns relies
        on that.  The schema version and any schema-2 backend axis still
        at its default are excluded too, so future additive schema bumps
        stop reshuffling the addresses of scenarios they do not affect —
        an engine-backed spec describes the same run it always did.
        """
        body = self.to_json()
        body.pop("name", None)
        body.pop("schema", None)
        if self.backend == "engine":
            body.pop("backend", None)
        if self.event_driven is None:
            body.pop("event_driven", None)
        if self.faults is None:
            body.pop("faults", None)
        # Schema-5 axes at their defaults are excluded for the same
        # reason as the schema-2 backend: pre-v5 addresses must not move.
        if self.delay_model is None:
            body.pop("delay_model", None)
        if self.clock == "virtual":
            body.pop("clock", None)
        # Schema-6 axis: a quirk-free spec hashes as it did pre-v6.
        if not self.quirks:
            body.pop("quirks", None)
        canonical = json.dumps(
            body, sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
