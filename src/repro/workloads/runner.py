"""Scenario runner: drive a topology + failure pattern + send script.

A *send script* is a sequence of :class:`Send` instructions — who
multicasts to which group, at which round, with which payload.  The runner
wires an :class:`repro.core.AtomicMulticast` deployment, interleaves the
sends with execution rounds (so multicasts race each other and crashes),
runs to quiescence and returns the :class:`repro.model.RunRecord` plus the
message objects, ready for the property checkers.

The primary entry point is the *spec form*::

    spec = ScenarioSpec.capture(topology, pattern, sends, seed=3)
    result = run_scenario(spec)

A :class:`repro.workloads.spec.ScenarioSpec` is a frozen, hashable value
object, so scenarios can be stored, hashed, shipped to worker processes
and replayed (see :mod:`repro.campaign`).  The legacy form
``run_scenario(topology, pattern, sends, ...)`` remains as a shim whose
tuning parameters are strictly keyword-only; passing them positionally
(deprecated for several releases) is now a :class:`TypeError`.

Three *backends* execute a spec:

* ``backend="engine"`` (default) — the §4.4 shared-object
  :class:`MulticastSystem`, Algorithm 1 proper, on the round-based
  :class:`repro.runtime.Scheduler`;
* ``backend="kernel"`` — the Appendix-A step-level :class:`Kernel`
  running one :class:`repro.substrates.replicated_log.ReplicatedLogCluster`
  per destination group.  Groups must be pairwise disjoint (a shared
  member would need the cross-log coordination that *is* Algorithm 1);
  each send becomes an ``append`` of the message id at the sender's
  replica, and the synthesized :class:`RunRecord` marks a delivery when
  a replica applies that id, so the same §2.2 property checkers judge
  both backends;
* ``backend="async"`` (schema v5) — the same Algorithm 1 deployment,
  but driven by the :class:`repro.runtime.async_driver.AsyncDriver`:
  every process is an asyncio task, wakes travel through
  latency-modelled in-memory channels (``spec.delay_model``), and time
  is either a seeded virtual clock (``spec.clock="virtual"``, fully
  replayable) or the real wall clock.  The run produces the same
  :class:`RunRecord` shape, so delivery sets and property verdicts are
  directly comparable with the round backends.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.faults.injector import AdmissibilityError, FaultInjector, injector_for
from repro.groups.topology import GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import PropertyViolation, SimulationError, TopologyError
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MessageFactory, MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord
from repro.runtime.async_driver import AsyncDriver
from repro.runtime.watchdog import StallWatchdog
from repro.sim.kernel import Kernel
from repro.substrates.replicated_log import ReplicatedLogCluster
from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class Send:
    """One scripted multicast.

    Attributes:
        sender: 1-based process index (must belong to the group).
        group: destination group name.
        at_round: engine round at which the multicast is issued.
        payload: optional application payload (keep it a JSON scalar if
            the enclosing spec must round-trip through JSON).
    """

    sender: int
    group: str
    at_round: Time = 0
    payload: object = None


def triage_record(spec: ScenarioSpec) -> Dict[str, Any]:
    """The one-line repro record attached to every failure.

    Carries exactly what replaying the run needs — the spec's content
    address, the schedule seed, the backend and the fault plan hash —
    so a red row (or a raised checker exception) is reproducible from
    the log alone.
    """
    return {
        "spec_hash": spec.spec_hash(),
        "seed": spec.seed,
        "backend": spec.backend,
        "fault_plan_hash": (
            spec.faults.plan_hash() if spec.faults is not None else None
        ),
    }


def scenario_cache_key(spec: ScenarioSpec) -> str:
    """Stable content address of one grid cell's *result* (sha256 hex).

    A result row is a pure function of ``(spec_hash, seed, backend,
    fault_plan_hash)`` — exactly the :func:`triage_record` fields — so
    the key is the hash of that record's canonical JSON.  Crucially the
    spec's free-form label is *not* part of the key (``spec_hash``
    already excludes it): two campaigns that sweep the same cell under
    different labels share one cache entry, and the campaign cache
    re-labels hits from the live spec (see
    :class:`repro.campaign.cache.CampaignCache`).
    """
    canonical = json.dumps(
        triage_record(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def triage_line(spec: ScenarioSpec) -> str:
    """:func:`triage_record` rendered as one greppable line."""
    record = triage_record(spec)
    return (
        f"[triage spec_hash={record['spec_hash']} seed={record['seed']} "
        f"backend={record['backend']} "
        f"fault_plan={record['fault_plan_hash'] or '-'}]"
    )


@dataclass
class ScenarioResult:
    """Everything a test needs to judge a finished run.

    Attributes:
        spec: the :class:`ScenarioSpec` that produced this result — a
            result self-describes the scenario behind it.
        skipped_sends: sends whose sender was already crashed at their
            round — legitimately impossible, not a runner failure.
        unsent_sends: sends never issued because ``max_rounds`` ran out
            before their round was reached.  A truncated script proves
            nothing, so :meth:`delivered_everywhere` refuses success
            while this list is non-empty.
        truncated: True when the run ended because the round budget ran
            out rather than because the system went quiescent — either
            sends were left unissued (``unsent_sends``) or the drain
            phase was cut short.  A truncated run proves nothing.
        quiescent: whether the drain phase actually reached quiescence
            (the executing loop's ``last_run_quiescent``) — the
            productive half of ``truncated``, surfaced on its own so
            sweep rows can distinguish "budget ran out" from "script was
            never finished".
        system / multicaster: the engine deployment (``None`` for
            kernel-backed runs).
        kernel: the step-level kernel (``None`` for engine-backed runs).
    """

    record: RunRecord
    messages: List[MulticastMessage]
    system: Optional[MulticastSystem]
    multicaster: Optional[AtomicMulticast]
    rounds: int
    skipped_sends: List[Send] = field(default_factory=list)
    unsent_sends: List[Send] = field(default_factory=list)
    spec: Optional[ScenarioSpec] = None
    truncated: bool = False
    quiescent: bool = True
    kernel: Optional[Kernel] = None
    #: The bound :class:`repro.faults.FaultInjector` of a faulted run
    #: (``None`` for fault-free runs) — its stats feed the result row.
    injector: Optional[FaultInjector] = None
    #: Async-backend ack/retransmit counters
    #: (:attr:`AsyncDriver.last_transport_stats`); ``None`` on the round
    #: backends, which have no transport layer.
    transport_stats: Optional[Dict[str, int]] = None

    @property
    def backend(self) -> str:
        """Which execution loop produced this result."""
        if self.spec is not None:
            return self.spec.backend
        return "kernel" if self.kernel is not None else "engine"

    @property
    def tracer(self) -> TraceRecorder:
        """The per-round trace of whichever loop ran the scenario."""
        if self.system is not None:
            return self.system.tracer
        assert self.kernel is not None
        return self.kernel.tracer

    def delivered_everywhere(self) -> bool:
        if self.unsent_sends or self.truncated:
            return False
        # Judged on the record alone (not the live system), so both
        # backends share one definition: every *correct* destination
        # member delivered every scripted message.
        pattern = self.record.pattern
        for m in self.messages:
            wanted = {p for p in m.dst if pattern.is_correct(p)}
            if not wanted <= self.record.delivered_by(m):
                return False
        return True

    def to_row(self) -> Dict[str, Any]:
        """The result as one flat, JSON-ready sweep row.

        The row carries the spec (and its content hash) next to the
        outcome — delivery verdict, rounds, truncation, send accounting,
        the engine's trace totals and the §2.2 property verdicts — so a
        results file is self-contained: every row names the scenario
        that produced it and can be replayed from the row alone.
        """
        from repro.props.batch import batch_verdicts, variant_checks

        trace = self.tracer.summary()
        row: Dict[str, Any] = {
            "name": self.spec.name if self.spec else "",
            "spec_hash": self.spec.spec_hash() if self.spec else None,
            "status": "ok",
            "backend": self.backend,
            "delivered_everywhere": self.delivered_everywhere(),
            "truncated": self.truncated,
            "quiescent": self.quiescent,
            "rounds": self.rounds,
            "messages": len(self.messages),
            "skipped_sends": len(self.skipped_sends),
            "unsent_sends": len(self.unsent_sends),
            "deliveries": len(self.record.deliveries),
            "verdicts": batch_verdicts(
                self.record,
                extra=variant_checks(self.spec.variant if self.spec else ""),
            ),
            "trace": {
                "eligible": trace["eligible"],
                "scanned": trace["scanned"],
                "actions": trace["actions"],
                "quorum_stalls": trace["quorum_stalls"],
                # Coverage inputs (cache schema 2): the explorer
                # fingerprints runs from rows alone, so the row carries
                # every signal repro.explore.coverage consumes.
                "rounds": trace["rounds"],
                "skipped": trace["skipped"],
                "full_scan_rounds": trace["full_scan_rounds"],
                "quorum_queries": trace["quorum_queries"],
                "gamma_queries": trace["gamma_queries"],
                "indicator_queries": trace["indicator_queries"],
                "wait_reasons": trace["wait_reasons"],
                "interleaving": trace["interleaving"],
            },
            "spec": self.spec.to_json() if self.spec else None,
        }
        if self.injector is not None:
            row["faults"] = self.injector.summary()
        if self.transport_stats is not None:
            row["transport"] = dict(self.transport_stats)
        return row

    def assert_ok(self) -> None:
        """Raise :class:`PropertyViolation` unless every checker passes.

        Unlike a bare assertion on :func:`batch_verdicts`, the raised
        exception carries the triage line (spec hash, seed, backend,
        fault plan hash), so a red run is replayable from the error
        message alone.
        """
        from repro.props.batch import batch_verdicts, variant_checks

        verdicts = batch_verdicts(
            self.record,
            extra=variant_checks(self.spec.variant if self.spec else ""),
        )
        suffix = f" {triage_line(self.spec)}" if self.spec else ""
        bad = {name: count for name, count in verdicts.items() if count}
        if bad:
            raise PropertyViolation(
                "+".join(sorted(bad)), f"violation counts {bad}{suffix}"
            )
        if self.truncated:
            raise PropertyViolation(
                "termination",
                f"run truncated before quiescence — proves nothing{suffix}",
            )


_UNSET = object()


def run_scenario(
    spec: Union[ScenarioSpec, GroupTopology],
    pattern: Optional[FailurePattern] = None,
    sends: Optional[Sequence[Send]] = None,
    *legacy_tuning: object,
    seed: object = _UNSET,
    variant: object = _UNSET,
    gamma_lag: object = _UNSET,
    indicator_lag: object = _UNSET,
    max_rounds: object = _UNSET,
    scheduling: object = _UNSET,
    trace_path: Optional[str] = None,
    stall_window: Optional[int] = None,
) -> ScenarioResult:
    """Execute a scripted scenario to quiescence.

    Primary form: ``run_scenario(spec)`` where ``spec`` is a
    :class:`ScenarioSpec`; ``trace_path`` and ``stall_window`` are the
    only other accepted arguments (an output sink and a liveness
    backstop — execution-harness concerns, not part of the scenario).

    ``stall_window`` arms the stall watchdog: a run whose progress
    fingerprint (deliveries for the engine/async backends, applied log
    entries for the kernel) does not change for that many consecutive
    rounds past the settle horizon raises
    :class:`repro.runtime.watchdog.StallError` carrying the wait-reason
    histogram, instead of burning the rest of its round budget.  The
    watchdog never changes what an un-stalled run computes — it only
    decides how long a stalled one is allowed to spin — so spec hashes
    and golden traces are unaffected.

    Legacy form: ``run_scenario(topology, pattern, sends, ...)`` with
    every tuning parameter keyword-only.  Passing tuning parameters
    positionally — deprecated for several releases — is now a
    :class:`TypeError`.

    Sends whose sender is already crashed at their round are skipped and
    reported in ``skipped_sends`` (a crashed process cannot multicast).
    Sends still waiting for their round when ``max_rounds`` runs out are
    reported in ``unsent_sends``, and a run whose drain phase exhausts
    the budget before quiescence is flagged ``truncated`` — in both
    cases the run proves nothing and ``delivered_everywhere()`` refuses
    success.

    When ``trace_path`` is given, the engine's per-round trace is
    written there as JSONL (see :mod:`repro.metrics.trace`) after the
    run finishes.
    """
    supplied = {
        key: value
        for key, value in (
            ("seed", seed),
            ("variant", variant),
            ("gamma_lag", gamma_lag),
            ("indicator_lag", indicator_lag),
            ("max_rounds", max_rounds),
            ("scheduling", scheduling),
        )
        if value is not _UNSET
    }

    if isinstance(spec, ScenarioSpec):
        if pattern is not None or sends is not None or legacy_tuning:
            raise TypeError(
                "run_scenario(spec) takes no further positional arguments"
            )
        if supplied:
            raise TypeError(
                "run_scenario(spec) does not accept tuning overrides "
                f"({sorted(supplied)}); derive a new spec with "
                "dataclasses.replace instead"
            )
        return _execute(spec, trace_path=trace_path, stall_window=stall_window)

    # -- Legacy shim ------------------------------------------------------
    topology = spec
    if pattern is None or sends is None:
        raise TypeError(
            "legacy run_scenario(topology, pattern, sends, ...) needs all "
            "three scenario arguments (or pass a single ScenarioSpec)"
        )
    if legacy_tuning:
        raise TypeError(
            "run_scenario no longer accepts tuning parameters positionally "
            f"({len(legacy_tuning)} extra positional argument(s) given); "
            "pass seed/variant/gamma_lag/indicator_lag/max_rounds/"
            "scheduling/trace_path as keywords, or build a ScenarioSpec "
            "with ScenarioSpec.capture(topology, pattern, sends, ...) and "
            "call run_scenario(spec)"
        )

    built = ScenarioSpec.capture(
        topology,
        pattern,
        sends,
        seed=supplied.get("seed", 0),  # type: ignore[arg-type]
        variant=supplied.get("variant", "vanilla"),  # type: ignore[arg-type]
        gamma_lag=supplied.get("gamma_lag", 0),  # type: ignore[arg-type]
        indicator_lag=supplied.get("indicator_lag", 0),  # type: ignore[arg-type]
        max_rounds=supplied.get("max_rounds", 600),  # type: ignore[arg-type]
        scheduling=supplied.get("scheduling", "event"),  # type: ignore[arg-type]
    )
    return _execute(
        built,
        trace_path=trace_path,
        topology=topology,
        pattern=pattern,
        stall_window=stall_window,
    )


def _watchdog_for(
    window: Optional[int],
    progress: Any,
    tracer: TraceRecorder,
    grace: Time,
) -> Optional[StallWatchdog]:
    """Build the runner's stall watchdog (``None`` window = unarmed)."""
    if window is None:
        return None
    return StallWatchdog(
        progress,
        window=window,
        wait_reasons=lambda: tracer.summary()["wait_reasons"],
        grace=grace,
    )


def _execute(
    spec: ScenarioSpec,
    trace_path: Optional[str] = None,
    topology: Optional[GroupTopology] = None,
    pattern: Optional[FailurePattern] = None,
    stall_window: Optional[int] = None,
) -> ScenarioResult:
    """Run one spec.  Legacy callers pass their live topology/pattern so
    object identity is preserved; the spec form rebuilds them."""
    if topology is None:
        topology = spec.build_topology()
    if pattern is None:
        pattern = spec.build_pattern()
    injector = injector_for(spec.faults, topology, seed=spec.seed)
    if injector is not None:
        # Crash bursts perturb the failure pattern *before* the system
        # is built, so detectors, settle horizons and the record all see
        # the faulted pattern.
        pattern = injector.perturb_pattern(pattern)
    if spec.backend == "kernel":
        return _execute_kernel(
            spec,
            topology,
            pattern,
            injector,
            trace_path=trace_path,
            stall_window=stall_window,
        )
    if spec.backend == "async":
        return _execute_async(
            spec,
            topology,
            pattern,
            injector,
            trace_path=trace_path,
            stall_window=stall_window,
        )
    system = MulticastSystem(
        topology,
        pattern,
        variant=spec.variant,
        gamma_lag=spec.gamma_lag,
        indicator_lag=spec.indicator_lag,
        seed=spec.seed,
        scheduling=spec.scheduling,
        injector=injector,
    )
    multicaster = AtomicMulticast(system)
    pending = sorted(spec.sends, key=lambda s: s.at_round)
    messages: List[MulticastMessage] = []
    skipped: List[Send] = []
    rounds = 0
    cursor = 0
    while cursor < len(pending) or rounds == 0:
        # Issue everything scheduled for the current time.
        while cursor < len(pending) and pending[cursor].at_round <= system.time:
            send = pending[cursor]
            cursor += 1
            sender = _process(topology, send.sender)
            if not system.is_alive(sender):
                skipped.append(send)
                continue
            messages.append(
                multicaster.multicast(sender, send.group, send.payload)
            )
        if cursor >= len(pending):
            break
        system.tick()
        rounds += 1
        if rounds >= spec.max_rounds:
            break
    unsent = list(pending[cursor:])
    # The issue loop may have consumed the entire budget; the drain gets
    # whatever is left, never a negative allowance.
    budget = max(0, spec.max_rounds - rounds)
    watchdog = _watchdog_for(
        stall_window,
        lambda: len(system.record.deliveries),
        system.tracer,
        system.settle_horizon(),
    )
    rounds += multicaster.run(
        max_rounds=budget,
        stop_when=(
            watchdog.stop_when(lambda: system.time)
            if watchdog is not None
            else None
        ),
    )
    truncated = bool(unsent) or not system.last_run_quiescent
    _audit_injector(injector, spec, system.time, pattern=pattern)
    if trace_path is not None:
        system.tracer.write_jsonl(
            trace_path,
            meta={
                "topology": repr(topology),
                "pattern": str(pattern),
                "seed": spec.seed,
                "variant": spec.variant,
                "scheduling": spec.scheduling,
                "spec_hash": spec.spec_hash(),
                "sends": len(spec.sends),
                "rounds": rounds,
            },
        )
    return ScenarioResult(
        record=system.record,
        messages=messages,
        system=system,
        multicaster=multicaster,
        rounds=rounds,
        skipped_sends=skipped,
        unsent_sends=unsent,
        spec=spec,
        truncated=truncated,
        quiescent=system.last_run_quiescent,
        injector=injector,
    )


def _audit_injector(
    injector: Optional[FaultInjector],
    spec: ScenarioSpec,
    final_time: Time,
    buffer: Optional[Any] = None,
    pattern: Optional[FailurePattern] = None,
) -> None:
    """Post-run admissibility audit — a violating injector never passes
    silently (raises :class:`AdmissibilityError` with the triage line)."""
    if injector is None:
        return
    violations = injector.audit(final_time, buffer=buffer, pattern=pattern)
    if violations:
        raise AdmissibilityError(
            "fault plan left the admissible envelope: "
            + "; ".join(violations)
            + " "
            + triage_line(spec)
        )


def _execute_kernel(
    spec: ScenarioSpec,
    topology: GroupTopology,
    pattern: FailurePattern,
    injector: Optional[FaultInjector] = None,
    trace_path: Optional[str] = None,
    stall_window: Optional[int] = None,
) -> ScenarioResult:
    """Run one spec on the Appendix-A kernel backend.

    Each destination group gets its own
    :class:`~repro.substrates.replicated_log.ReplicatedLogCluster` (one
    log per group, the §4.3 universal construction), all hosted by a
    single :class:`Kernel` so the whole scenario shares one clock, one
    message buffer and one scheduler.  A :class:`Send` becomes an
    ``append`` of the minted message id at the sender's replica; a
    replica *delivers* the message when its log applies that id.  The
    resulting :class:`RunRecord` feeds the same property checkers as the
    engine backend (step accounting stays in ``kernel.steps_taken`` —
    kernel steps are datagram receipts, not engine actions, and charging
    them as record steps would make the Minimality audit compare
    incomparable units).
    """
    for g, h in itertools.combinations(topology.groups, 2):
        if g.members & h.members:
            raise TopologyError(
                f"kernel backend needs pairwise-disjoint groups: "
                f"{g.name} and {h.name} share "
                f"{sorted(p.name for p in g.members & h.members)} "
                f"(intersecting groups need Algorithm 1 — the engine "
                f"backend)"
            )
    supersede = "wait" if "supersede-wait" in spec.quirks else "abandon"
    # Faulted runs arm the proposer's fair-lossy retransmission timer: a
    # PREPARE/ACCEPT lost to a drop, a partition crossing, or an
    # acceptor's crash–rejoin window must eventually be re-offered or
    # the slot wedges.  Fault-free runs leave it off, so the golden
    # kernel fingerprints (exact step counts) are untouched.
    retransmit_interval = 8 if injector is not None else None
    clusters = {
        g.name: ReplicatedLogCluster(
            pattern,
            g.members,
            supersede=supersede,
            retransmit_interval=retransmit_interval,
        )
        for g in topology.groups
    }
    automata = {}
    detectors = {}
    for cluster in clusters.values():
        automata.update(cluster.automata)
        detectors.update(cluster.detectors)
    kernel = Kernel(
        pattern,
        automata,
        detectors,
        seed=spec.seed,
        event_driven=spec.kernel_event_driven(),
        injector=injector,
    )
    record = RunRecord(topology.processes, pattern)
    factory = MessageFactory()
    by_mid: Dict[Any, MulticastMessage] = {}
    pending = sorted(spec.sends, key=lambda s: s.at_round)
    messages: List[MulticastMessage] = []
    skipped: List[Send] = []
    rounds = 0
    cursor = 0
    while cursor < len(pending) or rounds == 0:
        while cursor < len(pending) and pending[cursor].at_round <= kernel.time:
            send = pending[cursor]
            cursor += 1
            sender = _process(topology, send.sender)
            group = topology.group(send.group)
            if sender not in group:
                raise SimulationError(
                    f"closed model: {sender.name} does not belong to "
                    f"{send.group}"
                )
            if not pattern.is_alive(sender, kernel.time):
                skipped.append(send)
                continue
            message = factory.multicast(sender, group.members, send.payload)
            by_mid[message.mid] = message
            messages.append(message)
            record.note_multicast(kernel.time, sender, message)
            clusters[send.group].append(sender, message.mid)
        if cursor >= len(pending):
            break
        kernel.round()
        rounds += 1
        if rounds >= spec.max_rounds:
            break
    unsent = list(pending[cursor:])
    budget = max(0, spec.max_rounds - rounds)
    # Kernel progress = log entries applied anywhere: the supersede-wait
    # stall keeps datagrams circulating (steps fire every round), so
    # step counts cannot be the fingerprint — applied outputs can.
    watchdog = _watchdog_for(
        stall_window,
        lambda: sum(len(entries) for entries in kernel.outputs.values()),
        kernel.tracer,
        kernel.settle_horizon(),
    )
    rounds += kernel.run(
        budget,
        quiescent_rounds=2,
        stop_when=(
            watchdog.stop_when(lambda: kernel.time)
            if watchdog is not None
            else None
        ),
    )
    quiescent = kernel.last_run_quiescent
    truncated = bool(unsent) or not quiescent
    _audit_injector(
        injector, spec, kernel.time, buffer=kernel.buffer, pattern=pattern
    )
    # Synthesize the delivery trace: a replica delivered m when its log
    # applied m's id.  Sorted by (time, process, apply order) so the
    # global event list is deterministic; per-process order is the apply
    # order, which is what Ordering judges.
    applies: List[Tuple[Time, int, int, ProcessId, MulticastMessage]] = []
    for p, entries in kernel.outputs.items():
        for position, (when, value) in enumerate(entries):
            if (
                isinstance(value, tuple)
                and len(value) == 3
                and value[0] == "applied"
                and value[2] in by_mid
            ):
                applies.append((when, p.index, position, p, by_mid[value[2]]))
    for when, _, _, p, message in sorted(applies, key=lambda e: e[:3]):
        record.note_delivery(when, p, message)
    if trace_path is not None:
        kernel.tracer.write_jsonl(
            trace_path,
            meta={
                "topology": repr(topology),
                "pattern": str(pattern),
                "seed": spec.seed,
                "backend": "kernel",
                "event_driven": spec.kernel_event_driven(),
                "spec_hash": spec.spec_hash(),
                "sends": len(spec.sends),
                "rounds": rounds,
            },
        )
    return ScenarioResult(
        record=record,
        messages=messages,
        system=None,
        multicaster=None,
        rounds=rounds,
        skipped_sends=skipped,
        unsent_sends=unsent,
        spec=spec,
        truncated=truncated,
        quiescent=quiescent,
        kernel=kernel,
        injector=injector,
    )


def _execute_async(
    spec: ScenarioSpec,
    topology: GroupTopology,
    pattern: FailurePattern,
    injector: Optional[FaultInjector] = None,
    trace_path: Optional[str] = None,
    stall_window: Optional[int] = None,
) -> ScenarioResult:
    """Run one spec on the real-asynchrony backend.

    The deployment is exactly the engine backend's — the same
    :class:`MulticastSystem` and :class:`AtomicMulticast` — but instead
    of the lockstep round loop, an :class:`AsyncDriver` runs every
    process as an asyncio task and routes shared-object wake-ups through
    latency-modelled channels (``spec.delay_model``).  Each ``fire`` is
    atomic under cooperative scheduling, so shared-object operations
    stay linearizable and the run is an admissible run of the same
    model; only the interleaving (and hence the round count) differs.
    With ``spec.clock="virtual"`` the whole run is a pure function of
    the spec and replays deterministically.
    """
    system = MulticastSystem(
        topology,
        pattern,
        variant=spec.variant,
        gamma_lag=spec.gamma_lag,
        indicator_lag=spec.indicator_lag,
        seed=spec.seed,
        scheduling=spec.scheduling,
        injector=injector,
    )
    multicaster = AtomicMulticast(system)
    # Virtual runs finish instantly regardless of the round duration, so
    # use the natural 1s = 1 round mapping; wall runs compress rounds to
    # keep real elapsed time bounded (a 600-round budget ≈ 12s).
    round_duration = 1.0 if spec.clock == "virtual" else 0.02
    driver = AsyncDriver(
        system,
        delay_model=spec.delay_model,
        round_duration=round_duration,
        clock=spec.clock,
        seed=spec.seed,
    )
    pending = sorted(spec.sends, key=lambda s: s.at_round)
    messages: List[MulticastMessage] = []
    skipped: List[Send] = []

    def issue(send: Send, t: Time) -> None:
        sender = _process(topology, send.sender)
        if not pattern.is_alive(sender, t):
            skipped.append(send)
            return
        messages.append(
            multicaster.multicast(sender, send.group, send.payload)
        )

    # Wall-clock async runs get a real-time backstop on top of the
    # logical window: a hung loop stops producing logical checks, but
    # never stops the wall clock.
    watchdog = _watchdog_for(
        stall_window,
        lambda: len(system.record.deliveries),
        system.tracer,
        system.settle_horizon(),
    )
    if watchdog is not None and spec.clock == "wall":
        watchdog.wall_budget = max(30.0, stall_window * round_duration * 4)
    outcome = driver.run(
        sends=pending,
        issue=issue,
        max_rounds=spec.max_rounds,
        quiescent_rounds=2,
        watchdog=watchdog,
    )
    unsent = list(pending[driver.sends_cursor :])
    truncated = bool(unsent) or not outcome.quiescent
    _audit_injector(injector, spec, system.time, pattern=pattern)
    if trace_path is not None:
        system.tracer.write_jsonl(
            trace_path,
            meta={
                "topology": repr(topology),
                "pattern": str(pattern),
                "seed": spec.seed,
                "variant": spec.variant,
                "backend": "async",
                "clock": spec.clock,
                "delay_model": repr(driver.delay.spec()),
                "spec_hash": spec.spec_hash(),
                "sends": len(spec.sends),
                "rounds": outcome.rounds,
            },
        )
    return ScenarioResult(
        record=system.record,
        messages=messages,
        system=system,
        multicaster=multicaster,
        rounds=outcome.rounds,
        skipped_sends=skipped,
        unsent_sends=unsent,
        spec=spec,
        truncated=truncated,
        quiescent=outcome.quiescent,
        injector=injector,
        transport_stats=dict(driver.last_transport_stats),
    )


def random_sends(
    topology: GroupTopology,
    count: int,
    seed: int = 0,
    spread_rounds: int = 5,
) -> List[Send]:
    """A seeded random send script respecting the closed model."""
    rng = random.Random(seed)
    sends: List[Send] = []
    for _ in range(count):
        group = rng.choice(topology.groups)
        sender = rng.choice(sorted(group.members))
        sends.append(
            Send(
                sender=sender.index,
                group=group.name,
                at_round=rng.randint(0, spread_rounds),
            )
        )
    return sends


def _process(topology: GroupTopology, index: int) -> ProcessId:
    for p in topology.processes:
        if p.index == index:
            return p
    raise ValueError(f"no process with index {index}")
