"""Scenario runner: drive a topology + failure pattern + send script.

A *send script* is a sequence of :class:`Send` instructions — who
multicasts to which group, at which round, with which payload.  The runner
wires an :class:`repro.core.AtomicMulticast` deployment, interleaves the
sends with execution rounds (so multicasts race each other and crashes),
runs to quiescence and returns the :class:`repro.model.RunRecord` plus the
message objects, ready for the property checkers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.groups.topology import GroupTopology
from repro.model.failures import FailurePattern, Time
from repro.model.messages import MulticastMessage
from repro.model.processes import ProcessId
from repro.model.runs import RunRecord


@dataclass(frozen=True)
class Send:
    """One scripted multicast.

    Attributes:
        sender: 1-based process index (must belong to the group).
        group: destination group name.
        at_round: engine round at which the multicast is issued.
        payload: optional application payload.
    """

    sender: int
    group: str
    at_round: Time = 0
    payload: object = None


@dataclass
class ScenarioResult:
    """Everything a test needs to judge a finished run.

    Attributes:
        skipped_sends: sends whose sender was already crashed at their
            round — legitimately impossible, not a runner failure.
        unsent_sends: sends never issued because ``max_rounds`` ran out
            before their round was reached.  A truncated script proves
            nothing, so :meth:`delivered_everywhere` refuses success
            while this list is non-empty.
    """

    record: RunRecord
    messages: List[MulticastMessage]
    system: MulticastSystem
    multicaster: AtomicMulticast
    rounds: int
    skipped_sends: List[Send] = field(default_factory=list)
    unsent_sends: List[Send] = field(default_factory=list)

    def delivered_everywhere(self) -> bool:
        if self.unsent_sends:
            return False
        return all(
            self.system.everyone_delivered(m) for m in self.messages
        )


def run_scenario(
    topology: GroupTopology,
    pattern: FailurePattern,
    sends: Sequence[Send],
    seed: int = 0,
    variant: str = "vanilla",
    gamma_lag: Time = 0,
    indicator_lag: Time = 0,
    max_rounds: int = 600,
    scheduling: str = "event",
    trace_path: Optional[str] = None,
) -> ScenarioResult:
    """Execute a scripted scenario to quiescence.

    Sends whose sender is already crashed at their round are skipped and
    reported in ``skipped_sends`` (a crashed process cannot multicast).
    Sends still waiting for their round when ``max_rounds`` runs out are
    reported in ``unsent_sends`` — they were never issued, which makes
    the run truncated rather than complete.

    When ``trace_path`` is given, the engine's per-round trace is
    written there as JSONL (see :mod:`repro.metrics.trace`) after the
    run finishes.
    """
    system = MulticastSystem(
        topology,
        pattern,
        variant=variant,
        gamma_lag=gamma_lag,
        indicator_lag=indicator_lag,
        seed=seed,
        scheduling=scheduling,
    )
    multicaster = AtomicMulticast(system)
    pending = sorted(sends, key=lambda s: s.at_round)
    messages: List[MulticastMessage] = []
    skipped: List[Send] = []
    rounds = 0
    cursor = 0
    while cursor < len(pending) or rounds == 0:
        # Issue everything scheduled for the current time.
        while cursor < len(pending) and pending[cursor].at_round <= system.time:
            send = pending[cursor]
            cursor += 1
            sender = _process(topology, send.sender)
            if not system.is_alive(sender):
                skipped.append(send)
                continue
            messages.append(
                multicaster.multicast(sender, send.group, send.payload)
            )
        if cursor >= len(pending):
            break
        system.tick()
        rounds += 1
        if rounds >= max_rounds:
            break
    unsent = list(pending[cursor:])
    rounds += multicaster.run(max_rounds=max_rounds - rounds)
    if trace_path is not None:
        system.tracer.write_jsonl(
            trace_path,
            meta={
                "topology": repr(topology),
                "pattern": str(pattern),
                "seed": seed,
                "variant": variant,
                "scheduling": scheduling,
                "sends": len(sends),
                "rounds": rounds,
            },
        )
    return ScenarioResult(
        record=system.record,
        messages=messages,
        system=system,
        multicaster=multicaster,
        rounds=rounds,
        skipped_sends=skipped,
        unsent_sends=unsent,
    )


def random_sends(
    topology: GroupTopology,
    count: int,
    seed: int = 0,
    spread_rounds: int = 5,
) -> List[Send]:
    """A seeded random send script respecting the closed model."""
    rng = random.Random(seed)
    sends: List[Send] = []
    for _ in range(count):
        group = rng.choice(topology.groups)
        sender = rng.choice(sorted(group.members))
        sends.append(
            Send(
                sender=sender.index,
                group=group.name,
                at_round=rng.randint(0, spread_rounds),
            )
        )
    return sends


def _process(topology: GroupTopology, index: int) -> ProcessId:
    for p in topology.processes:
        if p.index == index:
            return p
    raise ValueError(f"no process with index {index}")
