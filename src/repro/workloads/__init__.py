"""Workload generation: topologies, send scripts and the scenario runner."""

from repro.workloads.runner import (
    ScenarioResult,
    Send,
    random_sends,
    run_scenario,
    scenario_cache_key,
    triage_line,
    triage_record,
)
from repro.workloads.spec import ScenarioSpec, TopologySpec
from repro.workloads.topologies import (
    GENERATORS,
    build_generator,
    chain_topology,
    disjoint_topology,
    hub_topology,
    random_topology,
    ring_topology,
    sparse_overlap_topology,
)

__all__ = [
    "ScenarioResult",
    "ScenarioSpec",
    "Send",
    "TopologySpec",
    "random_sends",
    "run_scenario",
    "scenario_cache_key",
    "triage_line",
    "triage_record",
    "GENERATORS",
    "build_generator",
    "chain_topology",
    "disjoint_topology",
    "hub_topology",
    "random_topology",
    "ring_topology",
    "sparse_overlap_topology",
]
