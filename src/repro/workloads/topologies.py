"""Destination-group topology generators.

These produce the families of topologies used across tests and
benchmarks:

* rings — the canonical cyclic families (γ is load-bearing);
* chains — intersecting but acyclic (``F = ∅``, §6.2's easy case);
* disjoint groups — the embarrassingly parallel case of §2.3;
* hub cliques — every group shares one process (many cyclic families);
* random overlapping topologies, seeded and reproducible;
* sparse-overlap topologies — hundreds of mostly-disjoint groups with
  occasional shared processes (the 100x-scale regime: intersection
  graphs stay sparse, so the cycle sweeps in :mod:`repro.groups` remain
  output-sensitive).

Every generator is registered in :data:`GENERATORS` under a ``kind``
name, so a :class:`repro.workloads.TopologySpec` can address a topology
by *recipe* (``{"kind": "ring", "k": 200}``) instead of by expanded
group map — see :func:`build_generator`.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from repro.groups.topology import GroupTopology, topology_from_indices
from repro.model.errors import SimulationError


def ring_topology(k: int) -> GroupTopology:
    """``k`` groups in a ring: ``g_i = {p_i, p_{i+1 mod k}}``.

    The whole topology is one cyclic family; breaking any single process
    kills it.  Requires ``k >= 3``.
    """
    if k < 3:
        raise ValueError("a ring needs at least 3 groups")
    groups = {f"g{i}": [i, (i % k) + 1] for i in range(1, k + 1)}
    return topology_from_indices(k, groups)


def chain_topology(k: int, group_size: int = 2) -> GroupTopology:
    """``k`` groups in a line: ``g_i`` and ``g_{i+1}`` share one process.

    The intersection graph is a path: intersecting yet hamiltonian-free
    (``F = ∅``).
    """
    if k < 2:
        raise ValueError("a chain needs at least 2 groups")
    stride = group_size - 1
    groups: Dict[str, List[int]] = {}
    for i in range(k):
        start = 1 + i * stride
        groups[f"g{i + 1}"] = list(range(start, start + group_size))
    process_count = 1 + k * stride
    return topology_from_indices(process_count, groups)


def disjoint_topology(k: int, group_size: int = 3) -> GroupTopology:
    """``k`` pairwise-disjoint groups of ``group_size`` processes."""
    if k < 1:
        raise ValueError("need at least one group")
    groups = {
        f"g{i + 1}": list(range(1 + i * group_size, 1 + (i + 1) * group_size))
        for i in range(k)
    }
    return topology_from_indices(k * group_size, groups)


def hub_topology(k: int, spoke_size: int = 2) -> GroupTopology:
    """``k`` groups all sharing process ``p1`` (a clique intersection
    graph): every subset of >= 3 groups is a cyclic family."""
    if k < 2:
        raise ValueError("a hub needs at least 2 groups")
    groups: Dict[str, List[int]] = {}
    next_proc = 2
    for i in range(1, k + 1):
        spokes = list(range(next_proc, next_proc + spoke_size - 1))
        groups[f"g{i}"] = [1] + spokes
        next_proc += spoke_size - 1
    return topology_from_indices(next_proc - 1, groups)


def random_topology(
    seed: int,
    process_count: int = 8,
    group_count: int = 4,
    min_size: int = 2,
    max_size: int = 4,
) -> GroupTopology:
    """A seeded random topology with possibly-overlapping groups.

    Every process is guaranteed to appear in at least zero groups (some
    may be idle — useful for the genuineness audit) and group memberships
    are drawn without replacement per group.
    """
    rng = random.Random(seed)
    groups: Dict[str, List[int]] = {}
    attempts = 0
    while len(groups) < group_count and attempts < 100 * group_count:
        attempts += 1
        size = rng.randint(min_size, min(max_size, process_count))
        members = sorted(rng.sample(range(1, process_count + 1), size))
        if members in list(groups.values()):
            continue  # groups are a *set* of process sets
        groups[f"g{len(groups) + 1}"] = members
    return topology_from_indices(process_count, groups)


def sparse_overlap_topology(
    k: int,
    group_size: int = 3,
    overlap_fraction: float = 0.25,
    seed: int = 0,
) -> GroupTopology:
    """``k`` mostly-disjoint groups with seeded sparse overlaps.

    Consecutive groups share one process with probability
    ``overlap_fraction`` (seeded, reproducible); all other pairs are
    disjoint.  The intersection graph is a disjoint union of short
    paths — no cyclic families, maximum degree 2 — which is the regime
    where hundreds of groups stay tractable: cycle enumeration is
    output-sensitive and the output here is empty.
    """
    if k < 1:
        raise ValueError("need at least one group")
    if group_size < 2:
        raise ValueError("overlapping groups need at least 2 members")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be within [0, 1]")
    rng = random.Random(seed)
    groups: Dict[str, List[int]] = {}
    next_proc = 1
    prev_last = None
    for i in range(1, k + 1):
        if prev_last is not None and rng.random() < overlap_fraction:
            members = [prev_last] + list(
                range(next_proc, next_proc + group_size - 1)
            )
            next_proc += group_size - 1
        else:
            members = list(range(next_proc, next_proc + group_size))
            next_proc += group_size
        groups[f"g{i}"] = members
        prev_last = members[-1]
    return topology_from_indices(next_proc - 1, groups)


#: The generator registry: ``kind`` name -> topology factory.  Factories
#: take only JSON-scalar keyword parameters so a recipe round-trips
#: through :class:`repro.workloads.TopologySpec` JSON unchanged.
GENERATORS: Dict[str, Callable[..., GroupTopology]] = {
    "ring": ring_topology,
    "chain": chain_topology,
    "disjoint": disjoint_topology,
    "hub": hub_topology,
    "random": random_topology,
    "sparse_overlap": sparse_overlap_topology,
}


def build_generator(recipe: Mapping[str, Any]) -> GroupTopology:
    """Build the topology a generator recipe describes.

    ``recipe`` is a mapping with a ``kind`` key naming a registered
    generator plus that generator's keyword parameters, e.g.
    ``{"kind": "ring", "k": 200}``.
    """
    if "kind" not in recipe:
        raise SimulationError("generator recipe needs a 'kind' key")
    kind = recipe["kind"]
    factory = GENERATORS.get(kind)
    if factory is None:
        raise SimulationError(
            f"unknown topology generator {kind!r}; "
            f"registered: {sorted(GENERATORS)}"
        )
    params = {key: value for key, value in recipe.items() if key != "kind"}
    try:
        return factory(**params)
    except TypeError as exc:
        raise SimulationError(
            f"bad parameters for generator {kind!r}: {exc}"
        ) from exc
