"""Destination-group topology generators.

These produce the families of topologies used across tests and
benchmarks:

* rings — the canonical cyclic families (γ is load-bearing);
* chains — intersecting but acyclic (``F = ∅``, §6.2's easy case);
* disjoint groups — the embarrassingly parallel case of §2.3;
* hub cliques — every group shares one process (many cyclic families);
* random overlapping topologies, seeded and reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.groups.topology import GroupTopology, topology_from_indices


def ring_topology(k: int) -> GroupTopology:
    """``k`` groups in a ring: ``g_i = {p_i, p_{i+1 mod k}}``.

    The whole topology is one cyclic family; breaking any single process
    kills it.  Requires ``k >= 3``.
    """
    if k < 3:
        raise ValueError("a ring needs at least 3 groups")
    groups = {f"g{i}": [i, (i % k) + 1] for i in range(1, k + 1)}
    return topology_from_indices(k, groups)


def chain_topology(k: int, group_size: int = 2) -> GroupTopology:
    """``k`` groups in a line: ``g_i`` and ``g_{i+1}`` share one process.

    The intersection graph is a path: intersecting yet hamiltonian-free
    (``F = ∅``).
    """
    if k < 2:
        raise ValueError("a chain needs at least 2 groups")
    stride = group_size - 1
    groups: Dict[str, List[int]] = {}
    for i in range(k):
        start = 1 + i * stride
        groups[f"g{i + 1}"] = list(range(start, start + group_size))
    process_count = 1 + k * stride
    return topology_from_indices(process_count, groups)


def disjoint_topology(k: int, group_size: int = 3) -> GroupTopology:
    """``k`` pairwise-disjoint groups of ``group_size`` processes."""
    if k < 1:
        raise ValueError("need at least one group")
    groups = {
        f"g{i + 1}": list(range(1 + i * group_size, 1 + (i + 1) * group_size))
        for i in range(k)
    }
    return topology_from_indices(k * group_size, groups)


def hub_topology(k: int, spoke_size: int = 2) -> GroupTopology:
    """``k`` groups all sharing process ``p1`` (a clique intersection
    graph): every subset of >= 3 groups is a cyclic family."""
    if k < 2:
        raise ValueError("a hub needs at least 2 groups")
    groups: Dict[str, List[int]] = {}
    next_proc = 2
    for i in range(1, k + 1):
        spokes = list(range(next_proc, next_proc + spoke_size - 1))
        groups[f"g{i}"] = [1] + spokes
        next_proc += spoke_size - 1
    return topology_from_indices(next_proc - 1, groups)


def random_topology(
    seed: int,
    process_count: int = 8,
    group_count: int = 4,
    min_size: int = 2,
    max_size: int = 4,
) -> GroupTopology:
    """A seeded random topology with possibly-overlapping groups.

    Every process is guaranteed to appear in at least zero groups (some
    may be idle — useful for the genuineness audit) and group memberships
    are drawn without replacement per group.
    """
    rng = random.Random(seed)
    groups: Dict[str, List[int]] = {}
    attempts = 0
    while len(groups) < group_count and attempts < 100 * group_count:
        attempts += 1
        size = rng.randint(min_size, min(max_size, process_count))
        members = sorted(rng.sample(range(1, process_count + 1), size))
        if members in list(groups.values()):
            continue  # groups are a *set* of process sets
        groups[f"g{len(groups) + 1}"] = members
    return topology_from_indices(process_count, groups)
