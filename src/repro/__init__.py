"""repro — genuine atomic multicast and its weakest failure detector.

A from-scratch reproduction of Pierre Sutra, *The Weakest Failure
Detector for Genuine Atomic Multicast* (PODC 2022, extended version).

Quickstart::

    from repro import (
        AtomicMulticast, MulticastSystem, paper_figure1_topology,
        failure_free, make_processes, pset,
    )

    topology = paper_figure1_topology()
    processes = make_processes(5)
    system = MulticastSystem(topology, failure_free(pset(processes)))
    amc = AtomicMulticast(system)
    message = amc.multicast(processes[0], "g1", payload="hello")
    amc.run()
    print(amc.delivered_at(processes[1]))

Packages:

* :mod:`repro.model` — processes, failures, messages, runs (Appendix A);
* :mod:`repro.groups` — destination groups, cyclic families (§3);
* :mod:`repro.detectors` — Sigma, Omega, gamma, 1^P, mu (§3);
* :mod:`repro.objects` — shared logs, consensus, adopt-commit (§4.3);
* :mod:`repro.core` — Algorithm 1 and its variants (§4, §6);
* :mod:`repro.substrates` — message-passing constructions (§4.3);
* :mod:`repro.emulation` — necessity extractions, Algorithms 2-5 (§5, §6);
* :mod:`repro.baselines` — broadcast-based, Skeen, partitioned (§2.3, §7);
* :mod:`repro.props` — executable correctness properties (§2.2);
* :mod:`repro.workloads`, :mod:`repro.metrics` — harness utilities.
"""

from repro.core import AtomicMulticast, MulticastSystem
from repro.detectors import (
    GammaOracle,
    IndicatorOracle,
    Mu,
    OmegaOracle,
    PerfectOracle,
    SigmaOracle,
)
from repro.groups import (
    Group,
    GroupTopology,
    paper_figure1_topology,
    topology_from_indices,
)
from repro.model import (
    Environment,
    FailurePattern,
    MulticastMessage,
    ProcessId,
    all_patterns_environment,
    by_indices,
    crash_pattern,
    failure_free,
    make_processes,
    pset,
)
from repro.props import assert_run_ok

__version__ = "1.0.0"

__all__ = [
    "AtomicMulticast",
    "MulticastSystem",
    "GammaOracle",
    "IndicatorOracle",
    "Mu",
    "OmegaOracle",
    "PerfectOracle",
    "SigmaOracle",
    "Group",
    "GroupTopology",
    "paper_figure1_topology",
    "topology_from_indices",
    "Environment",
    "FailurePattern",
    "MulticastMessage",
    "ProcessId",
    "all_patterns_environment",
    "by_indices",
    "crash_pattern",
    "failure_free",
    "make_processes",
    "pset",
    "assert_run_ok",
    "__version__",
]
