"""Cyclic families, closed paths and family faultiness (§3, §5.2).

A family ``f`` of destination groups is *cyclic* when its intersection
graph is hamiltonian.  ``cpaths(f)`` are the closed paths visiting all its
groups — i.e. all rooted, oriented traversals of the hamiltonian cycles.
A cyclic family is *faulty at time t* when every closed path visits an
edge ``(g, h)`` with ``g ∩ h`` faulty at ``t`` (equivalently: every
hamiltonian cycle, as an edge set, contains a dead edge).

§5.2 additionally needs path *equivalence* (same edge set) and *direction*
(±1 w.r.t. a canonical representation); both are provided here.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.groups.topology import Group, GroupFamily
from repro.model.errors import TopologyError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessSet

#: A closed path: a group sequence with ``path[0] == path[-1]`` whose
#: consecutive groups intersect, visiting every group of the family once.
ClosedPath = Tuple[Group, ...]

#: An undirected edge of the intersection graph, canonically ordered.
Edge = Tuple[Group, Group]

_CYCLE_CACHE: Dict[GroupFamily, Tuple[Tuple[Group, ...], ...]] = {}
_CYCLICITY_CACHE: Dict[GroupFamily, bool] = {}
_CHORDLESS_CACHE: Dict[GroupFamily, bool] = {}

#: Work budget (neighbor inspections) for the output-sensitive cycle
#: sweeps.  Sparse intersection graphs (rings, chains, bounded-overlap
#: randoms) finish in a vanishing fraction of this; dense graphs (hub
#: cliques) have exponentially many cyclic families and exhaust it —
#: callers get a :class:`TopologyError` instead of a silent multi-hour
#: enumeration.  Counting inspections rather than path extensions keeps
#: the worst-case cost of the refusal itself proportional to the budget
#: (an extension on a 200-clique scans ~200 neighbors; charging only the
#: extension made hitting the cap two orders of magnitude slower than
#: the cap suggests).
DEFAULT_CYCLE_BUDGET = 2_000_000


def _edge(g: Group, h: Group) -> Edge:
    """Canonical (sorted) representation of an undirected edge."""
    return (g, h) if g < h else (h, g)


def _connected(adjacency: Dict[Group, Set[Group]]) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if not adjacency:
        return True
    start = next(iter(adjacency))
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for neighbor in adjacency[current]:
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == len(adjacency)


def intersection_adjacency(family: Iterable[Group]) -> Dict[Group, Set[Group]]:
    """Adjacency sets of the intersection graph of ``family``."""
    vertices = sorted(set(family))
    return {
        g: {h for h in vertices if h != g and g.intersects(h)} for g in vertices
    }


def hamiltonian_cycles(family: GroupFamily) -> Tuple[Tuple[Group, ...], ...]:
    """All hamiltonian cycles of the family's intersection graph.

    Each cycle is returned once, canonically: as an *open* vertex sequence
    ``(v0, v1, ..., vK-1)`` starting at the smallest group, with
    ``v1 < vK-1`` fixing the direction.  Results are memoized per family.
    Families with fewer than three groups have no hamiltonian cycle.
    """
    if family in _CYCLE_CACHE:
        return _CYCLE_CACHE[family]

    vertices = sorted(family)
    cycles: List[Tuple[Group, ...]] = []
    if len(vertices) >= 3:
        adjacency = intersection_adjacency(vertices)
        start = vertices[0]
        _extend_cycle(start, [start], {start}, adjacency, len(vertices), cycles)
    result = tuple(cycles)
    _CYCLE_CACHE[family] = result
    return result


def _extend_cycle(
    start: Group,
    path: List[Group],
    visited: Set[Group],
    adjacency: Dict[Group, Set[Group]],
    total: int,
    out: List[Tuple[Group, ...]],
) -> None:
    """Depth-first search for hamiltonian cycles rooted at ``start``."""
    current = path[-1]
    if len(path) == total:
        if start in adjacency[current] and path[1] < path[-1]:
            out.append(tuple(path))
        return
    for neighbor in sorted(adjacency[current]):
        if neighbor not in visited:
            # Prune mirrored traversals early: once two vertices are on the
            # path the direction constraint path[1] < path[-1] is checked at
            # the end; exploring both directions is still necessary for
            # correctness, so no pruning beyond the visited set.
            path.append(neighbor)
            visited.add(neighbor)
            _extend_cycle(start, path, visited, adjacency, total, out)
            visited.remove(neighbor)
            path.pop()


def has_hamiltonian_cycle(
    adjacency: Dict[Group, Set[Group]], budget: int = DEFAULT_CYCLE_BUDGET
) -> bool:
    """Whether the graph is hamiltonian — decision only, no enumeration.

    Cheap certificates settle the common shapes without search: a vertex
    of degree < 2 or a disconnected graph cannot be hamiltonian; a
    complete graph, a connected 2-regular graph (a single cycle) and any
    graph meeting Dirac's bound (min degree >= n/2, n >= 3) always are.
    Only the residual cases run a depth-first search, and that search
    returns on the *first* cycle found instead of enumerating all of
    them — the difference between O(1)-ish and exponential on the dense
    families that :func:`hamiltonian_cycles` cannot touch.
    """
    n = len(adjacency)
    if n < 3:
        return False
    degrees = [len(neighbors) for neighbors in adjacency.values()]
    if min(degrees) < 2:
        return False
    if not _connected(adjacency):
        return False
    if all(d == n - 1 for d in degrees):
        return True
    if all(d == 2 for d in degrees):
        return True
    if 2 * min(degrees) >= n:
        return True
    vertices = sorted(adjacency)
    start = vertices[0]
    neighbors = {v: sorted(adjacency[v]) for v in vertices}
    # Iterative DFS for one hamiltonian cycle rooted at the smallest
    # vertex; an explicit stack keeps deep paths off the Python stack.
    path = [start]
    on_path = {start}
    stack = [iter(neighbors[start])]
    work = 0
    while stack:
        advanced = False
        for nxt in stack[-1]:
            work += 1
            if work > budget:
                raise TopologyError(
                    f"hamiltonicity search exceeded {budget} steps; "
                    "the intersection graph is too dense and irregular "
                    "for the certificate fast paths"
                )
            if nxt in on_path:
                if nxt == start and len(path) == n:
                    return True
                continue
            path.append(nxt)
            on_path.add(nxt)
            stack.append(iter(neighbors[nxt]))
            advanced = True
            break
        if not advanced:
            stack.pop()
            on_path.discard(path.pop())
    return False


def cycle_vertex_sets(
    adjacency: Dict[Group, Set[Group]], budget: int = DEFAULT_CYCLE_BUDGET
) -> Set[FrozenSet[Group]]:
    """Vertex sets of all simple cycles (length >= 3) of the graph.

    This is exactly the set of cyclic families of a topology: a family is
    cyclic iff its induced intersection subgraph is hamiltonian, and a
    hamiltonian cycle of an induced subgraph is a simple cycle of the
    whole graph (and vice versa, taking the cycle's vertex set as the
    family).  Enumeration is output-sensitive — rooted at each vertex in
    turn, a DFS over strictly-larger vertices explores only simple paths,
    so sparse graphs (rings: one cycle; chains: none) cost O(V * E)
    instead of the 2^|G| subset sweep.  Dense graphs have exponentially
    many cycles by nature; the work ``budget`` turns that into a
    :class:`TopologyError` rather than a hang.
    """
    vertices = sorted(adjacency)
    index = {v: i for i, v in enumerate(vertices)}
    neighbors = {v: sorted(adjacency[v]) for v in vertices}
    found: Set[FrozenSet[Group]] = set()
    work = 0
    for i, root in enumerate(vertices):
        # Enumerate the simple cycles whose smallest vertex is ``root``:
        # interior path vertices are restricted to indices > i, so every
        # cycle is discovered from exactly one root (twice, once per
        # direction — the frozenset dedups).
        path = [root]
        on_path = {root}
        stack = [iter(neighbors[root])]
        while stack:
            advanced = False
            for nxt in stack[-1]:
                work += 1
                if work > budget:
                    raise TopologyError(
                        f"cyclic-family enumeration exceeded {budget} steps: "
                        f"the intersection graph ({len(vertices)} groups) is "
                        "too dense for exhaustive family enumeration — use a "
                        "sparser topology or the per-family predicates "
                        "(is_cyclic_family, has_hamiltonian_cycle)"
                    )
                if index[nxt] <= i:
                    if nxt == root and len(path) >= 3:
                        found.add(frozenset(path))
                    continue
                if nxt in on_path:
                    continue
                path.append(nxt)
                on_path.add(nxt)
                stack.append(iter(neighbors[nxt]))
                advanced = True
                break
            if not advanced:
                stack.pop()
                on_path.discard(path.pop())
    return found


def is_cyclic_family(family: GroupFamily) -> bool:
    """Whether the intersection graph of ``family`` is hamiltonian (§3).

    Decided via :func:`has_hamiltonian_cycle` (certificates plus
    early-exit search) and memoized — unlike :func:`hamiltonian_cycles`
    this never enumerates, so it stays fast on dense families like hub
    cliques where the cycle count is factorial.
    """
    cached = _CYCLICITY_CACHE.get(family)
    if cached is None:
        if family in _CYCLE_CACHE:
            cached = bool(_CYCLE_CACHE[family])
        else:
            cached = has_hamiltonian_cycle(intersection_adjacency(family))
        _CYCLICITY_CACHE[family] = cached
    return cached


def is_chordless_cycle_family(family: GroupFamily) -> bool:
    """Whether the family's intersection graph is exactly a cycle.

    A connected graph in which every vertex has degree two is a single
    cycle: such families have a unique hamiltonian cycle (up to rotation
    and direction) and no chords.  Chordless families are the granularity
    at which Algorithm 1 derives its coordination wait-sets (see
    :func:`repro.detectors.cyclicity.gamma_groups`): a group intersection
    ``g ∩ h`` shared by any cyclic family always lies on some chordless
    cycle (shortcut the cycle through chords until none remain), and the
    death of ``g ∩ h`` makes every chordless family through that edge
    faulty — which is what unblocks the waiters (Lemma 25).

    A 2-regular graph is hamiltonian iff it is connected, so the check
    is linear in the family size; results are memoized because this
    predicate sits on the gamma-query hot path.
    """
    cached = _CHORDLESS_CACHE.get(family)
    if cached is not None:
        return cached
    if len(family) < 3:
        result = False
    else:
        adjacency = intersection_adjacency(family)
        result = all(
            len(neighbors) == 2 for neighbors in adjacency.values()
        ) and _connected(adjacency)
    _CHORDLESS_CACHE[family] = result
    return result


def cpaths(family: GroupFamily) -> Tuple[ClosedPath, ...]:
    """``cpaths(f)``: every closed path visiting all groups of ``f``.

    This enumerates every rooted, oriented traversal of every hamiltonian
    cycle: for a cycle of length K this yields 2K closed paths (K starting
    points x 2 directions), matching the paper's example where
    ``g3 g1 g2 g3`` and ``g1 g3 g2 g1`` are distinct but equivalent paths.
    """
    paths: List[ClosedPath] = []
    for cycle in hamiltonian_cycles(family):
        k = len(cycle)
        for direction in (1, -1):
            ordered = cycle if direction == 1 else tuple(reversed(cycle))
            for offset in range(k):
                rotated = ordered[offset:] + ordered[:offset]
                paths.append(rotated + (rotated[0],))
    return tuple(paths)


def path_edges(path: ClosedPath) -> FrozenSet[Edge]:
    """The undirected edges visited by a closed path."""
    return frozenset(_edge(path[i], path[i + 1]) for i in range(len(path) - 1))


def paths_equivalent(path_a: ClosedPath, path_b: ClosedPath) -> bool:
    """``π ≡ π'``: the two closed paths visit the same edges (§5.2)."""
    return path_edges(path_a) == path_edges(path_b)


def path_direction(path: ClosedPath) -> int:
    """``dir(π)``: +1 when π follows the canonical cycle orientation.

    The canonical representation of the cycle is the one produced by
    :func:`hamiltonian_cycles`; a path traversing its edges in that
    rotational order is clockwise (+1), the reverse is -1.
    """
    family = frozenset(path[:-1])
    open_path = path[:-1]
    for cycle in hamiltonian_cycles(family):
        if path_edges(path) != path_edges(cycle + (cycle[0],)):
            continue
        k = len(cycle)
        start = open_path[0]
        if start not in cycle:
            continue
        offset = cycle.index(start)
        forward = tuple(cycle[(offset + i) % k] for i in range(k))
        if open_path == forward:
            return 1
        backward = tuple(cycle[(offset - i) % k] for i in range(k))
        if open_path == backward:
            return -1
    raise TopologyError(f"not a closed path of its family: {path}")


def faulty_edges_at(
    family: GroupFamily, pattern: FailurePattern, t: Time
) -> FrozenSet[Edge]:
    """Edges ``(g, h)`` of the family whose intersection is crashed at ``t``."""
    dead: Set[Edge] = set()
    for g, h in itertools.combinations(sorted(family), 2):
        shared = g.intersection(h)
        if shared and pattern.set_faulty_at(shared, t):
            dead.add(_edge(g, h))
    return frozenset(dead)


def family_faulty_at(
    family: GroupFamily, pattern: FailurePattern, t: Time
) -> bool:
    """Whether a cyclic family is *faulty at time t* (§3).

    True when every closed path of the family visits some edge whose group
    intersection is entirely crashed at ``t``.  Equivalent paths visit the
    same edges, so this is a statement about hamiltonian cycles — and
    "every hamiltonian cycle contains a dead edge" is the same as "the
    intersection graph with the dead edges removed is not hamiltonian",
    which :func:`has_hamiltonian_cycle` decides without enumerating the
    (possibly factorial) cycle set.
    """
    if not is_cyclic_family(family):
        raise TopologyError("faultiness is only defined for cyclic families")
    dead = faulty_edges_at(family, pattern, t)
    if not dead:
        return False
    adjacency = intersection_adjacency(family)
    alive = {
        g: {h for h in neighbors if _edge(g, h) not in dead}
        for g, neighbors in adjacency.items()
    }
    return not has_hamiltonian_cycle(alive)


def family_eventually_faulty(
    family: GroupFamily, pattern: FailurePattern
) -> bool:
    """Whether the family becomes faulty at some time under ``pattern``.

    Evaluated on the suffix after the last alive-set change, so a
    family whose members all *recover* is (correctly) not eventually
    faulty.
    """
    horizon = max(pattern.change_instants(), default=0)
    return family_faulty_at(family, pattern, horizon)


def family_fault_time(
    family: GroupFamily, pattern: FailurePattern
) -> Optional[Time]:
    """The first time at which the family is faulty, if ever.

    Computed by checking faultiness at each crash (and recovery) time
    of the pattern — faultiness can only change at those instants.
    """
    instants = list(pattern.change_instants())
    for t in instants:
        if family_faulty_at(family, pattern, t):
            return t
    return None


def family_name(family: GroupFamily) -> str:
    """Deterministic human-readable name, e.g. ``{g1,g2,g3}``."""
    return "{" + ",".join(g.name for g in sorted(family, key=lambda g: g.name)) + "}"
