"""Destination groups and group topologies (§2.2, §3).

The atomic-multicast problem is fully determined by the set ``G`` of
destination groups (§2.2, dissemination model).  A :class:`Group` is a
named, non-empty set of processes; a :class:`GroupTopology` is the set
``G`` together with the system's processes, and provides all the derived
combinatorics the paper uses: ``G(p)``, pairwise intersections, the
intersection graph, and enumeration of the cyclic families ``F``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.model.errors import TopologyError
from repro.model.processes import ProcessId, ProcessSet, make_processes, pset


class Group:
    """A destination group: a named, non-empty set of processes.

    Groups compare and hash by *membership* (the paper's ``G`` is a set of
    process sets); the name is purely for display and diagnostics.  Groups
    are totally ordered by membership so topologies are deterministic.
    """

    __slots__ = ("name", "members", "_key")

    def __init__(self, name: str, members: Iterable[ProcessId]) -> None:
        self.name = name
        self.members: ProcessSet = pset(members)
        if not self.members:
            raise TopologyError(f"group {name!r} is empty")
        self._key = tuple(sorted(self.members))

    def __contains__(self, p: ProcessId) -> bool:
        return p in self.members

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __lt__(self, other: "Group") -> bool:
        return self._key < other._key

    def intersects(self, other: "Group") -> bool:
        """Whether the two groups are *intersecting* (§2.2).

        A group trivially intersects itself; callers interested in proper
        intersections must also check ``self != other``.
        """
        return bool(self.members & other.members)

    def intersection(self, other: "Group") -> ProcessSet:
        """``g ∩ h`` as a set of processes."""
        return self.members & other.members

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ",".join(p.name for p in sorted(self.members))
        return f"{self.name}{{{body}}}"


#: A family of destination groups (§3): a set of non-repeated groups.
GroupFamily = FrozenSet[Group]

#: Up to this many groups, ``cyclic_families`` runs the original 2^|G|
#: subset sweep (byte-identical order to the seed enumeration, which the
#: golden fingerprints pin); above it, the output-sensitive simple-cycle
#: sweep of :func:`repro.groups.families.cycle_vertex_sets` takes over —
#: sorted into the same (size, lexicographic) order the sweep produces.
FAMILY_BRUTE_FORCE_LIMIT = 12


class GroupTopology:
    """The destination groups ``G`` over a process set ``P``.

    This object is immutable after construction and memoizes the expensive
    combinatorics (cyclic-family enumeration).

    Attributes:
        processes: the processes of the system.
        groups: the destination groups, sorted deterministically.
    """

    def __init__(
        self, processes: Iterable[ProcessId], groups: Iterable[Group]
    ) -> None:
        self.processes: ProcessSet = pset(processes)
        self.groups: Tuple[Group, ...] = tuple(sorted(set(groups)))
        if not self.groups:
            raise TopologyError("a topology needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate group names: {names}")
        for group in self.groups:
            if not group.members <= self.processes:
                raise TopologyError(
                    f"group {group.name} mentions processes outside the system"
                )
        self._by_name: Dict[str, Group] = {g.name: g for g in self.groups}
        self._by_members: Dict[ProcessSet, Group] = {
            g.members: g for g in self.groups
        }
        self._cyclic_families: Optional[Tuple[GroupFamily, ...]] = None
        self._groups_by_process: Optional[
            Dict[ProcessId, Tuple[Group, ...]]
        ] = None
        self._families_by_process: Optional[
            Dict[ProcessId, Tuple[GroupFamily, ...]]
        ] = None
        self._intersecting_pairs: Optional[
            Tuple[Tuple[Group, Group], ...]
        ] = None

    # -- Lookup -----------------------------------------------------------

    def group(self, name: str) -> Group:
        """The group called ``name`` (raises :class:`TopologyError`)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"no group named {name!r}") from None

    def group_with_members(self, members: ProcessSet) -> Optional[Group]:
        """The group whose membership equals ``members``, if any.

        Groups compare by membership, so this lookup is total over ``G``;
        it replaces linear scans on per-message hot paths (e.g. resolving
        ``dst(m)`` back to its destination group).
        """
        return self._by_members.get(members)

    def groups_of(self, p: ProcessId) -> Tuple[Group, ...]:
        """``G(p)``: destination groups that contain ``p`` (§2.2)."""
        index = self._groups_by_process
        if index is None:
            accumulator: Dict[ProcessId, List[Group]] = {}
            for g in self.groups:
                for q in g.members:
                    accumulator.setdefault(q, []).append(g)
            index = {q: tuple(gs) for q, gs in accumulator.items()}
            self._groups_by_process = index
        return index.get(p, ())

    def intersecting_pairs(self) -> Tuple[Tuple[Group, Group], ...]:
        """All unordered pairs of distinct intersecting groups."""
        if self._intersecting_pairs is None:
            self._intersecting_pairs = tuple(
                (g, h)
                for g, h in itertools.combinations(self.groups, 2)
                if g.intersects(h)
            )
        return self._intersecting_pairs

    def intersections(self) -> Tuple[ProcessSet, ...]:
        """The distinct non-empty proper intersections ``g ∩ h``."""
        seen: List[ProcessSet] = []
        for g, h in self.intersecting_pairs():
            shared = g.intersection(h)
            if shared not in seen:
                seen.append(shared)
        return tuple(seen)

    # -- The intersection graph -------------------------------------------

    def intersection_graph(
        self, family: Optional[Iterable[Group]] = None
    ) -> Mapping[Group, FrozenSet[Group]]:
        """Adjacency of the intersection graph of ``family`` (default: G).

        Vertices are groups; an edge links two distinct groups iff they
        intersect (§3, footnote 1).
        """
        vertices = tuple(sorted(set(family))) if family is not None else self.groups
        adjacency: Dict[Group, FrozenSet[Group]] = {}
        for g in vertices:
            adjacency[g] = frozenset(
                h for h in vertices if h != g and g.intersects(h)
            )
        return adjacency

    # -- Cyclic families ----------------------------------------------------

    def cyclic_families(self) -> Tuple[GroupFamily, ...]:
        """``F``: every cyclic family in ``2^G`` (§3), memoized.

        A family is cyclic when its intersection graph is hamiltonian; this
        requires at least three groups (Lemma 21 treats |C| <= 2 apart).

        Small topologies keep the original subset sweep (its enumeration
        order is pinned by golden fingerprints).  Beyond
        :data:`FAMILY_BRUTE_FORCE_LIMIT` groups the sweep's 2^|G| cost is
        prohibitive, so ``F`` is instead read off the simple cycles of
        the intersection graph — a family is cyclic iff it is the vertex
        set of a simple cycle — which is output-sensitive: linear-ish on
        sparse structures (a 400-group ring has exactly one cyclic
        family) and a :class:`TopologyError` on dense ones (a hub clique
        at that size has astronomically many; enumerating them is the
        mistake, not the budget).
        """
        if self._cyclic_families is None:
            from repro.groups.families import (
                cycle_vertex_sets,
                is_cyclic_family,
            )

            if len(self.groups) <= FAMILY_BRUTE_FORCE_LIMIT:
                found: List[GroupFamily] = []
                for size in range(3, len(self.groups) + 1):
                    for combo in itertools.combinations(self.groups, size):
                        family = frozenset(combo)
                        if is_cyclic_family(family):
                            found.append(family)
            else:
                sets = cycle_vertex_sets(dict(self.intersection_graph()))
                found = sorted(
                    sets, key=lambda f: (len(f), tuple(sorted(f)))
                )
            self._cyclic_families = tuple(found)
        return self._cyclic_families

    def families_of_group(self, g: Group) -> Tuple[GroupFamily, ...]:
        """``F(g)``: the cyclic families that contain group ``g``."""
        return tuple(f for f in self.cyclic_families() if g in f)

    def families_of_process(self, p: ProcessId) -> Tuple[GroupFamily, ...]:
        """``F(p)``: families with ``p`` in some proper group intersection.

        Per §3: the cyclic families ``f`` such that there exist distinct
        ``g, h in f`` with ``p in g ∩ h``.  The index over all carrier
        processes is built once (preserving the ``cyclic_families``
        enumeration order per process) — gamma oracles consult this on
        every query, so the former per-call family sweep was a hot spot.
        """
        index = self._families_by_process
        if index is None:
            accumulator: Dict[ProcessId, List[GroupFamily]] = {}
            for family in self.cyclic_families():
                members = sorted(family)
                carriers: set = set()
                for g, h in itertools.combinations(members, 2):
                    carriers |= g.intersection(h)
                for q in carriers:
                    accumulator.setdefault(q, []).append(family)
            index = {q: tuple(fams) for q, fams in accumulator.items()}
            self._families_by_process = index
        return index.get(p, ())

    def cyclic_partners(self, g: Group, p: ProcessId) -> Tuple[Group, ...]:
        """``H(p, g)`` of Lemma 30: groups ``h`` intersecting ``g`` such
        that some family in ``F(p)`` contains both ``g`` and ``h``."""
        partners: List[Group] = []
        for family in self.families_of_process(p):
            if g not in family:
                continue
            for h in family:
                if h != g and g.intersects(h) and h not in partners:
                    partners.append(h)
        return tuple(sorted(partners))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupTopology({', '.join(g.name for g in self.groups)})"


def topology_from_indices(
    process_count: int, named_groups: Mapping[str, Sequence[int]]
) -> GroupTopology:
    """Build a topology from raw indices — the common test/bench entry.

    Example::

        topology_from_indices(5, {"g1": [1, 2], "g2": [2, 3]})
    """
    processes = make_processes(process_count)
    groups = [
        Group(name, (processes[i - 1] for i in indices))
        for name, indices in named_groups.items()
    ]
    return GroupTopology(processes, groups)


def paper_figure1_topology() -> GroupTopology:
    """The exact topology of Figure 1 of the paper.

    Five processes and four groups::

        g1 = {p1, p2}   g2 = {p2, p3}   g3 = {p1, p3, p4}   g4 = {p1, p4, p5}

    whose cyclic families are ``f = {g1,g2,g3}``, ``f' = {g1,g3,g4}`` and
    ``f'' = {g1,g2,g3,g4}``.
    """
    return topology_from_indices(
        5,
        {
            "g1": [1, 2],
            "g2": [2, 3],
            "g3": [1, 3, 4],
            "g4": [1, 4, 5],
        },
    )
