"""Destination groups and group topologies (§2.2, §3).

The atomic-multicast problem is fully determined by the set ``G`` of
destination groups (§2.2, dissemination model).  A :class:`Group` is a
named, non-empty set of processes; a :class:`GroupTopology` is the set
``G`` together with the system's processes, and provides all the derived
combinatorics the paper uses: ``G(p)``, pairwise intersections, the
intersection graph, and enumeration of the cyclic families ``F``.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.model.errors import TopologyError
from repro.model.processes import ProcessId, ProcessSet, make_processes, pset


class Group:
    """A destination group: a named, non-empty set of processes.

    Groups compare and hash by *membership* (the paper's ``G`` is a set of
    process sets); the name is purely for display and diagnostics.  Groups
    are totally ordered by membership so topologies are deterministic.
    """

    __slots__ = ("name", "members", "_key")

    def __init__(self, name: str, members: Iterable[ProcessId]) -> None:
        self.name = name
        self.members: ProcessSet = pset(members)
        if not self.members:
            raise TopologyError(f"group {name!r} is empty")
        self._key = tuple(sorted(self.members))

    def __contains__(self, p: ProcessId) -> bool:
        return p in self.members

    def __iter__(self) -> Iterator[ProcessId]:
        return iter(sorted(self.members))

    def __len__(self) -> int:
        return len(self.members)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self.members == other.members

    def __hash__(self) -> int:
        return hash(self.members)

    def __lt__(self, other: "Group") -> bool:
        return self._key < other._key

    def intersects(self, other: "Group") -> bool:
        """Whether the two groups are *intersecting* (§2.2).

        A group trivially intersects itself; callers interested in proper
        intersections must also check ``self != other``.
        """
        return bool(self.members & other.members)

    def intersection(self, other: "Group") -> ProcessSet:
        """``g ∩ h`` as a set of processes."""
        return self.members & other.members

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        body = ",".join(p.name for p in sorted(self.members))
        return f"{self.name}{{{body}}}"


#: A family of destination groups (§3): a set of non-repeated groups.
GroupFamily = FrozenSet[Group]


class GroupTopology:
    """The destination groups ``G`` over a process set ``P``.

    This object is immutable after construction and memoizes the expensive
    combinatorics (cyclic-family enumeration).

    Attributes:
        processes: the processes of the system.
        groups: the destination groups, sorted deterministically.
    """

    def __init__(
        self, processes: Iterable[ProcessId], groups: Iterable[Group]
    ) -> None:
        self.processes: ProcessSet = pset(processes)
        self.groups: Tuple[Group, ...] = tuple(sorted(set(groups)))
        if not self.groups:
            raise TopologyError("a topology needs at least one group")
        names = [g.name for g in self.groups]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate group names: {names}")
        for group in self.groups:
            if not group.members <= self.processes:
                raise TopologyError(
                    f"group {group.name} mentions processes outside the system"
                )
        self._by_name: Dict[str, Group] = {g.name: g for g in self.groups}
        self._cyclic_families: Optional[Tuple[GroupFamily, ...]] = None

    # -- Lookup -----------------------------------------------------------

    def group(self, name: str) -> Group:
        """The group called ``name`` (raises :class:`TopologyError`)."""
        try:
            return self._by_name[name]
        except KeyError:
            raise TopologyError(f"no group named {name!r}") from None

    def groups_of(self, p: ProcessId) -> Tuple[Group, ...]:
        """``G(p)``: destination groups that contain ``p`` (§2.2)."""
        return tuple(g for g in self.groups if p in g)

    def intersecting_pairs(self) -> Tuple[Tuple[Group, Group], ...]:
        """All unordered pairs of distinct intersecting groups."""
        return tuple(
            (g, h)
            for g, h in itertools.combinations(self.groups, 2)
            if g.intersects(h)
        )

    def intersections(self) -> Tuple[ProcessSet, ...]:
        """The distinct non-empty proper intersections ``g ∩ h``."""
        seen: List[ProcessSet] = []
        for g, h in self.intersecting_pairs():
            shared = g.intersection(h)
            if shared not in seen:
                seen.append(shared)
        return tuple(seen)

    # -- The intersection graph -------------------------------------------

    def intersection_graph(
        self, family: Optional[Iterable[Group]] = None
    ) -> Mapping[Group, FrozenSet[Group]]:
        """Adjacency of the intersection graph of ``family`` (default: G).

        Vertices are groups; an edge links two distinct groups iff they
        intersect (§3, footnote 1).
        """
        vertices = tuple(sorted(set(family))) if family is not None else self.groups
        adjacency: Dict[Group, FrozenSet[Group]] = {}
        for g in vertices:
            adjacency[g] = frozenset(
                h for h in vertices if h != g and g.intersects(h)
            )
        return adjacency

    # -- Cyclic families ----------------------------------------------------

    def cyclic_families(self) -> Tuple[GroupFamily, ...]:
        """``F``: every cyclic family in ``2^G`` (§3), memoized.

        A family is cyclic when its intersection graph is hamiltonian; this
        requires at least three groups (Lemma 21 treats |C| <= 2 apart).
        """
        if self._cyclic_families is None:
            from repro.groups.families import is_cyclic_family

            found: List[GroupFamily] = []
            for size in range(3, len(self.groups) + 1):
                for combo in itertools.combinations(self.groups, size):
                    family = frozenset(combo)
                    if is_cyclic_family(family):
                        found.append(family)
            self._cyclic_families = tuple(found)
        return self._cyclic_families

    def families_of_group(self, g: Group) -> Tuple[GroupFamily, ...]:
        """``F(g)``: the cyclic families that contain group ``g``."""
        return tuple(f for f in self.cyclic_families() if g in f)

    def families_of_process(self, p: ProcessId) -> Tuple[GroupFamily, ...]:
        """``F(p)``: families with ``p`` in some proper group intersection.

        Per §3: the cyclic families ``f`` such that there exist distinct
        ``g, h in f`` with ``p in g ∩ h``.
        """
        result: List[GroupFamily] = []
        for family in self.cyclic_families():
            members = sorted(family)
            for g, h in itertools.combinations(members, 2):
                if p in g.intersection(h):
                    result.append(family)
                    break
        return tuple(result)

    def cyclic_partners(self, g: Group, p: ProcessId) -> Tuple[Group, ...]:
        """``H(p, g)`` of Lemma 30: groups ``h`` intersecting ``g`` such
        that some family in ``F(p)`` contains both ``g`` and ``h``."""
        partners: List[Group] = []
        for family in self.families_of_process(p):
            if g not in family:
                continue
            for h in family:
                if h != g and g.intersects(h) and h not in partners:
                    partners.append(h)
        return tuple(sorted(partners))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GroupTopology({', '.join(g.name for g in self.groups)})"


def topology_from_indices(
    process_count: int, named_groups: Mapping[str, Sequence[int]]
) -> GroupTopology:
    """Build a topology from raw indices — the common test/bench entry.

    Example::

        topology_from_indices(5, {"g1": [1, 2], "g2": [2, 3]})
    """
    processes = make_processes(process_count)
    groups = [
        Group(name, (processes[i - 1] for i in indices))
        for name, indices in named_groups.items()
    ]
    return GroupTopology(processes, groups)


def paper_figure1_topology() -> GroupTopology:
    """The exact topology of Figure 1 of the paper.

    Five processes and four groups::

        g1 = {p1, p2}   g2 = {p2, p3}   g3 = {p1, p3, p4}   g4 = {p1, p4, p5}

    whose cyclic families are ``f = {g1,g2,g3}``, ``f' = {g1,g3,g4}`` and
    ``f'' = {g1,g2,g3,g4}``.
    """
    return topology_from_indices(
        5,
        {
            "g1": [1, 2],
            "g2": [2, 3],
            "g3": [1, 3, 4],
            "g4": [1, 4, 5],
        },
    )
