"""Destination-group combinatorics: topologies, intersection graphs,
cyclic families and closed paths (§3 of the paper)."""

from repro.groups.families import (
    ClosedPath,
    cpaths,
    family_eventually_faulty,
    family_fault_time,
    family_faulty_at,
    family_name,
    faulty_edges_at,
    hamiltonian_cycles,
    intersection_adjacency,
    is_chordless_cycle_family,
    is_cyclic_family,
    path_direction,
    path_edges,
    paths_equivalent,
)
from repro.groups.topology import (
    Group,
    GroupFamily,
    GroupTopology,
    paper_figure1_topology,
    topology_from_indices,
)

__all__ = [
    "ClosedPath",
    "cpaths",
    "family_eventually_faulty",
    "family_fault_time",
    "family_faulty_at",
    "family_name",
    "faulty_edges_at",
    "hamiltonian_cycles",
    "intersection_adjacency",
    "is_chordless_cycle_family",
    "is_cyclic_family",
    "path_direction",
    "path_edges",
    "paths_equivalent",
    "Group",
    "GroupFamily",
    "GroupTopology",
    "paper_figure1_topology",
    "topology_from_indices",
]
