"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the library."""


class ModelError(ReproError):
    """A violation of the system model (Appendix A of the paper).

    Raised, for instance, when a crashed process attempts to take a step,
    or when a failure pattern is not monotone.
    """


class SpecificationError(ReproError):
    """An object was used outside its sequential specification.

    For example, calling ``bumpAndLock`` on a datum that is not present in
    a log, or proposing to a consensus object that already decided with an
    incompatible configuration.
    """


class TopologyError(ReproError):
    """An ill-formed destination-group topology.

    Raised when groups are empty, reference unknown processes, or when a
    requested group/intersection does not exist in the topology.
    """


class DetectorError(ReproError):
    """A failure-detector module was queried incorrectly.

    For instance querying a set-restricted detector from a process outside
    its scope when the caller asked for strict range checking.
    """


class SimulationError(ReproError):
    """The simulation kernel reached an inconsistent state.

    This signals a bug in a protocol implementation (e.g. an automaton
    returning malformed send instructions), never an expected condition.
    """


class PropertyViolation(ReproError):
    """A correctness property of atomic multicast was violated in a run.

    Property checkers raise this (or return structured evidence) when a
    recorded run breaks Integrity, Ordering, Termination, Minimality,
    Strict Ordering or Group Parallelism.
    """

    def __init__(self, prop: str, evidence: str) -> None:
        super().__init__(f"{prop}: {evidence}")
        self.prop = prop
        self.evidence = evidence
