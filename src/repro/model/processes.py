"""Process identifiers and process sets.

The paper assumes a finite set of processes ``P = {p1, ..., pn}``.  We
represent a process by a lightweight immutable identifier
(:class:`ProcessId`) and expose helpers to build canonical process sets.

Process identifiers are totally ordered (by index) which the algorithms
rely on: Algorithm 1 breaks ties between data items sharing a log slot with
"some a priori total order" and several constructions elect the smallest
correct process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple


@dataclass(frozen=True, order=True)
class ProcessId:
    """An immutable, totally ordered process identifier.

    Attributes:
        index: position of the process in the system, starting at 1 (the
            paper numbers processes ``p1, p2, ...``).
    """

    index: int

    def __post_init__(self) -> None:
        if self.index < 1:
            raise ValueError(f"process index must be >= 1, got {self.index}")

    @property
    def name(self) -> str:
        """Human-readable name, matching the paper's ``p<i>`` convention."""
        return f"p{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


ProcessSet = FrozenSet[ProcessId]


def make_processes(count: int) -> Tuple[ProcessId, ...]:
    """Return the canonical tuple of processes ``(p1, ..., p<count>)``.

    Args:
        count: number of processes in the system; must be positive.
    """
    if count < 1:
        raise ValueError(f"a system needs at least one process, got {count}")
    return tuple(ProcessId(i) for i in range(1, count + 1))


def pset(processes: Iterable[ProcessId]) -> ProcessSet:
    """Freeze an iterable of processes into a canonical set."""
    return frozenset(processes)


def by_indices(*indices: int) -> ProcessSet:
    """Build a process set from raw indices — convenient in tests.

    ``by_indices(1, 3)`` is ``{p1, p3}``.
    """
    return frozenset(ProcessId(i) for i in indices)
