"""Steps, schedules and run records (Appendix A).

A *step* is a tuple ``(p, m, d)``: process ``p`` receives datagram ``m``
(possibly null) with failure-detector sample ``d`` and transitions.  A
*schedule* is a sequence of steps; a *run* pairs a failure pattern, a
detector history, an initial configuration, a schedule and a timing.

For the executable reproduction the important artifact is the
:class:`RunRecord`: the trace that the simulator produces and that the
property checkers in :mod:`repro.props` consume.  It records, with global
timestamps, every multicast, every delivery, and every computational step
taken by every process — enough to decide Integrity, Ordering, Termination,
Strict Ordering, Minimality and Group Parallelism after the fact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.model.failures import FailurePattern, Time
from repro.model.messages import MulticastMessage
from repro.model.processes import ProcessId, ProcessSet


@dataclass(frozen=True, slots=True)
class Step:
    """One step ``(p, m, d)`` of an automaton, with its time.

    ``received`` is a descriptive token (datagram repr or ``None``) rather
    than the datagram object itself so records stay cheap to keep around.
    """

    time: Time
    process: ProcessId
    received: Optional[str]
    detector_sample: Any = None


@dataclass(frozen=True, slots=True)
class MulticastEvent:
    """``multicast(m)`` was invoked."""

    time: Time
    process: ProcessId
    message: MulticastMessage


@dataclass(frozen=True, slots=True)
class DeliveryEvent:
    """``deliver(m)`` occurred at a process."""

    time: Time
    process: ProcessId
    message: MulticastMessage


class RunRecord:
    """The observable trace of one simulated run.

    The record is append-only during the run and read-only afterwards.
    It provides the derived relations used throughout the paper:

    * ``local_order(p)`` — the delivery sequence at ``p`` (yields the
      local order ``m |->_p m'``);
    * ``delivered_by(m)`` — who delivered ``m`` and when;
    * ``steps_of(p)`` — computational steps charged to ``p``, the basis of
      the Minimality audit (§2.3).
    """

    def __init__(self, processes: ProcessSet, pattern: FailurePattern) -> None:
        self.processes = processes
        self.pattern = pattern
        self.multicasts: List[MulticastEvent] = []
        self.deliveries: List[DeliveryEvent] = []
        # Steps are kept as parallel arrays: the step flood (invoker +
        # every carrier, per shared-object operation) dominates record
        # growth, and four flat lists append an order of magnitude
        # faster than one frozen dataclass per charge.  ``steps``
        # materializes the Step view lazily for checkers and tests.
        self._step_times: List[Time] = []
        self._step_procs: List[ProcessId] = []
        self._step_received: List[Optional[str]] = []
        self._step_samples: List[Any] = []
        self._steps_cache: Optional[List[Step]] = None
        self._local_orders: Dict[ProcessId, List[MulticastMessage]] = {}
        self._delivery_times: Dict[Tuple[ProcessId, Any], Time] = {}
        self._times_by_mid: Dict[Any, Dict[ProcessId, Time]] = {}
        self._pair_counts: Dict[Tuple[ProcessId, Any], int] = {}
        self._multicast_times: Dict[Any, Time] = {}
        self._step_counts: Dict[ProcessId, int] = {}

    # -- Recording (called by the simulator) -----------------------------

    def note_multicast(
        self, time: Time, process: ProcessId, message: MulticastMessage
    ) -> None:
        self.multicasts.append(MulticastEvent(time, process, message))
        self._multicast_times.setdefault(message.mid, time)

    def note_delivery(
        self, time: Time, process: ProcessId, message: MulticastMessage
    ) -> None:
        self.deliveries.append(DeliveryEvent(time, process, message))
        self._local_orders.setdefault(process, []).append(message)
        self._delivery_times[(process, message.mid)] = time
        self._times_by_mid.setdefault(message.mid, {})[process] = time
        pair = (process, message.mid)
        self._pair_counts[pair] = self._pair_counts.get(pair, 0) + 1

    def note_step(
        self,
        time: Time,
        process: ProcessId,
        received: Optional[str] = None,
        detector_sample: Any = None,
    ) -> None:
        self._step_times.append(time)
        self._step_procs.append(process)
        self._step_received.append(received)
        self._step_samples.append(detector_sample)
        self._step_counts[process] = self._step_counts.get(process, 0) + 1

    @property
    def steps(self) -> List[Step]:
        """The recorded steps as :class:`Step` objects (lazy view).

        Materialized from the parallel arrays on first access and cached
        until further steps arrive; treat the returned list as
        read-only.
        """
        cache = self._steps_cache
        if cache is None or len(cache) != len(self._step_times):
            cache = [
                Step(t, p, r, d)
                for t, p, r, d in zip(
                    self._step_times,
                    self._step_procs,
                    self._step_received,
                    self._step_samples,
                )
            ]
            self._steps_cache = cache
        return cache

    # -- Derived queries (used by checkers and metrics) -------------------

    def local_order(self, p: ProcessId) -> Sequence[MulticastMessage]:
        """Messages in the order ``p`` delivered them."""
        return tuple(self._local_orders.get(p, ()))

    def delivered_messages(self) -> Tuple[MulticastMessage, ...]:
        """Every distinct message delivered somewhere, in event order."""
        seen = {}
        for event in self.deliveries:
            seen.setdefault(event.message.mid, event.message)
        return tuple(seen.values())

    def multicast_messages(self) -> Tuple[MulticastMessage, ...]:
        seen = {}
        for event in self.multicasts:
            seen.setdefault(event.message.mid, event.message)
        return tuple(seen.values())

    def delivered_by(self, message: MulticastMessage) -> ProcessSet:
        return frozenset(self._times_by_mid.get(message.mid, ()))

    def delivery_time(
        self, p: ProcessId, message: MulticastMessage
    ) -> Optional[Time]:
        return self._delivery_times.get((p, message.mid))

    def first_delivery_time(self, message: MulticastMessage) -> Optional[Time]:
        times = self._times_by_mid.get(message.mid)
        return min(times.values()) if times else None

    def multicast_time(self, message: MulticastMessage) -> Optional[Time]:
        return self._multicast_times.get(message.mid)

    def steps_of(self, p: ProcessId) -> int:
        """Number of computational steps charged to ``p`` in the run."""
        return self._step_counts.get(p, 0)

    def step_counts(self) -> Mapping[ProcessId, int]:
        return dict(self._step_counts)

    def delivery_count(self, p: ProcessId, message: MulticastMessage) -> int:
        """How many times ``p`` delivered ``message`` (Integrity wants <= 1)."""
        return self._pair_counts.get((p, message.mid), 0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RunRecord({len(self.multicasts)} multicasts, "
            f"{len(self.deliveries)} deliveries, "
            f"{len(self._step_times)} steps)"
        )
