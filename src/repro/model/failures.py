"""Failure patterns and environments (Appendix A of the paper).

A *failure pattern* is a monotone function ``F : N -> 2^P`` giving the set
of processes that have crashed by each time.  Processes never recover.
``Faulty(F)`` is the union of all ``F(t)`` and ``Correct(F)`` its
complement.  An *environment* is a set of failure patterns describing which
failures may happen.

The classes below make patterns finite and executable: a pattern is stored
as a set of ``(process, crash_time)`` events, and the environment abstraction
is realized by generators (all patterns with at most ``k`` crashes, patterns
where a given set is failure-prone, ...).

The robustness harness extends the crash-stop model with an *optional*
crash–recovery overlay: ``recovery_times`` maps a crashed process to the
time at which it rejoins (from its durable substrate state).  A pattern
without recoveries is exactly the paper's monotone object, and every
recovery-free query below reduces to the crash-stop semantics — the
overlay exists so the fault axis (``crash_recover`` events) can model
processes that come back, while the *classification* stays standard:
a process that crashes and recovers counts as *correct* ("eventually
always up", the crash-recovery notion of correctness), so detector
properties (Leadership, Intersection/Liveness) keep their meaning on
the suffix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Iterator, Mapping, Optional, Sequence, Tuple

from repro.model.errors import ModelError
from repro.model.processes import ProcessId, ProcessSet, pset

#: Time is the range of the global clock: natural numbers.
Time = int


@dataclass(frozen=True)
class FailurePattern:
    """A monotone crash schedule.

    Attributes:
        processes: all processes of the system.
        crash_times: maps each faulty process to the first time at which it
            is crashed.  Processes absent from the mapping are correct.
        recovery_times: crash–recovery overlay; maps a crashed process to
            the time at which it rejoins.  Empty in the crash-stop model.
    """

    processes: ProcessSet
    crash_times: Mapping[ProcessId, Time] = field(default_factory=dict)
    recovery_times: Mapping[ProcessId, Time] = field(default_factory=dict)

    def __post_init__(self) -> None:
        unknown = set(self.crash_times) - set(self.processes)
        if unknown:
            raise ModelError(f"crash times for unknown processes: {sorted(unknown)}")
        for proc, when in self.crash_times.items():
            if when < 0:
                raise ModelError(f"negative crash time {when} for {proc}")
        for proc, when in self.recovery_times.items():
            crashed = self.crash_times.get(proc)
            if crashed is None:
                raise ModelError(f"recovery for never-crashed {proc}")
            if when <= crashed:
                raise ModelError(
                    f"recovery at {when} not after crash at {crashed} "
                    f"for {proc}"
                )
        # Freeze the mappings so patterns are hashable value objects.
        object.__setattr__(self, "crash_times", dict(self.crash_times))
        object.__setattr__(self, "recovery_times", dict(self.recovery_times))

    # -- The mathematical interface -------------------------------------

    def at(self, t: Time) -> ProcessSet:
        """``F(t)``: the set of processes down at time ``t``."""
        return pset(p for p in self.crash_times if not self.is_alive(p, t))

    @property
    def faulty(self) -> ProcessSet:
        """``Faulty(F)``: processes that crash and never come back."""
        return pset(
            p for p in self.crash_times if p not in self.recovery_times
        )

    @property
    def correct(self) -> ProcessSet:
        """``Correct(F)``: processes that are eventually always up."""
        return pset(p for p in self.processes if self.is_correct(p))

    # -- Convenience queries ---------------------------------------------

    def is_alive(self, p: ProcessId, t: Time) -> bool:
        """Whether ``p`` is up at time ``t`` (crash-stop: not yet
        crashed; with a recovery, also every time from the rejoin on)."""
        when = self.crash_times.get(p)
        if when is None or when > t:
            return True
        rejoin = self.recovery_times.get(p)
        return rejoin is not None and t >= rejoin

    def is_faulty(self, p: ProcessId) -> bool:
        return p in self.crash_times and p not in self.recovery_times

    def is_correct(self, p: ProcessId) -> bool:
        return p not in self.crash_times or p in self.recovery_times

    def alive_at(self, t: Time) -> ProcessSet:
        """Processes not crashed at time ``t``."""
        return pset(p for p in self.processes if self.is_alive(p, t))

    def set_faulty_at(self, group: Iterable[ProcessId], t: Time) -> bool:
        """Whether *every* process of ``group`` is crashed at time ``t``.

        This is the building block of group-intersection faultiness: the
        paper says ``g ∩ h`` is faulty at ``t`` when all its members are.
        An empty group is vacuously faulty.
        """
        return all(not self.is_alive(p, t) for p in group)

    def set_eventually_faulty(self, group: Iterable[ProcessId]) -> bool:
        """Whether every member of ``group`` eventually crashes."""
        return all(self.is_faulty(p) for p in group)

    def crash_time_of_set(self, group: Iterable[ProcessId]) -> Optional[Time]:
        """First time at which all of ``group`` is crashed, if ever.

        Returns ``None`` when some member is correct (the set never fails)
        and ``0`` for an empty group.
        """
        times = []
        for p in group:
            when = self.crash_times.get(p)
            if when is None or p in self.recovery_times:
                # A recovering member is eventually always up, so the
                # set is never *permanently* down.
                return None
            times.append(when)
        return max(times) if times else 0

    # -- Derivation -------------------------------------------------------

    def change_instants(self) -> Tuple[Time, ...]:
        """Every instant at which the alive set changes, sorted.

        Crash times plus recovery times — the epoch boundaries that
        alive-set caches (detector oracles, the execution core's
        eligible-order memo) must respect.  Crash-stop patterns reduce
        to the sorted crash times.
        """
        return tuple(
            sorted(
                set(self.crash_times.values())
                | set(self.recovery_times.values())
            )
        )

    # -- Derivation -------------------------------------------------------

    def restricted_to(self, subset: ProcessSet) -> "FailurePattern":
        """``F ∩ P``: the pattern obtained by dropping processes outside
        ``subset`` (used to define set-restricted failure detectors)."""
        return FailurePattern(
            processes=pset(p for p in self.processes if p in subset),
            crash_times={p: t for p, t in self.crash_times.items() if p in subset},
            recovery_times={
                p: t for p, t in self.recovery_times.items() if p in subset
            },
        )

    def with_crash(self, p: ProcessId, t: Time) -> "FailurePattern":
        """A new pattern where ``p`` additionally crashes at ``t``.

        The environments considered in §5.2 are closed under this
        operation for failure-prone processes ("if a process may fail, it
        may fail at any time").
        """
        if p not in self.processes:
            raise ModelError(f"{p} is not part of the system")
        times = dict(self.crash_times)
        current = times.get(p)
        times[p] = t if current is None else min(current, t)
        recoveries = dict(self.recovery_times)
        rejoin = recoveries.get(p)
        if rejoin is not None and rejoin <= times[p]:
            del recoveries[p]
        return FailurePattern(self.processes, times, recoveries)

    def with_recovery(self, p: ProcessId, t: Time) -> "FailurePattern":
        """A new pattern where the crashed ``p`` rejoins at ``t``.

        Requires an existing crash strictly before ``t``; a later
        recovery wins when stacked (the process is up from the last
        rejoin on either way).
        """
        if p not in self.processes:
            raise ModelError(f"{p} is not part of the system")
        if p not in self.crash_times:
            raise ModelError(f"recovery for never-crashed {p}")
        recoveries = dict(self.recovery_times)
        current = recoveries.get(p)
        recoveries[p] = t if current is None else max(current, t)
        return FailurePattern(self.processes, self.crash_times, recoveries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        def _one(p: ProcessId, t: Time) -> str:
            rejoin = self.recovery_times.get(p)
            suffix = f"^{rejoin}" if rejoin is not None else ""
            return f"{p.name}@{t}{suffix}"

        crashes = ", ".join(
            _one(p, t) for p, t in sorted(self.crash_times.items())
        )
        return f"FailurePattern({crashes or 'failure-free'})"


def failure_free(processes: ProcessSet) -> FailurePattern:
    """The pattern in which no process ever crashes."""
    return FailurePattern(processes, {})


def crash_pattern(
    processes: ProcessSet, crashes: Mapping[ProcessId, Time]
) -> FailurePattern:
    """Build a pattern from an explicit ``process -> crash time`` mapping."""
    return FailurePattern(processes, dict(crashes))


@dataclass(frozen=True)
class Environment:
    """A set of failure patterns, intensionally described.

    ``E*`` (all patterns) is modelled by ``max_failures = len(processes)``.
    The environments of §5.2 additionally satisfy closure under early
    crashes, which holds for every environment expressible here.

    Attributes:
        processes: the system's processes.
        max_failures: upper bound on ``|Faulty(F)|`` over patterns in the
            environment.
        reliable: processes that never fail in any pattern of the
            environment (used to model the "logically correct entity"
            assumption of partitioned protocols, §7).
    """

    processes: ProcessSet
    max_failures: int
    reliable: ProcessSet = frozenset()

    def __post_init__(self) -> None:
        if self.max_failures < 0:
            raise ModelError("max_failures must be non-negative")
        if not self.reliable <= self.processes:
            raise ModelError("reliable processes must belong to the system")

    def contains(self, pattern: FailurePattern) -> bool:
        """Whether ``pattern`` belongs to the environment."""
        if pattern.processes != self.processes:
            return False
        if len(pattern.faulty) > self.max_failures:
            return False
        return not (pattern.faulty & self.reliable)

    def failure_prone(self, group: Iterable[ProcessId]) -> bool:
        """Whether all of ``group`` may crash in some pattern (§5.2)."""
        members = pset(group)
        if members & self.reliable:
            return False
        return len(members) <= self.max_failures

    def staggered_patterns(
        self,
        start: Time = 0,
        gap: Time = 1,
        subsets: Optional[Sequence[ProcessSet]] = None,
    ) -> Iterator[FailurePattern]:
        """Enumerate patterns whose faulty sets crash one member at a time.

        The companion of :meth:`patterns` for *staggered* bursts: instead
        of the whole candidate set crashing simultaneously, its members
        (in process order) crash ``gap`` rounds apart starting at
        ``start``.  This is the shape a nemesis ``crash_burst`` event
        produces, and the shape under which crash-monotonicity and
        quorum-handover bugs actually surface — simultaneous crashes let
        an implementation conflate "the set failed" with "the set failed
        atomically".

        Yields the failure-free pattern first, then one staggered pattern
        per candidate faulty set (every subset of non-reliable processes
        within the bound, or the caller-provided ``subsets``), skipping
        any that fall outside the environment.
        """
        if start < 0:
            raise ModelError("staggered start must be non-negative")
        if gap < 0:
            raise ModelError("staggered gap must be non-negative")
        yield failure_free(self.processes)
        candidates: Iterable[ProcessSet]
        if subsets is not None:
            candidates = subsets
        else:
            candidates = _subsets_upto(
                pset(self.processes - self.reliable), self.max_failures
            )
        for faulty in candidates:
            if not faulty:
                continue
            pattern = FailurePattern(
                self.processes,
                {
                    p: start + offset * gap
                    for offset, p in enumerate(sorted(faulty))
                },
            )
            if self.contains(pattern):
                yield pattern

    def patterns(
        self,
        crash_time: Time = 0,
        subsets: Optional[Sequence[ProcessSet]] = None,
    ) -> Iterator[FailurePattern]:
        """Enumerate representative patterns of the environment.

        Yields the failure-free pattern plus, for every candidate faulty
        set (by default every subset of non-reliable processes within the
        bound, or the caller-provided ``subsets``), the pattern crashing
        that set at ``crash_time``.
        """
        yield failure_free(self.processes)
        candidates: Iterable[ProcessSet]
        if subsets is not None:
            candidates = subsets
        else:
            candidates = _subsets_upto(
                pset(self.processes - self.reliable), self.max_failures
            )
        for faulty in candidates:
            if not faulty:
                continue
            pattern = FailurePattern(
                self.processes, {p: crash_time for p in faulty}
            )
            if self.contains(pattern):
                yield pattern


def all_patterns_environment(processes: ProcessSet) -> Environment:
    """``E*``: any subset of processes may crash, at any time."""
    return Environment(processes, max_failures=len(processes))


def _subsets_upto(universe: ProcessSet, k: int) -> Iterator[ProcessSet]:
    """All subsets of ``universe`` of size at most ``k``, smallest first."""
    from itertools import combinations

    ordered = sorted(universe)
    for size in range(1, min(k, len(ordered)) + 1):
        for combo in combinations(ordered, size):
            yield pset(combo)
