"""Messages and the message buffer (Appendix A).

Two kinds of "message" coexist in the paper and therefore here:

* **Application messages** (:class:`MulticastMessage`): the values that the
  atomic-multicast primitive disseminates.  Each has a sender ``src(m)``, a
  destination group ``dst(m)`` and a payload.  The dissemination model is
  closed (``src(m) ∈ dst(m)``).

* **Network datagrams** (:class:`Datagram`): the point-to-point envelopes
  that protocol automata exchange through the shared :class:`MessageBuffer`.
  A step of an automaton receives at most one datagram (possibly the null
  message) and may send new ones.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Deque, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.model.errors import ModelError
from repro.model.processes import ProcessId, ProcessSet, pset


@dataclass(frozen=True, order=True)
class MessageId:
    """Unique identity of a multicast message.

    Ordered lexicographically: this provides the "a priori total order"
    over data items that logs use to break ties within a slot (§4.3).
    """

    sender_index: int
    sequence: int

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"m(p{self.sender_index}#{self.sequence})"


@dataclass(frozen=True)
class MulticastMessage:
    """A message of the atomic-multicast problem.

    Attributes:
        mid: globally unique identity; also the log tie-break order.
        src: the sending process; must belong to ``dst``.
        dst: the destination group ``dst(m)``.
        payload: opaque application payload (the problem is not
            payload-sensitive, §2.2).
    """

    mid: MessageId
    src: ProcessId
    dst: ProcessSet
    payload: Any = None

    def __post_init__(self) -> None:
        if self.src not in self.dst:
            raise ModelError(
                f"closed dissemination model requires src in dst: "
                f"{self.src} not in {sorted(self.dst)}"
            )
        if self.src.index != self.mid.sender_index:
            raise ModelError("message id must carry the sender index")

    def __lt__(self, other: "MulticastMessage") -> bool:
        return self.mid < other.mid

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        group = ",".join(p.name for p in sorted(self.dst))
        return f"<{self.mid} to {{{group}}}>"


class MessageFactory:
    """Mints :class:`MulticastMessage` instances with unique identities.

    A single factory should be shared per run so identities never collide.
    """

    def __init__(self) -> None:
        self._counters: Dict[ProcessId, itertools.count] = {}

    def multicast(
        self, src: ProcessId, dst: Iterable[ProcessId], payload: Any = None
    ) -> MulticastMessage:
        """Create a fresh message from ``src`` to group ``dst``."""
        group = pset(dst)
        counter = self._counters.setdefault(src, itertools.count(1))
        mid = MessageId(sender_index=src.index, sequence=next(counter))
        return MulticastMessage(mid=mid, src=src, dst=group, payload=payload)


@dataclass(frozen=True, slots=True)
class Datagram:
    """A point-to-point protocol message in transit.

    Attributes:
        src: sending process.
        dst: receiving process.
        tag: protocol-level message kind (e.g. ``"PROPOSE"``).
        body: protocol-specific payload tuple (must be hashable for
            deterministic replay).
        uid: per-buffer unique id, assigned on send, so duplicates of the
            same logical message remain distinct in the buffer.
    """

    src: ProcessId
    dst: ProcessId
    tag: str
    body: Tuple[Any, ...] = ()
    uid: int = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.src.name}->{self.dst.name}:{self.tag}{self.body}"


#: The null message m_bot: receive attempts may return nothing.
NULL_MESSAGE: Optional[Datagram] = None


class MessageBuffer:
    """The shared buffer ``BUFF`` of sent-but-not-received datagrams.

    The buffer offers the exact semantics of Appendix A: receiving either
    removes some datagram addressed to the receiver or returns the null
    message — even when the buffer is non-empty (the scheduler decides).
    Fairness (every message addressed to a process taking infinitely many
    receive steps is eventually received) is the scheduler's obligation and
    is supported by FIFO extraction order per destination.

    With a :class:`repro.faults.FaultInjector` attached the buffer models
    admissible link faults: a send may be delayed (sequestered until an
    absolute release time), duplicated (bounded extra copies) or dropped
    with a mandatory retransmission (fair-lossy links), and extraction
    within a reorder window picks among the first few receivable
    datagrams instead of strict FIFO.  Without an injector every code
    path below is byte-identical to the fault-free buffer.
    """

    def __init__(self, injector: Optional[Any] = None) -> None:
        # Per-destination FIFO queues; deques make the hot receive path
        # O(1) (the former list.pop(0) shifted the whole queue per
        # receive, quadratic in queue depth under open-loop load).
        self._pending: Dict[ProcessId, Deque[Datagram]] = {}
        self._uid = itertools.count(1)
        self.sent_count = 0
        self.received_count = 0
        self._injector = injector
        #: Min-heap of ``(release time, uid, datagram)`` — datagrams a
        #: link fault is holding back; invisible to ``pending_for`` /
        #: ``receive`` until :meth:`release` moves them over.
        self._delayed: List[Tuple[int, int, Datagram]] = []
        self._now: int = 0

    def send(
        self,
        src: ProcessId,
        dst: ProcessId,
        tag: str,
        body: Tuple[Any, ...] = (),
    ) -> Datagram:
        """Add a datagram to the buffer and return it."""
        datagram = Datagram(src=src, dst=dst, tag=tag, body=body, uid=next(self._uid))
        self.sent_count += 1
        if self._injector is None:
            self._pending.setdefault(dst, deque()).append(datagram)
            return datagram
        verdict = self._injector.on_send(src.index, dst.index, self._now)
        if verdict.dropped:
            # Fair-lossy: the drop is paired with a retransmission that
            # becomes receivable when the lossy window closes.
            heapq.heappush(
                self._delayed, (verdict.retransmit_at, datagram.uid, datagram)
            )
            return datagram
        for copy in (datagram,) + tuple(
            replace(datagram, uid=next(self._uid))
            for _ in range(verdict.copies)
        ):
            if verdict.delay > 0:
                heapq.heappush(
                    self._delayed, (self._now + verdict.delay, copy.uid, copy)
                )
            else:
                self._pending.setdefault(dst, deque()).append(copy)
        return datagram

    def broadcast(
        self,
        src: ProcessId,
        dsts: Iterable[ProcessId],
        tag: str,
        body: Tuple[Any, ...] = (),
    ) -> List[Datagram]:
        """Send one copy of the datagram to every destination.

        The fault-free path mints and enqueues the whole batch inline —
        one bulk counter update, no per-copy dispatch — which is the
        shape substrate automata actually send in (round announcements to
        a full group).  With an injector every copy still goes through
        :meth:`send` so per-link fault verdicts apply.
        """
        if self._injector is not None:
            return [self.send(src, dst, tag, body) for dst in dsts]
        pending = self._pending
        uid = self._uid
        batch: List[Datagram] = []
        for dst in dsts:
            datagram = Datagram(
                src=src, dst=dst, tag=tag, body=body, uid=next(uid)
            )
            queue = pending.get(dst)
            if queue is None:
                pending[dst] = queue = deque()
            queue.append(datagram)
            batch.append(datagram)
        self.sent_count += len(batch)
        return batch

    def pending_for(self, p: ProcessId) -> Tuple[Datagram, ...]:
        """A snapshot of the datagrams currently addressed to ``p``."""
        return tuple(self._pending.get(p, ()))

    def has_pending(self, p: ProcessId) -> bool:
        return bool(self._pending.get(p))

    def receive(self, p: ProcessId) -> Optional[Datagram]:
        """Remove and return the oldest datagram addressed to ``p``.

        Returns the null message when nothing is pending.  FIFO extraction
        makes the standard fairness condition easy for schedulers to honor.
        Inside an active reorder window the injector may pick among the
        first few receivable datagrams instead — bounded, so the fairness
        condition still holds (every datagram drifts to the queue head).
        """
        queue = self._pending.get(p)
        if not queue:
            return NULL_MESSAGE
        self.received_count += 1
        if self._injector is None:
            return queue.popleft()
        index = self._injector.pick_receive(p.index, len(queue), self._now)
        if index == 0:
            return queue.popleft()
        datagram = queue[index]
        del queue[index]
        return datagram

    def receive_specific(self, p: ProcessId, datagram: Datagram) -> Datagram:
        """Remove a specific pending datagram (adversarial schedulers)."""
        queue = self._pending.get(p)
        if not queue or datagram not in queue:
            raise ModelError(f"{datagram!r} is not pending for {p}")
        queue.remove(datagram)
        self.received_count += 1
        return datagram

    def drop_all_for(self, p: ProcessId) -> int:
        """Discard every datagram addressed to ``p`` (crashed processes
        never receive) — including datagrams a link fault is still
        holding back.  Leaving delayed entries behind would let
        :meth:`release` push them into a dead process's queue later,
        inflating :meth:`in_transit` and stalling quiescence accounting.
        Returns the number of dropped datagrams (pending + sequestered)."""
        dropped = len(self._pending.pop(p, ()))
        if self._delayed:
            kept = [entry for entry in self._delayed if entry[2].dst != p]
            purged = len(self._delayed) - len(kept)
            if purged:
                heapq.heapify(kept)
                self._delayed = kept
                dropped += purged
        return dropped

    def release(self, now: int) -> int:
        """Move delayed datagrams whose release time has arrived.

        Hosts with an injector call this at the top of every round
        (before crash cleanup, so a release to a dead process is still
        dropped the same round it lands).  Returns the number released.
        """
        self._now = now
        released = 0
        while self._delayed and self._delayed[0][0] <= now:
            _, _, datagram = heapq.heappop(self._delayed)
            self._pending.setdefault(datagram.dst, deque()).append(datagram)
            released += 1
        return released

    def overdue_delayed(self, now: int) -> int:
        """Delayed datagrams already receivable but not yet released.

        Nonzero after a :meth:`release` sweep means a host forgot to
        run the sweep — the admissibility audit flags it.
        """
        return sum(1 for ready, _, _ in self._delayed if ready <= now)

    def delayed_count(self) -> int:
        """Datagrams currently sequestered by link faults."""
        return len(self._delayed)

    def delayed_for(self, p: ProcessId) -> int:
        """Sequestered datagrams addressed to ``p`` specifically."""
        return sum(1 for _, _, d in self._delayed if d.dst == p)

    def in_transit(self) -> int:
        """Total number of datagrams currently buffered.

        Folds in the delay heap: a datagram pending release is still in
        transit, and quiescence accounting must see it — a buffer is
        only drained when both the inboxes and the heap are empty."""
        return sum(len(q) for q in self._pending.values()) + len(self._delayed)
