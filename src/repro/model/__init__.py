"""System model substrate: processes, failures, messages, runs.

This package is the executable rendering of Appendix A of the paper.
"""

from repro.model.errors import (
    DetectorError,
    ModelError,
    PropertyViolation,
    ReproError,
    SimulationError,
    SpecificationError,
    TopologyError,
)
from repro.model.failures import (
    Environment,
    FailurePattern,
    Time,
    all_patterns_environment,
    crash_pattern,
    failure_free,
)
from repro.model.messages import (
    Datagram,
    MessageBuffer,
    MessageFactory,
    MessageId,
    MulticastMessage,
    NULL_MESSAGE,
)
from repro.model.processes import ProcessId, ProcessSet, by_indices, make_processes, pset
from repro.model.runs import DeliveryEvent, MulticastEvent, RunRecord, Step

__all__ = [
    "DetectorError",
    "ModelError",
    "PropertyViolation",
    "ReproError",
    "SimulationError",
    "SpecificationError",
    "TopologyError",
    "Environment",
    "FailurePattern",
    "Time",
    "all_patterns_environment",
    "crash_pattern",
    "failure_free",
    "Datagram",
    "MessageBuffer",
    "MessageFactory",
    "MessageId",
    "MulticastMessage",
    "NULL_MESSAGE",
    "ProcessId",
    "ProcessSet",
    "by_indices",
    "make_processes",
    "pset",
    "DeliveryEvent",
    "MulticastEvent",
    "RunRecord",
    "Step",
]
