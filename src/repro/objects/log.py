"""The shared log object of Algorithm 1 (§4.3).

A log is an infinite array of slots numbered from 1, each holding zero or
more data items.  The sequential interface is exactly the paper's:

* ``append(d)`` inserts ``d`` at the head slot (idempotent when ``d`` is
  already present) and returns its position;
* ``pos(d)`` returns the slot of ``d`` (0 when absent);
* ``bumpAndLock(d, k)`` moves ``d`` from its slot ``l`` to ``max(k, l)``
  and locks it; locked data can no longer be bumped;
* ``locked(d)`` tells whether ``d`` is locked.

The log induces an order: ``d <_L d'`` iff ``pos(d) < pos(d')``, or they
share a slot and ``d < d'`` for the a-priori total order over data items
(here: Python's ``<`` on the items, e.g. message identifiers).

Logs hold heterogeneous items in Algorithm 1 — messages, position records
``(m, h, i)`` and stabilization records ``(m, h)`` — so ordering queries
are only issued between mutually comparable items; the convenience
accessors (:meth:`messages_before` etc.) filter by item kind first.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.model.errors import SpecificationError


class Log:
    """Sequential specification of the shared log.

    The object is long-lived and grow-only; linearizability is provided by
    the runtime layer (operations run atomically inside simulator actions).

    Attributes:
        name: diagnostic label, e.g. ``"LOG_g1∩g3"``.
    """

    def __init__(self, name: str = "LOG") -> None:
        self.name = name
        self._positions: Dict[Any, int] = {}
        self._locked: Set[Any] = set()
        self._head = 1
        #: Mutation counter: keys the memoized sorted views below.  The
        #: action scans re-read ``messages()`` and the record accessors
        #: every round; re-sorting only after an actual mutation turns
        #: the steady-state scan from O(n log n) per call into O(1).
        self._version = 0
        self._messages_cache: Tuple[Any, ...] = ()
        self._messages_version = -1
        self._records_cache: Tuple[Tuple[Any, ...], ...] = ()
        self._records_version = -1
        #: Tuple-shaped records indexed by their head element (the
        #: message id), in insertion order — the per-message accessors
        #: sort these few rows instead of filtering every record.
        self._records_by_head: Dict[Any, List[Tuple[Any, ...]]] = {}

    # -- Core interface (§4.3) -------------------------------------------

    def append(self, datum: Any) -> int:
        """Insert ``datum`` at the head slot; no-op if already present.

        Returns the (possibly pre-existing) position of ``datum``.
        """
        existing = self._positions.get(datum)
        if existing is not None:
            return existing
        position = self._head
        self._positions[datum] = position
        self._head = position + 1
        self._version += 1
        if isinstance(datum, tuple) and datum:
            self._records_by_head.setdefault(datum[0], []).append(datum)
        return position

    def pos(self, datum: Any) -> int:
        """The slot of ``datum``; 0 when absent."""
        return self._positions.get(datum, 0)

    def bump_and_lock(self, datum: Any, k: int) -> int:
        """Move ``datum`` to ``max(k, current slot)`` and lock it.

        Locking is idempotent: once locked, further calls leave the datum
        untouched (locked data cannot be bumped anymore).  Returns the
        final position.
        """
        current = self._positions.get(datum)
        if current is None:
            raise SpecificationError(
                f"{self.name}: bumpAndLock on absent datum {datum!r}"
            )
        if datum in self._locked:
            return current
        final = max(k, current)
        self._positions[datum] = final
        self._locked.add(datum)
        self._version += 1
        if final >= self._head:
            self._head = final + 1
        return final

    def locked(self, datum: Any) -> bool:
        """Whether ``datum`` is locked in the log."""
        return datum in self._locked

    @property
    def version(self) -> int:
        """Mutation counter — unchanged means every view is unchanged.

        Readers that scan the log every round (message discovery) use
        this to skip re-reads entirely between mutations.
        """
        return self._version

    def __contains__(self, datum: Any) -> bool:
        return datum in self._positions

    # -- Ordering ----------------------------------------------------------

    def precedes(self, d: Any, d_prime: Any) -> bool:
        """``d <_L d'``: both present, lower slot or slot tie-break."""
        pos_d = self._positions.get(d)
        pos_dp = self._positions.get(d_prime)
        if pos_d is None or pos_dp is None:
            return False
        if pos_d != pos_dp:
            return pos_d < pos_dp
        return d < d_prime

    # -- Convenience accessors ---------------------------------------------

    def items(self) -> Tuple[Any, ...]:
        """Every datum, ordered by ``<_L`` within comparable kinds.

        Items are sorted by slot; ties are broken by the items' own order
        when comparable, else by insertion order (mixed-kind ties never
        matter to the algorithm).
        """
        def sort_key(entry: Tuple[Any, int]) -> Tuple[int, int]:
            return (entry[1], 0)

        ordered = sorted(self._positions.items(), key=sort_key)
        return tuple(datum for datum, _ in ordered)

    def messages(self) -> Tuple[Any, ...]:
        """The *message* items of the log, in ``<_L`` order.

        Messages are recognized by not being tuples (Algorithm 1 stores
        records as tuples).  The sorted view is memoized per mutation.
        """
        if self._messages_version != self._version:
            present = [d for d in self._positions if not isinstance(d, tuple)]
            present.sort(key=lambda d: (self._positions[d], d))
            self._messages_cache = tuple(present)
            self._messages_version = self._version
        return self._messages_cache

    def messages_before(self, datum: Any) -> Tuple[Any, ...]:
        """Messages ``m'`` with ``m' <_L datum``."""
        if not isinstance(datum, tuple) and datum in self._positions:
            # ``messages()`` is sorted by exactly the ``<_L`` key, so the
            # predecessors of a present message form a prefix.
            out: List[Any] = []
            for m in self.messages():
                if self.precedes(m, datum):
                    out.append(m)
                else:
                    break
            return tuple(out)
        return tuple(m for m in self.messages() if self.precedes(m, datum))

    def records(self) -> Tuple[Tuple[Any, ...], ...]:
        """The tuple-shaped records of the log, in insertion-slot order."""
        if self._records_version != self._version:
            present = [d for d in self._positions if isinstance(d, tuple)]
            present.sort(key=lambda d: self._positions[d])
            self._records_cache = tuple(present)
            self._records_version = self._version
        return self._records_cache

    def position_records_for(self, message: Any) -> Tuple[Tuple[Any, Any, int], ...]:
        """Records ``(m, h, i)`` of ``message`` (written at line 14)."""
        rows = self._records_by_head.get(message)
        if not rows:
            return ()
        out = [r for r in rows if len(r) == 3]
        out.sort(key=lambda r: self._positions[r])
        return tuple(out)

    def stabilization_records_for(self, message: Any) -> Tuple[Tuple[Any, Any], ...]:
        """Records ``(m, h)`` of ``message`` (written at line 29)."""
        rows = self._records_by_head.get(message)
        if not rows:
            return ()
        out = [r for r in rows if len(r) == 2]
        out.sort(key=lambda r: self._positions[r])
        return tuple(out)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{len(self._positions)} items, head={self._head}]"
