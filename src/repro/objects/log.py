"""The shared log object of Algorithm 1 (§4.3).

A log is an infinite array of slots numbered from 1, each holding zero or
more data items.  The sequential interface is exactly the paper's:

* ``append(d)`` inserts ``d`` at the head slot (idempotent when ``d`` is
  already present) and returns its position;
* ``pos(d)`` returns the slot of ``d`` (0 when absent);
* ``bumpAndLock(d, k)`` moves ``d`` from its slot ``l`` to ``max(k, l)``
  and locks it; locked data can no longer be bumped;
* ``locked(d)`` tells whether ``d`` is locked.

The log induces an order: ``d <_L d'`` iff ``pos(d) < pos(d')``, or they
share a slot and ``d < d'`` for the a-priori total order over data items
(here: Python's ``<`` on the items, e.g. message identifiers).

Logs hold heterogeneous items in Algorithm 1 — messages, position records
``(m, h, i)`` and stabilization records ``(m, h)`` — so ordering queries
are only issued between mutually comparable items; the convenience
accessors (:meth:`messages_before` etc.) filter by item kind first.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.model.errors import SpecificationError


class Log:
    """Sequential specification of the shared log.

    The object is long-lived and grow-only; linearizability is provided by
    the runtime layer (operations run atomically inside simulator actions).

    Attributes:
        name: diagnostic label, e.g. ``"LOG_g1∩g3"``.
    """

    def __init__(self, name: str = "LOG") -> None:
        self.name = name
        self._positions: Dict[Any, int] = {}
        self._locked: Set[Any] = set()
        self._head = 1

    # -- Core interface (§4.3) -------------------------------------------

    def append(self, datum: Any) -> int:
        """Insert ``datum`` at the head slot; no-op if already present.

        Returns the (possibly pre-existing) position of ``datum``.
        """
        existing = self._positions.get(datum)
        if existing is not None:
            return existing
        position = self._head
        self._positions[datum] = position
        self._head = position + 1
        return position

    def pos(self, datum: Any) -> int:
        """The slot of ``datum``; 0 when absent."""
        return self._positions.get(datum, 0)

    def bump_and_lock(self, datum: Any, k: int) -> int:
        """Move ``datum`` to ``max(k, current slot)`` and lock it.

        Locking is idempotent: once locked, further calls leave the datum
        untouched (locked data cannot be bumped anymore).  Returns the
        final position.
        """
        current = self._positions.get(datum)
        if current is None:
            raise SpecificationError(
                f"{self.name}: bumpAndLock on absent datum {datum!r}"
            )
        if datum in self._locked:
            return current
        final = max(k, current)
        self._positions[datum] = final
        self._locked.add(datum)
        if final >= self._head:
            self._head = final + 1
        return final

    def locked(self, datum: Any) -> bool:
        """Whether ``datum`` is locked in the log."""
        return datum in self._locked

    def __contains__(self, datum: Any) -> bool:
        return datum in self._positions

    # -- Ordering ----------------------------------------------------------

    def precedes(self, d: Any, d_prime: Any) -> bool:
        """``d <_L d'``: both present, lower slot or slot tie-break."""
        pos_d = self._positions.get(d)
        pos_dp = self._positions.get(d_prime)
        if pos_d is None or pos_dp is None:
            return False
        if pos_d != pos_dp:
            return pos_d < pos_dp
        return d < d_prime

    # -- Convenience accessors ---------------------------------------------

    def items(self) -> Tuple[Any, ...]:
        """Every datum, ordered by ``<_L`` within comparable kinds.

        Items are sorted by slot; ties are broken by the items' own order
        when comparable, else by insertion order (mixed-kind ties never
        matter to the algorithm).
        """
        def sort_key(entry: Tuple[Any, int]) -> Tuple[int, int]:
            return (entry[1], 0)

        ordered = sorted(self._positions.items(), key=sort_key)
        return tuple(datum for datum, _ in ordered)

    def messages(self) -> Tuple[Any, ...]:
        """The *message* items of the log, in ``<_L`` order.

        Messages are recognized by not being tuples (Algorithm 1 stores
        records as tuples).
        """
        present = [d for d in self._positions if not isinstance(d, tuple)]
        present.sort(key=lambda d: (self._positions[d], d))
        return tuple(present)

    def messages_before(self, datum: Any) -> Tuple[Any, ...]:
        """Messages ``m'`` with ``m' <_L datum``."""
        return tuple(m for m in self.messages() if self.precedes(m, datum))

    def records(self) -> Tuple[Tuple[Any, ...], ...]:
        """The tuple-shaped records of the log, in insertion-slot order."""
        present = [d for d in self._positions if isinstance(d, tuple)]
        present.sort(key=lambda d: self._positions[d])
        return tuple(present)

    def position_records_for(self, message: Any) -> Tuple[Tuple[Any, Any, int], ...]:
        """Records ``(m, h, i)`` of ``message`` (written at line 14)."""
        return tuple(
            r for r in self.records() if len(r) == 3 and r[0] == message
        )

    def stabilization_records_for(self, message: Any) -> Tuple[Tuple[Any, Any], ...]:
        """Records ``(m, h)`` of ``message`` (written at line 29)."""
        return tuple(
            r for r in self.records() if len(r) == 2 and r[0] == message
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}[{len(self._positions)} items, head={self._head}]"
