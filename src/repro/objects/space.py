"""The shared-object space: objects, carriers and step accounting.

Algorithm 1 is expressed over wait-free linearizable shared objects, and
the paper reasons "directly upon the linearization" (§4.4).  The object
space realizes that linearization *and* keeps the genuineness audit
honest: every mutating operation charges computational steps to the
processes that would take steps in the message-passing construction of
§4.3 — the invoker plus the object's *carrier set*.

Carriers:

* ``LOG_g`` and ``CONS_{m,f}`` are built from consensus inside ``g``
  (universal construction): carrier = ``g``.
* ``LOG_{g∩h}`` is contention-free fast (Proposition 47): as long as all
  processes execute its operations in the same order, only the
  adopt–commit objects run and the carrier is ``g ∩ h``; on contention the
  backing consensus hosted by one of the two groups runs and that group is
  charged.

The space receives a ``charge`` callback (process, reason) from the
runtime, which turns charges into :class:`repro.model.RunRecord` steps.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.groups.topology import Group
from repro.model.errors import SpecificationError
from repro.model.processes import ProcessId, ProcessSet
from repro.objects.consensus import AdoptCommitObject, ConsensusObject
from repro.objects.log import Log

#: Charge callback: (process to charge, human-readable reason).
ChargeFn = Callable[[ProcessId, str], None]

#: Quorum guard: (caller, scope) -> True when a live quorum of ``scope``
#: is currently able to respond (see MulticastSystem.quorum_ok).
GuardFn = Callable[[ProcessId, ProcessSet], bool]

#: Consensus gate: (caller, host group) -> True when the leader-driven
#: consensus hosted by the group can terminate now (the adversarial
#: reading of ``Omega_g``: before the oracle stabilizes, ballots may be
#: preempted forever — see MulticastSystem.consensus_ok).
ConsensusGateFn = Callable[[ProcessId, Group], bool]

#: Write notification: (object name) -> None, reported on every mutation
#: so the runtime's wake index can re-run the object's readers.
WriteFn = Callable[[str], None]


def _det_label(key: Any) -> str:
    """A hash-seed-independent rendering of an object-name key.

    ``repr(frozenset)`` follows string hash order, which varies per
    interpreter run (PYTHONHASHSEED); object names feed the step-charge
    reasons in the :class:`repro.model.RunRecord`, so they must render
    identically across processes for traces to be reproducible.
    """
    if isinstance(key, (frozenset, set)):
        return "{" + ",".join(sorted(str(item) for item in key)) + "}"
    return str(key)


def _no_charge(_p: ProcessId, _reason: str) -> None:
    """Default accounting sink: discard charges."""


def _always_available(_p: ProcessId, _scope: ProcessSet) -> bool:
    """Default quorum guard: the linearized world never blocks."""
    return True


class LogHandle:
    """A shared log bound to its carrier set for step accounting.

    Mutations (``append``, ``bump_and_lock``) charge the invoker and the
    carriers; read-only queries are free (each carrier maintains a local
    replica in the universal construction, so reads are local).
    """

    def __init__(
        self,
        log: Log,
        carriers: ProcessSet,
        charge: ChargeFn,
        guard: GuardFn = _always_available,
        on_write: Optional[WriteFn] = None,
    ) -> None:
        self.log = log
        self.carriers = carriers
        self._charge = charge
        self._guard = guard
        self._on_write = on_write

    def _notify_write(self) -> None:
        """Report a mutation to the runtime (drives the wake index)."""
        if self._on_write is not None:
            self._on_write(self.log.name)

    @property
    def name(self) -> str:
        return self.log.name

    def mutation_available(self, caller: ProcessId, *_signature: object) -> bool:
        """Whether a mutation by ``caller`` can gather its quorum now.

        Operations of the universal construction complete only once a
        quorum of the carrier scope (per ``Sigma_carriers``) responds;
        action systems consult this as an extra precondition.
        """
        return self._guard(caller, self.carriers)

    def _bill(self, caller: ProcessId, op: str) -> None:
        reason = f"{self.log.name}.{op}"
        self._charge(caller, reason)
        for carrier in self.carriers:
            if carrier != caller:
                self._charge(carrier, reason)

    # -- Mutations (charged) -----------------------------------------------

    def append(self, caller: ProcessId, datum: Any) -> int:
        self._bill(caller, "append")
        self._notify_write()
        return self.log.append(datum)

    def bump_and_lock(self, caller: ProcessId, datum: Any, k: int) -> int:
        self._bill(caller, "bumpAndLock")
        self._notify_write()
        return self.log.bump_and_lock(datum, k)

    # -- Reads (free) --------------------------------------------------------

    @property
    def version(self) -> int:
        return self.log.version

    def pos(self, datum: Any) -> int:
        return self.log.pos(datum)

    def locked(self, datum: Any) -> bool:
        return self.log.locked(datum)

    def __contains__(self, datum: Any) -> bool:
        return datum in self.log

    def precedes(self, d: Any, d_prime: Any) -> bool:
        return self.log.precedes(d, d_prime)

    def messages(self) -> Tuple[Any, ...]:
        return self.log.messages()

    def messages_before(self, datum: Any) -> Tuple[Any, ...]:
        return self.log.messages_before(datum)

    def position_records_for(self, message: Any):
        return self.log.position_records_for(message)

    def stabilization_records_for(self, message: Any):
        return self.log.stabilization_records_for(message)


class IntersectionLogHandle(LogHandle):
    """``LOG_{g∩h}`` with the contention-free fast path of Proposition 47.

    The handle watches the per-process operation sequences.  While every
    process applies the same operations in the same order, each mutation
    runs on the adopt–commit fast path and charges only ``g ∩ h``.  The
    first out-of-order mutation (step contention) falls back to the
    consensus hosted by the carrier group and charges it.
    """

    def __init__(
        self,
        log: Log,
        intersection: ProcessSet,
        host_group: Group,
        charge: ChargeFn,
        guard: GuardFn = _always_available,
        isolation: bool = False,
        on_write: Optional[WriteFn] = None,
    ) -> None:
        super().__init__(log, intersection, charge, guard, on_write=on_write)
        self.host_group = host_group
        #: §6.2 configuration: the backing consensus runs inside ``g∩h``
        #: (from ``Sigma_{g∩h} ∧ Omega_{g∩h}``) instead of a host group.
        self.isolation = isolation
        self._established: List[Tuple[Any, ...]] = []
        self._cursor: Dict[ProcessId, int] = {}
        self.fast_ops = 0
        self.slow_ops = 0

    def _would_be_fast(self, caller: ProcessId, signature: Tuple[Any, ...]) -> bool:
        """Peek the fast/slow classification without advancing cursors."""
        index = self._cursor.get(caller, 0)
        if index < len(self._established):
            return self._established[index] == signature
        return True

    def _slow_scope(self) -> ProcessSet:
        return self.carriers if self.isolation else self.host_group.members

    def mutation_available(self, caller: ProcessId, *signature: object) -> bool:
        """Quorum availability, classified per Proposition 47.

        Fast-path operations (consistent with the established order) need
        a ``Sigma_{g∩h}`` quorum; slow-path operations additionally run
        the backing consensus, hosted by a full group — unless the §6.2
        isolation configuration keeps it inside the intersection.
        """
        if not self._guard(caller, self.carriers):
            return False
        if signature and not self._would_be_fast(caller, tuple(signature)):
            return self._guard(caller, self._slow_scope())
        return True

    def _classify(self, caller: ProcessId, signature: Tuple[Any, ...]) -> bool:
        """Advance the caller's cursor; True when the op is contention-free."""
        index = self._cursor.get(caller, 0)
        self._cursor[caller] = index + 1
        if index < len(self._established):
            return self._established[index] == signature
        self._established.append(signature)
        return True

    def _bill_op(self, caller: ProcessId, op: str, signature: Tuple[Any, ...]) -> None:
        fast = self._classify(caller, signature)
        reason = f"{self.log.name}.{op}"
        if fast:
            self.fast_ops += 1
            self._charge(caller, reason + "[fast]")
            for carrier in self.carriers:
                if carrier != caller:
                    self._charge(carrier, reason + "[fast]")
        else:
            self.slow_ops += 1
            self._charge(caller, reason + "[slow]")
            for carrier in self._slow_scope():
                if carrier != caller:
                    self._charge(carrier, reason + "[slow]")

    def append(self, caller: ProcessId, datum: Any) -> int:
        self._bill_op(caller, "append", ("append", datum))
        self._notify_write()
        return self.log.append(datum)

    def bump_and_lock(self, caller: ProcessId, datum: Any, k: int) -> int:
        self._bill_op(caller, "bumpAndLock", ("bumpAndLock", datum, k))
        self._notify_write()
        return self.log.bump_and_lock(datum, k)


class ConsensusHandle:
    """A consensus object bound to the group that hosts it."""

    def __init__(
        self,
        cons: ConsensusObject,
        host_group: Group,
        charge: ChargeFn,
        guard: GuardFn = _always_available,
        gate: Optional[ConsensusGateFn] = None,
    ) -> None:
        self.cons = cons
        self.host_group = host_group
        self._charge = charge
        self._guard = guard
        self._gate = gate

    def mutation_available(self, caller: ProcessId) -> bool:
        """Whether a proposal can terminate now: a quorum of the host
        group responds *and* the group's leader oracle has stabilized
        (``Omega_g ∧ Sigma_g``, the §4.3 consensus construction)."""
        if not self._guard(caller, self.host_group.members):
            return False
        return self._gate is None or self._gate(caller, self.host_group)

    def propose(self, caller: ProcessId, value: Any) -> Any:
        reason = f"{self.cons.name}.propose"
        self._charge(caller, reason)
        for carrier in self.host_group.members:
            if carrier != caller:
                self._charge(carrier, reason)
        return self.cons.propose(value)

    @property
    def decided(self) -> bool:
        return self.cons.decided


class ObjectSpace:
    """Registry of the shared objects of one multicast deployment.

    Objects are created lazily (the model allows unboundedly many) and
    shared across processes by key:

    * group logs, keyed by group;
    * intersection logs, keyed by the unordered group pair;
    * consensus objects, keyed by ``(message key, family key)``.
    """

    def __init__(
        self,
        charge: ChargeFn = _no_charge,
        guard: GuardFn = _always_available,
        isolation: bool = False,
        consensus_gate: Optional[ConsensusGateFn] = None,
        on_write: Optional[WriteFn] = None,
    ) -> None:
        self._charge = charge
        self._guard = guard
        self._consensus_gate = consensus_gate
        self._on_write = on_write
        #: §6.2 strongly-genuine configuration for intersection logs.
        self.isolation = isolation
        self._group_logs: Dict[Group, LogHandle] = {}
        self._intersection_logs: Dict[frozenset, IntersectionLogHandle] = {}
        self._consensus: Dict[Tuple[Any, Any], ConsensusHandle] = {}

    def set_charge(self, charge: ChargeFn) -> None:
        """Swap the accounting sink (the engine binds it per run)."""
        self._charge = charge
        for handle in self._group_logs.values():
            handle._charge = charge
        for handle in self._intersection_logs.values():
            handle._charge = charge
        for handle in self._consensus.values():
            handle._charge = charge

    def group_log(self, g: Group) -> LogHandle:
        """``LOG_g``, carried by the members of ``g``."""
        handle = self._group_logs.get(g)
        if handle is None:
            handle = LogHandle(
                Log(f"LOG_{g.name}"),
                g.members,
                self._charge,
                self._guard,
                on_write=self._on_write,
            )
            self._group_logs[g] = handle
        return handle

    def intersection_log(self, g: Group, h: Group) -> LogHandle:
        """``LOG_{g∩h}`` (= ``LOG_g`` when ``g == h``).

        Hosted, on its slow path, by the smaller-named group of the pair,
        mirroring §4.3's "implemented atop some group, say g".
        """
        if g == h:
            return self.group_log(g)
        if not g.intersects(h):
            raise SpecificationError(
                f"no intersection log for disjoint groups {g.name}, {h.name}"
            )
        key = frozenset((g, h))
        handle = self._intersection_logs.get(key)
        if handle is None:
            first, second = sorted((g, h), key=lambda x: x.name)
            handle = IntersectionLogHandle(
                Log(f"LOG_{first.name}∩{second.name}"),
                g.intersection(h),
                host_group=first,
                charge=self._charge,
                guard=self._guard,
                isolation=self.isolation,
                on_write=self._on_write,
            )
            self._intersection_logs[key] = handle
        return handle

    def consensus(self, message_key: Any, family_key: Any, host: Group) -> ConsensusHandle:
        """``CONS_{m,f}``, hosted by ``dst(m)``.

        Two processes reach the same object exactly when both keys match
        (§4.3): the message and the computed family.
        """
        key = (message_key, family_key)
        handle = self._consensus.get(key)
        if handle is None:
            handle = ConsensusHandle(
                ConsensusObject(
                    f"CONS[{_det_label(message_key)},{_det_label(family_key)}]"
                ),
                host,
                self._charge,
                self._guard,
                gate=self._consensus_gate,
            )
            self._consensus[key] = handle
        return handle

    # -- Introspection for tests and metrics -------------------------------

    def intersection_log_stats(self) -> Dict[str, Tuple[int, int]]:
        """Per-intersection-log (fast, slow) operation counts."""
        return {
            handle.name: (handle.fast_ops, handle.slow_ops)
            for handle in self._intersection_logs.values()
        }

    def consensus_objects_used(self) -> int:
        return len(self._consensus)
