"""Shared objects of Algorithm 1: logs, consensus, adopt-commit, and the
object space with genuineness-aware step accounting (§4.3)."""

from repro.objects.consensus import AdoptCommitObject, AdoptCommitOutcome, ConsensusObject
from repro.objects.log import Log
from repro.objects.space import (
    ConsensusHandle,
    IntersectionLogHandle,
    LogHandle,
    ObjectSpace,
)

__all__ = [
    "AdoptCommitObject",
    "AdoptCommitOutcome",
    "ConsensusObject",
    "Log",
    "ConsensusHandle",
    "IntersectionLogHandle",
    "LogHandle",
    "ObjectSpace",
]
