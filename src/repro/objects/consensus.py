"""Consensus and adopt–commit objects (sequential specifications).

Algorithm 1 uses one consensus object per ``(message, family)`` pair to
agree on the final log position of a message.  The universal construction
of §4.3 additionally guards each consensus instance with an adopt–commit
object [20] so contention-free executions never reach consensus
(Proposition 47's fast path).

These are the *sequential specifications*; linearizability comes from the
runtime (operations execute atomically inside actions).  The genuine
message-passing constructions live in :mod:`repro.substrates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from repro.model.errors import SpecificationError


class ConsensusObject:
    """Single-shot consensus: the first proposed value is decided.

    Validity, agreement and (in the linearized world) termination are
    immediate from the specification; the wait-free message-passing
    realization from ``Omega ∧ Sigma`` is
    :class:`repro.substrates.consensus.LeaderConsensus`.
    """

    def __init__(self, name: str = "CONS") -> None:
        self.name = name
        self._decision: Optional[Any] = None
        self._decided = False
        self.proposal_count = 0

    def propose(self, value: Any) -> Any:
        """Propose ``value``; returns the (unique) decided value."""
        self.proposal_count += 1
        if not self._decided:
            self._decision = value
            self._decided = True
        return self._decision

    @property
    def decided(self) -> bool:
        return self._decided

    @property
    def decision(self) -> Any:
        if not self._decided:
            raise SpecificationError(f"{self.name}: no decision yet")
        return self._decision

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = repr(self._decision) if self._decided else "?"
        return f"{self.name}={state}"


@dataclass(frozen=True)
class AdoptCommitOutcome:
    """Result of an adopt–commit proposal.

    Attributes:
        committed: True when the object *commits* (no conflicting value
            was observed) — callers may skip the backing consensus.
        value: the adopted or committed value.
    """

    committed: bool
    value: Any


class AdoptCommitObject:
    """Adopt–commit [20]: a contention detector in front of consensus.

    Sequential specification: a proposal *commits* when every proposal
    linearized so far (including itself) carries the same value; otherwise
    it *adopts* the first proposed value.  This gives the two standard
    guarantees: (i) if everyone proposes the same value, everyone commits
    it; (ii) if someone commits ``v``, every outcome carries ``v``.
    """

    def __init__(self, name: str = "AC") -> None:
        self.name = name
        self._first: Optional[Any] = None
        self._seen_values: List[Any] = []
        self.proposal_count = 0

    def propose(self, value: Any) -> AdoptCommitOutcome:
        """Propose ``value``; commit on unanimity, adopt otherwise."""
        self.proposal_count += 1
        if self._first is None:
            self._first = value
        self._seen_values.append(value)
        unanimous = all(v == self._first for v in self._seen_values)
        if unanimous and value == self._first:
            return AdoptCommitOutcome(committed=True, value=self._first)
        return AdoptCommitOutcome(committed=False, value=self._first)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}(first={self._first!r})"
