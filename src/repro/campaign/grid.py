"""Declarative scenario grids.

A :class:`Campaign` describes a sweep as data: a set of *cases* — each
binding a topology to a failure pattern and a send script, the three
axes that must agree on process indices — crossed with independent grids
over the scalar axes (seeds, protocol variants, detector lags,
scheduling modes, execution backends).  :meth:`Campaign.specs` expands
the grid into frozen
:class:`repro.workloads.spec.ScenarioSpec` values in a deterministic
order, so the same campaign always produces the same scenario list, the
same content hashes and — executed by :func:`repro.campaign.run_campaign`
— byte-identical results regardless of worker count.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.faults.plan import FaultPlan
from repro.groups.topology import GroupTopology
from repro.model.failures import FailurePattern, Time
from repro.runtime.delay import canonical_delay_spec
from repro.workloads.runner import Send
from repro.workloads.spec import ScenarioSpec, TopologySpec, _delay_spec_to_json


@dataclass(frozen=True)
class CampaignCase:
    """One (topology, failure pattern, send script) binding.

    These three travel together because they share a frame of
    reference: crash times and sender indices only mean something
    relative to a specific topology.

    Attributes:
        label: case name, prefixed onto every derived scenario's label.
        topology: the destination groups.
        crashes: ``(process index, crash time)`` pairs.
        sends: the scripted multicasts.
    """

    label: str
    topology: TopologySpec
    crashes: Tuple[Tuple[int, Time], ...] = ()
    sends: Tuple[Send, ...] = ()


def case(
    label: str,
    topology: Union[GroupTopology, TopologySpec],
    pattern: Optional[FailurePattern] = None,
    sends: Sequence[Send] = (),
    crashes: Sequence[Tuple[int, Time]] = (),
) -> CampaignCase:
    """Build a :class:`CampaignCase` from live objects or plain data.

    ``pattern`` (a live :class:`FailurePattern`) and ``crashes`` (raw
    index/time pairs) are alternative spellings of the failure axis;
    passing both is a contradiction and raises :class:`ValueError`.
    """
    if pattern is not None and crashes:
        raise ValueError("pass either pattern or crashes, not both")
    if isinstance(topology, GroupTopology):
        topology = TopologySpec.capture(topology)
    if pattern is not None:
        crashes = tuple(
            sorted((p.index, t) for p, t in pattern.crash_times.items())
        )
    return CampaignCase(
        label=label,
        topology=topology,
        crashes=tuple(sorted(tuple(pair) for pair in crashes)),
        sends=tuple(sends),
    )


@dataclass(frozen=True)
class Campaign:
    """A declarative grid of scenarios.

    The expansion order is the nested product, outermost to innermost:
    cases x seeds x variants x gamma_lags x indicator_lags x
    schedulings x backends x event_drivens x faults x delay_models
    (the delay axis collapses to a single entry on non-async
    backends — see :meth:`_delay_axis`).  Every expanded
    spec gets a deterministic label of the form
    ``case:s<seed>:<variant>[:g<lag>][:i<lag>][:<scheduling>][:<backend>][:ed<0|1>][:f<hash6>]``
    (non-default axes only, keeping labels short on simple sweeps).

    Attributes:
        name: campaign name, recorded in manifests and result files.
        cases: the bound (topology, failures, sends) scenarios.
        seeds: engine seeds to sweep.
        variants: protocol variants to sweep.
        gamma_lags / indicator_lags: detector lags to sweep.
        schedulings: engine scheduling modes to sweep.
        backends: execution backends (``"engine"`` / ``"kernel"``).
        event_drivens: kernel scheduling modes; ``None`` derives the
            mode from ``scheduling``, so the default single-``None``
            axis makes a scan-vs-event sweep cover both loops.
        faults: fault plans to sweep (the nemesis axis); ``None``
            entries run fault-free, and the default single-``None``
            axis keeps pre-nemesis campaigns (and their hashes)
            unchanged.
        delay_models: channel-latency specs to sweep on the ``async``
            backend (see :mod:`repro.runtime.delay`); ``None`` entries
            use the backend default, and the default single-``None``
            axis keeps pre-v5 campaigns (and their hashes) unchanged.
        max_rounds: round budget shared by every scenario.
    """

    name: str
    cases: Tuple[CampaignCase, ...]
    seeds: Tuple[int, ...] = (0,)
    variants: Tuple[str, ...] = ("vanilla",)
    gamma_lags: Tuple[Time, ...] = (0,)
    indicator_lags: Tuple[Time, ...] = (0,)
    schedulings: Tuple[str, ...] = ("event",)
    backends: Tuple[str, ...] = ("engine",)
    event_drivens: Tuple[Optional[bool], ...] = (None,)
    faults: Tuple[Optional[FaultPlan], ...] = (None,)
    delay_models: Tuple[Optional[Tuple[Any, ...]], ...] = (None,)
    #: Retained-quirk names stamped onto *every* expanded spec (not an
    #: axis: quirk sweeps would double grids for cells whose backends
    #: ignore the quirk).  Empty — the default — is omitted from
    #: :meth:`to_json`, so pre-quirk campaign hashes are unchanged.
    quirks: Tuple[str, ...] = ()
    max_rounds: int = 600

    def __post_init__(self) -> None:
        if not self.cases:
            raise ValueError("a campaign needs at least one case")
        for axis in (
            "seeds",
            "variants",
            "gamma_lags",
            "indicator_lags",
            "schedulings",
            "backends",
            "event_drivens",
            "faults",
            "delay_models",
        ):
            if not getattr(self, axis):
                raise ValueError(f"campaign axis {axis!r} must be non-empty")
        # Canonicalize eagerly so two spellings of one model share a
        # campaign hash (and a malformed spec fails at build time).
        object.__setattr__(
            self,
            "delay_models",
            tuple(
                None if dm is None else canonical_delay_spec(dm)
                for dm in self.delay_models
            ),
        )

    def specs(self) -> Tuple[ScenarioSpec, ...]:
        """Expand the grid into frozen scenario specs, in grid order."""
        expanded = []
        for kase in self.cases:
            for seed in self.seeds:
                for variant in self.variants:
                    for gamma_lag in self.gamma_lags:
                        for indicator_lag in self.indicator_lags:
                            for scheduling in self.schedulings:
                                for backend in self.backends:
                                    for event_driven in self.event_drivens:
                                        for plan in self.faults:
                                            for dm in self._delay_axis(
                                                backend
                                            ):
                                                expanded.append(
                                                    ScenarioSpec(
                                                        topology=kase.topology,
                                                        crashes=kase.crashes,
                                                        sends=kase.sends,
                                                        seed=seed,
                                                        variant=variant,
                                                        gamma_lag=gamma_lag,
                                                        indicator_lag=indicator_lag,
                                                        max_rounds=self.max_rounds,
                                                        scheduling=scheduling,
                                                        backend=backend,
                                                        event_driven=event_driven,
                                                        faults=plan,
                                                        delay_model=dm,
                                                        quirks=self.quirks,
                                                        name=self._label(
                                                            kase.label,
                                                            seed,
                                                            variant,
                                                            gamma_lag,
                                                            indicator_lag,
                                                            scheduling,
                                                            backend,
                                                            event_driven,
                                                            plan,
                                                            dm,
                                                        ),
                                                    )
                                                )
        return tuple(expanded)

    def _delay_axis(
        self, backend: str
    ) -> Tuple[Optional[Tuple[Any, ...]], ...]:
        """The delay axis a backend actually sweeps.

        Only the async backend consumes a delay model; expanding the
        round backends over the axis would mint distinct cache cells
        for byte-identical runs, so they collapse to the single default
        entry.
        """
        if backend == "async":
            return self.delay_models
        return (None,)

    def _label(
        self,
        base: str,
        seed: int,
        variant: str,
        gamma_lag: Time,
        indicator_lag: Time,
        scheduling: str,
        backend: str,
        event_driven: Optional[bool],
        plan: Optional[FaultPlan] = None,
        delay_model: Optional[Tuple[Any, ...]] = None,
    ) -> str:
        parts = [base, f"s{seed}", variant]
        if len(self.gamma_lags) > 1 or gamma_lag:
            parts.append(f"g{gamma_lag}")
        if len(self.indicator_lags) > 1 or indicator_lag:
            parts.append(f"i{indicator_lag}")
        if len(self.schedulings) > 1 or scheduling != "event":
            parts.append(scheduling)
        if len(self.backends) > 1 or backend != "engine":
            parts.append(backend)
        if len(self.event_drivens) > 1 or event_driven is not None:
            parts.append(f"ed{int(bool(event_driven))}")
        if plan is not None:
            parts.append(f"f{plan.plan_hash()[:6]}")
        elif len(self.faults) > 1:
            parts.append("f-none")
        if delay_model is not None:
            parts.append(f"d-{delay_model[0]}")
        elif backend == "async" and len(self.delay_models) > 1:
            parts.append("d-default")
        return ":".join(parts)

    def to_json(self) -> Dict[str, Any]:
        """The campaign as a JSON-ready dict (manifest material).

        The ``faults`` and ``delay_models`` axes are emitted only when
        they depart from their single-``None`` defaults, so earlier
        campaigns keep the manifest layout — and the
        :meth:`campaign_hash` — they always had.
        """
        body = self._base_json()
        if self.faults != (None,):
            body["faults"] = [
                None if plan is None else plan.to_json()
                for plan in self.faults
            ]
        if self.delay_models != (None,):
            body["delay_models"] = [
                _delay_spec_to_json(dm) for dm in self.delay_models
            ]
        if self.quirks:
            body["quirks"] = list(self.quirks)
        return body

    def _base_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "cases": [
                {
                    "label": kase.label,
                    "topology": kase.topology.to_json(),
                    "crashes": [list(pair) for pair in kase.crashes],
                    "sends": [
                        [s.sender, s.group, s.at_round, s.payload]
                        for s in kase.sends
                    ],
                }
                for kase in self.cases
            ],
            "seeds": list(self.seeds),
            "variants": list(self.variants),
            "gamma_lags": list(self.gamma_lags),
            "indicator_lags": list(self.indicator_lags),
            "schedulings": list(self.schedulings),
            "backends": list(self.backends),
            "event_drivens": list(self.event_drivens),
            "max_rounds": self.max_rounds,
        }

    def campaign_hash(self) -> str:
        """Content address of the whole grid (sha256 hex)."""
        canonical = json.dumps(
            self.to_json(), sort_keys=True, separators=(",", ":"), default=str
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
