"""The campaign result cache and the hash-prefix grid shards.

A sweep row is a pure function of its grid cell — the scenario's content
hash, the schedule seed, the backend and the fault plan hash (see
:func:`repro.workloads.runner.scenario_cache_key`).  The
:class:`CampaignCache` stores one JSON file per cell under that key, so
a rerun of a campaign executes only the cells it has never seen: a cache
hit replays the stored row byte-identically into ``results.jsonl``
instead of re-running the scenario.

Three policies keep cached sweeps honest:

* **Only ``ok`` rows are stored.**  A ``failed`` row describes a crash
  of the *harness* (an exception, a broken checker) rather than a fact
  about the scenario; caching it would freeze a transient failure into
  every future sweep, so failed cells are always re-executed.
* **Label-independent identity.**  The key excludes the spec's
  free-form label, and a hit is re-labelled from the live spec
  (``name`` + ``spec`` fields), so two campaigns sweeping the same cell
  under different names share one entry yet each serializes its own
  labels byte-identically.
* **Corruption is a miss.**  A torn or unparsable cache file (a killed
  writer, a disk hiccup) silently degrades to re-execution; writes are
  atomic (`os.replace`) so a reader never observes a half-written row.

:func:`shard_of` / :func:`shard_cells` split a grid by cache-key prefix
— the first step toward multi-host sweeps: every host runs
``run_campaign(campaign, shard=(k, n))``, the shards partition the grid
deterministically (the key is content-addressed, so the split is stable
across hosts and reruns), and the per-shard artifacts keep the global
grid indices so they can be merged by concatenation.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.workloads.runner import scenario_cache_key
from repro.workloads.spec import ScenarioSpec

#: Bumped on breaking changes to the cached-row layout.  Version 2 grew
#: the row's ``trace`` section with the coverage signals the explorer
#: fingerprints runs by (wait reasons, oracle query totals, the
#: interleaving transition stream); version-1 entries miss and re-run.
CACHE_SCHEMA_VERSION = 2


class CampaignCache:
    """A content-addressed store of finished sweep rows.

    One file per cell, ``<root>/<key[:2]>/<key>.json``, holding the row
    minus its grid ``index`` (the index describes the row's position in
    one particular campaign, not the cell's identity).  The two-level
    fan-out keeps directories small on million-cell sweeps.

    Attributes:
        root: the cache directory (created lazily on first store).
        hits / misses / stored: what this instance actually did —
            surfaced in campaign reports and the CLI summary.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.hits = 0
        self.misses = 0
        self.stored = 0

    # -- Addressing --------------------------------------------------------

    def key_for(self, spec: ScenarioSpec) -> str:
        """The cell's cache key (see :func:`scenario_cache_key`)."""
        return scenario_cache_key(spec)

    def path_for(self, spec: ScenarioSpec) -> str:
        """Where the cell's row lives (whether or not it exists yet)."""
        key = self.key_for(spec)
        return os.path.join(self.root, key[:2], key + ".json")

    # -- Lookup ------------------------------------------------------------

    def get(self, spec: ScenarioSpec) -> Optional[Dict[str, Any]]:
        """The stored row for ``spec``'s cell, or ``None`` to execute.

        Misses on absent files, unparsable files, schema mismatches and
        non-``ok`` rows (a failed row is never cache-hit).  A hit is
        re-labelled from the live spec so the replayed row is
        byte-identical to what executing this spec would have produced.
        """
        try:
            with open(self.path_for(spec), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        row = entry.get("row") if isinstance(entry, dict) else None
        if (
            not isinstance(row, dict)
            or entry.get("schema") != CACHE_SCHEMA_VERSION
            or row.get("status") != "ok"
        ):
            self.misses += 1
            return None
        self.hits += 1
        row["name"] = spec.name
        row["spec"] = spec.to_json()
        return row

    # -- Store -------------------------------------------------------------

    def put(self, spec: ScenarioSpec, row: Dict[str, Any]) -> bool:
        """Store an executed row; returns whether it was cached.

        ``failed`` rows are refused (always re-execute), and the grid
        ``index`` is stripped — it belongs to the campaign, not the
        cell.  The write is atomic: a concurrent reader sees either the
        old entry or the new one, never a torn file.
        """
        if row.get("status") != "ok":
            return False
        path = self.path_for(spec)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        body = {
            "schema": CACHE_SCHEMA_VERSION,
            "key": self.key_for(spec),
            "row": {k: v for k, v in row.items() if k != "index"},
        }
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(body, fh, sort_keys=True, default=str)
            fh.write("\n")
        os.replace(tmp, path)
        self.stored += 1
        return True

    def stats(self) -> Dict[str, int]:
        """What this cache instance did, row-ready."""
        return {"hits": self.hits, "misses": self.misses, "stored": self.stored}


def ensure_cache(
    cache: Optional[object],
) -> Optional[CampaignCache]:
    """Coerce a cache argument (directory path or instance) to a cache."""
    if cache is None or isinstance(cache, CampaignCache):
        return cache
    if isinstance(cache, str):
        return CampaignCache(cache)
    raise TypeError(
        f"cache must be a CampaignCache or a directory path, got {cache!r}"
    )


# -- Grid sharding ----------------------------------------------------------


def shard_of(spec: ScenarioSpec, shards: int) -> int:
    """Which of ``shards`` hash-prefix shards this cell belongs to.

    Derived from the leading 64 bits of the cell's cache key, so the
    assignment is a pure function of content — stable across hosts,
    reruns and grid re-orderings — and uniform for any shard count.
    """
    if shards < 1:
        raise ValueError(f"shard count must be >= 1, got {shards}")
    return int(scenario_cache_key(spec)[:16], 16) % shards


def shard_cells(
    cells: Iterable[Tuple[int, ScenarioSpec]], shards: int, shard: int
) -> List[Tuple[int, ScenarioSpec]]:
    """The ``(global index, spec)`` cells owned by ``shard`` of ``shards``.

    Global indices are preserved so a shard's ``results.jsonl`` rows
    carry their position in the *whole* grid — merging the per-host
    artifacts back into one sweep is a sort-by-index concatenation.
    """
    if not 0 <= shard < shards:
        raise ValueError(
            f"shard index must be in [0, {shards}), got {shard}"
        )
    return [
        (index, spec)
        for index, spec in cells
        if shard_of(spec, shards) == shard
    ]
