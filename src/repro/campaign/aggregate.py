"""Campaign reports: manifest + byte-stable results JSONL.

A finished sweep is two artifacts:

* ``manifest.json`` — the campaign's identity: name, grid hash, and the
  ordered scenario list with per-spec content hashes.  Enough to replay
  any row (or the whole sweep) without the code that built the grid.
* ``results.jsonl`` — one meta line, one line per scenario row (in spec
  order), one summary line; the same ``meta / body / summary`` layout as
  the engine traces, readable with :func:`repro.metrics.read_jsonl`.

Neither artifact records wall-clock times, worker counts or execution
mode: those describe the machine, not the campaign, and keeping them
out is what makes the files byte-identical across executors.  Timing
lives on the in-memory :class:`CampaignReport` only.

Both artifacts can be produced two ways with identical bytes: from a
finished in-memory report (:meth:`CampaignReport.write`, the historical
path) or *streamed* while the sweep runs (:func:`write_manifest` +
:class:`ResultsWriter`, the ``run_campaign(out_dir=...)`` path) — row
by row, holding nothing, so a million-cell grid costs O(1) memory.  The
streamed results file is also the resume medium:
:func:`scan_partial_results` walks a partial file after an interrupt,
recovers the valid row prefix, and tells the executor where to truncate
and continue.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple

from repro.workloads.spec import ScenarioSpec

#: Bumped on breaking changes to the results/manifest layout.
CAMPAIGN_SCHEMA_VERSION = 1


# -- Line formats (the single source of results.jsonl bytes) ----------------


def meta_line(
    name: str,
    campaign_hash: str,
    scenarios: int,
    shard: Optional[Tuple[int, int]] = None,
) -> str:
    """The results file's first line.

    ``scenarios`` is the number of row lines this file will carry — the
    whole grid normally, the shard's cell count for a sharded sweep
    (which also records its ``shard`` so merged artifacts self-describe;
    unsharded sweeps keep the historical layout byte-for-byte).
    """
    body: Dict[str, Any] = {
        "type": "meta",
        "schema": CAMPAIGN_SCHEMA_VERSION,
        "name": name,
        "campaign_hash": campaign_hash,
        "scenarios": scenarios,
    }
    if shard is not None:
        body["shard"] = list(shard)
    return json.dumps(body, sort_keys=True)


def row_line(row: Dict[str, Any]) -> str:
    """One scenario row as its results.jsonl line."""
    body = dict(row)
    body["type"] = "row"
    return json.dumps(body, sort_keys=True, default=str)


def summary_line(summary: Dict[str, Any]) -> str:
    """The aggregate as the results file's final line."""
    body = dict(summary)
    body["type"] = "summary"
    return json.dumps(body, sort_keys=True)


@dataclass(frozen=True)
class CampaignReport:
    """Everything a finished sweep produced.

    Attributes:
        name: campaign name.
        campaign_hash: content hash of the grid (empty for ad-hoc spec
            lists).
        specs: the expanded scenario specs, in execution order.
        rows: one result row per spec, in the same order.  Empty when
            the sweep streamed its rows to disk (``streamed=True``) —
            the artifact, not this object, holds them.
        summary: the worker-count-independent aggregate
            (:meth:`repro.metrics.sweep.SweepAggregator.summary`).
        mode: ``"serial"`` or ``"process"`` — how this report was made.
        workers: worker processes used (1 for serial).
        elapsed: wall-clock seconds of the sweep.  Not serialized.
        executed: scenarios actually run by this invocation (cache
            hits, resumed rows and already-complete files excluded).
        cached: rows replayed from the result cache.
        resumed: rows recovered from a partial results file.
        shard: ``(shard index, shard count)`` for a sharded sweep, else
            ``None``.
        cell_count: rows this sweep owns — ``None`` means the whole
            grid (``len(specs)``); a sharded sweep records its subset.
        streamed: whether rows went straight to ``results.jsonl``
            (:meth:`write` refuses to run again — the artifacts already
            exist and this object no longer holds the rows).
    """

    name: str
    campaign_hash: str
    specs: Tuple[ScenarioSpec, ...]
    rows: Tuple[Dict[str, Any], ...]
    summary: Dict[str, Any]
    mode: str
    workers: int
    elapsed: float
    executed: int = 0
    cached: int = 0
    resumed: int = 0
    shard: Optional[Tuple[int, int]] = None
    cell_count: Optional[int] = None
    streamed: bool = False

    # -- Row access -------------------------------------------------------

    def ok_rows(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(r for r in self.rows if r.get("status") == "ok")

    def failed_rows(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(r for r in self.rows if r.get("status") != "ok")

    # -- Serialization ----------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """The campaign's identity and scenario inventory."""
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "name": self.name,
            "campaign_hash": self.campaign_hash,
            "scenarios": [
                {
                    "index": index,
                    "name": spec.name,
                    "spec_hash": spec.spec_hash(),
                    "spec": spec.to_json(),
                }
                for index, spec in enumerate(self.specs)
            ],
        }

    def iter_results_jsonl(self) -> Iterator[str]:
        """The results as JSONL lines: meta, rows, summary.

        Deterministic by construction — rows are in spec order, keys are
        sorted, and nothing machine-specific is included — so serial and
        parallel sweeps of the same campaign serialize byte-identically.
        """
        scenarios = (
            self.cell_count if self.cell_count is not None else len(self.specs)
        )
        yield meta_line(self.name, self.campaign_hash, scenarios, self.shard)
        for row in self.rows:
            yield row_line(row)
        yield summary_line(self.summary)

    def results_jsonl(self) -> str:
        """The whole results file as one string (byte-identity checks)."""
        return "\n".join(self.iter_results_jsonl()) + "\n"

    def write(self, directory: str) -> Dict[str, str]:
        """Write ``manifest.json`` + ``results.jsonl`` into ``directory``.

        Returns the paths written, keyed by artifact name.  Refused for
        streamed reports: their artifacts were written row-by-row while
        the sweep ran and this object no longer holds the rows.
        """
        if self.streamed:
            raise ValueError(
                "this report streamed its rows to disk while running; "
                "the artifacts already exist in the sweep's out_dir"
            )
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, "manifest.json")
        results_path = os.path.join(directory, "results.jsonl")
        write_manifest(
            manifest_path,
            name=self.name,
            campaign_hash=self.campaign_hash,
            specs=self.specs,
        )
        with open(results_path, "w", encoding="utf-8") as fh:
            for line in self.iter_results_jsonl():
                fh.write(line + "\n")
        return {"manifest": manifest_path, "results": results_path}


# -- Streaming manifest -----------------------------------------------------


def write_manifest(
    path: str,
    *,
    name: str,
    campaign_hash: str,
    specs: Sequence[ScenarioSpec],
) -> str:
    """Write ``manifest.json`` one scenario at a time.

    Byte-identical to ``json.dump(report.manifest(), fh, sort_keys=True,
    indent=2, default=str)`` (pinned by tests) without ever building the
    scenario list in memory — the manifest of a 10^6-cell grid costs as
    much RAM as one entry.  Idempotent, so a resumed sweep simply
    rewrites it.
    """
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("{\n")
        fh.write(f'  "campaign_hash": {json.dumps(campaign_hash)},\n')
        fh.write(f'  "name": {json.dumps(name)},\n')
        if not specs:
            fh.write('  "scenarios": [],\n')
        else:
            fh.write('  "scenarios": [\n')
            for index, spec in enumerate(specs):
                entry = {
                    "index": index,
                    "name": spec.name,
                    "spec_hash": spec.spec_hash(),
                    "spec": spec.to_json(),
                }
                blob = json.dumps(entry, sort_keys=True, indent=2, default=str)
                body = "\n".join("    " + line for line in blob.splitlines())
                fh.write(body)
                fh.write(",\n" if index + 1 < len(specs) else "\n")
            fh.write("  ],\n")
        fh.write(f'  "schema": {CAMPAIGN_SCHEMA_VERSION}\n')
        fh.write("}\n")
    return path


# -- Streaming results ------------------------------------------------------


class ResultsWriter:
    """Appends results.jsonl lines as rows arrive (O(1) memory).

    The byte layout is exactly :meth:`CampaignReport.iter_results_jsonl`
    — same meta, same row serialization, same summary — so a streamed
    sweep and an in-memory sweep of the same campaign produce identical
    files.  Every line is flushed as written: an interrupted sweep
    leaves at worst one torn trailing line, which
    :func:`scan_partial_results` discards on resume.
    """

    def __init__(
        self,
        path: str,
        *,
        name: str,
        campaign_hash: str,
        scenarios: int,
        shard: Optional[Tuple[int, int]] = None,
    ) -> None:
        self.path = path
        self._meta = meta_line(name, campaign_hash, scenarios, shard)
        self._fh: Optional[Any] = None

    def start(self) -> None:
        """Open a fresh file and write the meta line."""
        self._fh = open(self.path, "w", encoding="utf-8")
        self._fh.write(self._meta + "\n")
        self._fh.flush()

    def resume_at(self, offset: int) -> None:
        """Truncate the partial file to ``offset`` and append after it.

        ``offset`` is the byte position after the last valid line (from
        :func:`scan_partial_results`); everything past it — a torn line,
        rows beyond a corrupt gap — is discarded and re-executed.
        """
        fh = open(self.path, "r+b")
        fh.truncate(offset)
        fh.close()
        self._fh = open(self.path, "a", encoding="utf-8")

    def append(self, row: Dict[str, Any]) -> None:
        assert self._fh is not None, "writer not started"
        self._fh.write(row_line(row) + "\n")
        self._fh.flush()

    def finish(self, summary: Dict[str, Any]) -> None:
        """Write the summary line and close — the sweep is complete."""
        assert self._fh is not None, "writer not started"
        self._fh.write(summary_line(summary) + "\n")
        self.close()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


# -- Resume -----------------------------------------------------------------


@dataclass(frozen=True)
class PartialScan:
    """What a partial results file still holds.

    Attributes:
        rows: valid rows recovered (a prefix of the sweep's cells).
        offset: byte position after the last valid line — the resume
            point for :meth:`ResultsWriter.resume_at`.  ``0`` means not
            even the meta line survived: start fresh.
        complete: a summary line was found — the sweep already finished
            and there is nothing to execute.
    """

    rows: int
    offset: int
    complete: bool


def scan_partial_results(
    path: str,
    *,
    campaign_hash: str,
    scenarios: int,
    expected: Sequence[int],
    consume: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> PartialScan:
    """Walk a partial results file and find the resume point.

    The file must open with a meta line matching this sweep's identity
    (``campaign_hash`` and cell count) — a mismatch raises
    :class:`ValueError` rather than silently clobbering some other
    campaign's artifact.  Rows are validated against ``expected`` (the
    global grid indices this sweep will emit, in order); the scan stops
    at the first torn, unparsable or out-of-sequence line, and each
    valid row is passed to ``consume`` (the executor feeds its
    aggregator and row sinks) without retaining any of them.
    """
    rows = 0
    offset = 0
    complete = False
    with open(path, "rb") as fh:
        for lineno, raw in enumerate(iter(fh.readline, b"")):
            if not raw.endswith(b"\n"):
                break  # torn tail from the interrupt — discard
            try:
                record = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                break
            if not isinstance(record, dict):
                break
            kind = record.get("type")
            if lineno == 0:
                if kind != "meta":
                    break
                if (
                    record.get("campaign_hash") != campaign_hash
                    or record.get("scenarios") != scenarios
                ):
                    raise ValueError(
                        f"results file {path!r} belongs to a different "
                        f"campaign (hash {record.get('campaign_hash')!r}, "
                        f"{record.get('scenarios')!r} scenarios); refusing "
                        f"to resume over it"
                    )
                offset += len(raw)
                continue
            if kind == "summary":
                if rows != len(expected):
                    raise ValueError(
                        f"results file {path!r} carries a summary line "
                        f"after only {rows} of {len(expected)} rows; the "
                        f"artifact is corrupt — delete it to re-run"
                    )
                offset += len(raw)
                complete = True
                break
            if kind != "row":
                break
            if rows >= len(expected) or record.get("index") != expected[rows]:
                break
            if consume is not None:
                consume(record)
            rows += 1
            offset += len(raw)
    return PartialScan(rows=rows, offset=offset, complete=complete)
