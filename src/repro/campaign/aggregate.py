"""Campaign reports: manifest + byte-stable results JSONL.

A finished sweep is two artifacts:

* ``manifest.json`` — the campaign's identity: name, grid hash, and the
  ordered scenario list with per-spec content hashes.  Enough to replay
  any row (or the whole sweep) without the code that built the grid.
* ``results.jsonl`` — one meta line, one line per scenario row (in spec
  order), one summary line; the same ``meta / body / summary`` layout as
  the engine traces, readable with :func:`repro.metrics.read_jsonl`.

Neither artifact records wall-clock times, worker counts or execution
mode: those describe the machine, not the campaign, and keeping them
out is what makes the files byte-identical across executors.  Timing
lives on the in-memory :class:`CampaignReport` only.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Tuple

from repro.workloads.spec import ScenarioSpec

#: Bumped on breaking changes to the results/manifest layout.
CAMPAIGN_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CampaignReport:
    """Everything a finished sweep produced.

    Attributes:
        name: campaign name.
        campaign_hash: content hash of the grid (empty for ad-hoc spec
            lists).
        specs: the expanded scenario specs, in execution order.
        rows: one result row per spec, in the same order.
        summary: the worker-count-independent aggregate
            (:meth:`repro.metrics.sweep.SweepAggregator.summary`).
        mode: ``"serial"`` or ``"process"`` — how this report was made.
        workers: worker processes used (1 for serial).
        elapsed: wall-clock seconds of the sweep.  Not serialized.
    """

    name: str
    campaign_hash: str
    specs: Tuple[ScenarioSpec, ...]
    rows: Tuple[Dict[str, Any], ...]
    summary: Dict[str, Any]
    mode: str
    workers: int
    elapsed: float

    # -- Row access -------------------------------------------------------

    def ok_rows(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(r for r in self.rows if r.get("status") == "ok")

    def failed_rows(self) -> Tuple[Dict[str, Any], ...]:
        return tuple(r for r in self.rows if r.get("status") != "ok")

    # -- Serialization ----------------------------------------------------

    def manifest(self) -> Dict[str, Any]:
        """The campaign's identity and scenario inventory."""
        return {
            "schema": CAMPAIGN_SCHEMA_VERSION,
            "name": self.name,
            "campaign_hash": self.campaign_hash,
            "scenarios": [
                {
                    "index": index,
                    "name": spec.name,
                    "spec_hash": spec.spec_hash(),
                    "spec": spec.to_json(),
                }
                for index, spec in enumerate(self.specs)
            ],
        }

    def iter_results_jsonl(self) -> Iterator[str]:
        """The results as JSONL lines: meta, rows, summary.

        Deterministic by construction — rows are in spec order, keys are
        sorted, and nothing machine-specific is included — so serial and
        parallel sweeps of the same campaign serialize byte-identically.
        """
        yield json.dumps(
            {
                "type": "meta",
                "schema": CAMPAIGN_SCHEMA_VERSION,
                "name": self.name,
                "campaign_hash": self.campaign_hash,
                "scenarios": len(self.specs),
            },
            sort_keys=True,
        )
        for row in self.rows:
            body = dict(row)
            body["type"] = "row"
            yield json.dumps(body, sort_keys=True, default=str)
        summary = dict(self.summary)
        summary["type"] = "summary"
        yield json.dumps(summary, sort_keys=True)

    def results_jsonl(self) -> str:
        """The whole results file as one string (byte-identity checks)."""
        return "\n".join(self.iter_results_jsonl()) + "\n"

    def write(self, directory: str) -> Dict[str, str]:
        """Write ``manifest.json`` + ``results.jsonl`` into ``directory``.

        Returns the paths written, keyed by artifact name.
        """
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, "manifest.json")
        results_path = os.path.join(directory, "results.jsonl")
        with open(manifest_path, "w", encoding="utf-8") as fh:
            json.dump(self.manifest(), fh, sort_keys=True, indent=2, default=str)
            fh.write("\n")
        with open(results_path, "w", encoding="utf-8") as fh:
            for line in self.iter_results_jsonl():
                fh.write(line + "\n")
        return {"manifest": manifest_path, "results": results_path}
