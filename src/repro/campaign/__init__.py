"""Parallel scenario sweeps over declarative campaign grids.

The pipeline is ``spec -> executor -> aggregator``:

1. a :class:`Campaign` expands a declarative grid into frozen, hashable
   :class:`repro.workloads.spec.ScenarioSpec` values;
2. :func:`run_campaign` executes them — serially, or fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` — with per-scenario
   failure isolation and deterministic, worker-count-independent row
   ordering;
3. the streaming :class:`repro.metrics.sweep.SweepAggregator` folds rows
   into campaign totals, and :class:`CampaignReport` serializes the whole
   sweep as a ``manifest.json`` + ``results.jsonl`` pair whose bytes do
   not depend on how the sweep was executed.

The scale-out layer rides on the same pipeline: a
:class:`repro.campaign.cache.CampaignCache` replays previously executed
cells byte-identically (``run_campaign(cache=...)``), ``out_dir=``
streams the artifacts row-by-row in O(1) memory, ``resume=True``
continues an interrupted sweep from its first missing cell, and
``shard=(k, n)`` splits the grid by cache-key prefix for multi-host
sweeps.

``python -m repro.campaign`` runs a small built-in smoke sweep (see
:mod:`repro.campaign.__main__`).
"""

from repro.campaign.aggregate import (
    CAMPAIGN_SCHEMA_VERSION,
    CampaignReport,
    PartialScan,
    ResultsWriter,
    meta_line,
    row_line,
    scan_partial_results,
    summary_line,
    write_manifest,
)
from repro.campaign.cache import (
    CACHE_SCHEMA_VERSION,
    CampaignCache,
    ensure_cache,
    shard_cells,
    shard_of,
)
from repro.campaign.executor import (
    MODES,
    execute_spec,
    iter_campaign_rows,
    run_campaign,
)
from repro.campaign.grid import Campaign, CampaignCase, case

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CAMPAIGN_SCHEMA_VERSION",
    "Campaign",
    "CampaignCache",
    "CampaignCase",
    "CampaignReport",
    "MODES",
    "PartialScan",
    "ResultsWriter",
    "case",
    "ensure_cache",
    "execute_spec",
    "iter_campaign_rows",
    "meta_line",
    "row_line",
    "run_campaign",
    "scan_partial_results",
    "shard_cells",
    "shard_of",
    "summary_line",
    "write_manifest",
]
