"""Parallel scenario sweeps over declarative campaign grids.

The pipeline is ``spec -> executor -> aggregator``:

1. a :class:`Campaign` expands a declarative grid into frozen, hashable
   :class:`repro.workloads.spec.ScenarioSpec` values;
2. :func:`run_campaign` executes them — serially, or fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` — with per-scenario
   failure isolation and deterministic, worker-count-independent row
   ordering;
3. the streaming :class:`repro.metrics.sweep.SweepAggregator` folds rows
   into campaign totals, and :class:`CampaignReport` serializes the whole
   sweep as a ``manifest.json`` + ``results.jsonl`` pair whose bytes do
   not depend on how the sweep was executed.

``python -m repro.campaign`` runs a small built-in smoke sweep (see
:mod:`repro.campaign.__main__`).
"""

from repro.campaign.aggregate import CAMPAIGN_SCHEMA_VERSION, CampaignReport
from repro.campaign.executor import (
    MODES,
    execute_spec,
    iter_campaign_rows,
    run_campaign,
)
from repro.campaign.grid import Campaign, CampaignCase, case

__all__ = [
    "CAMPAIGN_SCHEMA_VERSION",
    "CampaignReport",
    "MODES",
    "execute_spec",
    "iter_campaign_rows",
    "run_campaign",
    "Campaign",
    "CampaignCase",
    "case",
]
