"""``python -m repro.campaign`` — the built-in smoke sweep.

Runs a small campaign over the paper's Figure 1 topology plus a ring, a
chain and a hub, across several seeds and both protocol variants, then
writes the campaign artifacts (``manifest.json`` + ``results.jsonl``)
and prints the aggregate.  CI uses this as the campaign smoke job; the
exit status is non-zero when any scenario failed or violated a checked
property.

``--schedulings`` sweeps the engine's scan-vs-event axis, and
``--backends`` adds the Appendix-A kernel backend and/or the
real-asynchrony ``async`` backend.  The kernel backend requires
pairwise-disjoint destination groups, so asking for a non-engine
backend swaps the smoke cases for a disjoint grid (which every
requested backend then shares, keeping rows comparable across the
backend axis — including engine-vs-kernel-vs-async agreement cells).
``--delay-model`` sweeps the async backend's channel-latency axis.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.executor import run_campaign
from repro.campaign.grid import Campaign, case
from repro.groups.topology import paper_figure1_topology
from repro.metrics.sweep import sweep_table
from repro.runtime.delay import parse_delay_model
from repro.workloads.runner import Send
from repro.workloads.topologies import (
    chain_topology,
    disjoint_topology,
    hub_topology,
    ring_topology,
)


def smoke_campaign(
    seeds: int = 2,
    max_rounds: int = 600,
    schedulings: tuple = ("event",),
    backends: tuple = ("engine",),
    delay_models: tuple = (None,),
) -> Campaign:
    """The default smoke grid: 4 cases x ``seeds`` x 2 variants.

    With ``"kernel"`` or ``"async"`` among the backends the cases switch
    to disjoint topologies (the kernel backend's requirement, and the
    one grid every backend can share) with minority-per-group crashes,
    and the variant axis collapses to ``"vanilla"`` — those cells exist
    for cross-backend agreement, not variant coverage.
    """
    if "kernel" in backends or "async" in backends:
        cases = (
            case(
                "disjoint2x3",
                disjoint_topology(2, group_size=3),
                sends=(Send(1, "g1", 0), Send(4, "g2", 0), Send(2, "g1", 1)),
            ),
            case(
                "disjoint2x3-crash",
                disjoint_topology(2, group_size=3),
                crashes=((3, 5),),  # one g1 member: still a live majority
                sends=(Send(1, "g1", 0), Send(5, "g2", 1), Send(2, "g1", 2)),
            ),
            case(
                "disjoint3x3",
                disjoint_topology(3, group_size=3),
                sends=(Send(2, "g1", 0), Send(4, "g2", 0), Send(8, "g3", 1)),
            ),
            case(
                "disjoint3x3-crash",
                disjoint_topology(3, group_size=3),
                crashes=((5, 4),),  # one g2 member
                sends=(Send(1, "g1", 0), Send(6, "g2", 0), Send(9, "g3", 2)),
            ),
        )
        variants = ("vanilla",)
    else:
        figure1 = paper_figure1_topology()
        cases = (
            case(
                "figure1-crash",
                figure1,
                crashes=((2, 4),),  # p2 = g1 ∩ g2 dies mid-run
                sends=(
                    Send(1, "g1", 0),
                    Send(3, "g2", 0),
                    Send(4, "g3", 1),
                    Send(5, "g4", 1),
                    Send(2, "g1", 2),
                ),
            ),
            case(
                "ring4",
                ring_topology(4),
                sends=(Send(1, "g1", 0), Send(2, "g2", 0), Send(3, "g3", 1)),
            ),
            case(
                "chain3",
                chain_topology(3),
                sends=(Send(1, "g1", 0), Send(2, "g2", 0), Send(4, "g3", 1)),
            ),
            case(
                "hub3",
                hub_topology(3),
                sends=(Send(2, "g1", 0), Send(3, "g2", 0), Send(4, "g3", 0)),
            ),
        )
        variants = ("vanilla", "strict")
    return Campaign(
        name="smoke",
        cases=cases,
        seeds=tuple(range(seeds)),
        variants=variants,
        schedulings=tuple(schedulings),
        backends=tuple(backends),
        delay_models=tuple(delay_models),
        max_rounds=max_rounds,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="run the built-in campaign smoke sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process execution)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=2,
        help="seeds per case (scenario count = 8 x seeds)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to stream manifest.json + results.jsonl into "
        "(rows are written as they finish, not at the end)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="result cache directory: cells already executed under the "
        "same (spec_hash, seed, backend, fault_plan) replay their stored "
        "row instead of re-running",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a partial results.jsonl in --out from its first "
        "missing row (requires --out)",
    )
    parser.add_argument(
        "--shard",
        metavar="K/N",
        default=None,
        help="run only hash-prefix shard K of N (e.g. '0/4'); rows keep "
        "their global grid indices so per-shard artifacts merge cleanly",
    )
    parser.add_argument(
        "--schedulings",
        default="event",
        metavar="MODES",
        help="comma-separated engine scheduling modes to sweep "
        "(e.g. 'event,scan' for a differential matrix; default: event)",
    )
    parser.add_argument(
        "--backends",
        default="engine",
        metavar="BACKENDS",
        help="comma-separated execution backends to sweep "
        "('engine', 'kernel', 'async' or any mix; a non-engine backend "
        "switches the smoke grid to disjoint topologies; default: engine)",
    )
    parser.add_argument(
        "--delay-model",
        action="append",
        default=None,
        metavar="SPEC",
        help="delay model for the async backend, e.g. 'uniform:0.1:0.9', "
        "'exponential:1.0:8' or 'slow_pairs:4:1-2,2-1'; repeat the flag "
        "to sweep several (only async cells expand over this axis; "
        "default: the backend's uniform default)",
    )
    parser.add_argument(
        "--stall-window",
        type=int,
        default=None,
        metavar="ROUNDS",
        help="arm the per-run stall watchdog: a run making no delivery/"
        "apply progress for this many rounds fails its cell with a "
        "triaged wait-reason histogram instead of burning its round "
        "budget (pick a window above the protocol's natural commit "
        "latency; the planted supersede-wait stall trips at 100)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget (process mode only): a cell "
        "that exceeds it yields a failed row with error='timeout' "
        "instead of hanging the sweep",
    )
    args = parser.parse_args(argv)

    if args.resume and not args.out:
        parser.error("--resume requires --out")
    if args.cell_timeout is not None and args.workers <= 1:
        parser.error("--cell-timeout needs --workers >= 2 (process mode); "
                     "use --stall-window for in-process sweeps")
    shard = None
    if args.shard is not None:
        try:
            k, n = (int(part) for part in args.shard.split("/", 1))
        except ValueError:
            parser.error("--shard must look like K/N, e.g. 0/4")
        shard = (k, n)

    delay_models = (
        (None,)
        if not args.delay_model
        else tuple(parse_delay_model(text) for text in args.delay_model)
    )
    campaign = smoke_campaign(
        seeds=args.seeds,
        schedulings=tuple(
            mode.strip() for mode in args.schedulings.split(",") if mode.strip()
        ),
        backends=tuple(
            b.strip() for b in args.backends.split(",") if b.strip()
        ),
        delay_models=delay_models,
    )
    report = run_campaign(
        campaign,
        workers=args.workers,
        cache=args.cache_dir,
        out_dir=args.out,
        resume=args.resume,
        shard=shard,
        keep_rows=True,  # the smoke table below wants the rows
        stall_window=args.stall_window,
        cell_timeout=args.cell_timeout,
    )

    print(sweep_table(report.rows))
    print()
    summary = report.summary
    print(
        f"campaign {report.name!r} ({report.campaign_hash[:12]}): "
        f"{summary['scenarios']} scenarios, {summary['ok']} ok, "
        f"{summary['failed']} failed, {summary['delivered']} delivered, "
        f"{summary['truncated']} truncated, "
        f"{sum(summary['violations'].values())} property violations "
        f"[{report.mode}, workers={report.workers}, "
        f"executed={report.executed} cached={report.cached} "
        f"resumed={report.resumed}, {report.elapsed:.2f}s]"
    )
    if args.out:
        print(f"streamed {args.out}/manifest.json and {args.out}/results.jsonl")

    bad = summary["failed"] + summary["violating_scenarios"] + summary["truncated"]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
