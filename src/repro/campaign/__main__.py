"""``python -m repro.campaign`` — the built-in smoke sweep.

Runs a small campaign over the paper's Figure 1 topology plus a ring, a
chain and a hub, across several seeds and both protocol variants, then
writes the campaign artifacts (``manifest.json`` + ``results.jsonl``)
and prints the aggregate.  CI uses this as the campaign smoke job; the
exit status is non-zero when any scenario failed or violated a checked
property.
"""

from __future__ import annotations

import argparse
import sys

from repro.campaign.executor import run_campaign
from repro.campaign.grid import Campaign, case
from repro.groups.topology import paper_figure1_topology
from repro.metrics.sweep import sweep_table
from repro.workloads.runner import Send
from repro.workloads.topologies import chain_topology, hub_topology, ring_topology


def smoke_campaign(seeds: int = 2, max_rounds: int = 600) -> Campaign:
    """The default smoke grid: 4 cases x ``seeds`` x 2 variants."""
    figure1 = paper_figure1_topology()
    return Campaign(
        name="smoke",
        cases=(
            case(
                "figure1-crash",
                figure1,
                crashes=((2, 4),),  # p2 = g1 ∩ g2 dies mid-run
                sends=(
                    Send(1, "g1", 0),
                    Send(3, "g2", 0),
                    Send(4, "g3", 1),
                    Send(5, "g4", 1),
                    Send(2, "g1", 2),
                ),
            ),
            case(
                "ring4",
                ring_topology(4),
                sends=(Send(1, "g1", 0), Send(2, "g2", 0), Send(3, "g3", 1)),
            ),
            case(
                "chain3",
                chain_topology(3),
                sends=(Send(1, "g1", 0), Send(2, "g2", 0), Send(4, "g3", 1)),
            ),
            case(
                "hub3",
                hub_topology(3),
                sends=(Send(2, "g1", 0), Send(3, "g2", 0), Send(4, "g3", 0)),
            ),
        ),
        seeds=tuple(range(seeds)),
        variants=("vanilla", "strict"),
        max_rounds=max_rounds,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="run the built-in campaign smoke sweep",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes (1 = serial in-process execution)",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=2,
        help="seeds per case (scenario count = 8 x seeds)",
    )
    parser.add_argument(
        "--out",
        metavar="DIR",
        default=None,
        help="directory to write manifest.json + results.jsonl into",
    )
    args = parser.parse_args(argv)

    campaign = smoke_campaign(seeds=args.seeds)
    report = run_campaign(campaign, workers=args.workers)

    print(sweep_table(report.rows))
    print()
    summary = report.summary
    print(
        f"campaign {report.name!r} ({report.campaign_hash[:12]}): "
        f"{summary['scenarios']} scenarios, {summary['ok']} ok, "
        f"{summary['failed']} failed, {summary['delivered']} delivered, "
        f"{summary['truncated']} truncated, "
        f"{sum(summary['violations'].values())} property violations "
        f"[{report.mode}, workers={report.workers}, "
        f"{report.elapsed:.2f}s]"
    )
    if args.out:
        paths = report.write(args.out)
        print(f"wrote {paths['manifest']} and {paths['results']}")

    bad = summary["failed"] + summary["violating_scenarios"] + summary["truncated"]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
