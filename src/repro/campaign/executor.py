"""Campaign execution: fan scenarios out, stream rows back, in order.

The executor maps frozen :class:`repro.workloads.spec.ScenarioSpec`
values over worker processes (:class:`concurrent.futures.ProcessPoolExecutor`)
or runs them in-process (``mode="serial"`` — the debugging path and the
byte-identity reference).  Both paths funnel every scenario through the
same module-level :func:`execute_spec`, so a serial and a parallel sweep
of the same campaign produce byte-identical rows.

Two invariants the rest of the subsystem leans on:

* **Failure isolation** — a scenario that raises becomes a
  ``status="failed"`` row carrying the exception and traceback; the
  sweep continues.  Only the executor machinery itself (a broken pool,
  an unpicklable spec) propagates.
* **Deterministic ordering** — rows are emitted in spec order no matter
  which worker finished first (``Executor.map`` preserves submission
  order), so results files are byte-stable across worker counts.

``execute_spec`` being a module-level function of a picklable argument
is what keeps the pool start-method agnostic: it works under ``fork``
as well as the spawn semantics Windows and macOS default to.
"""

from __future__ import annotations

import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Dict, Iterator, Optional, Sequence, Tuple, Union

from repro.campaign.aggregate import CampaignReport
from repro.campaign.grid import Campaign
from repro.metrics.sweep import SweepAggregator
from repro.workloads.runner import run_scenario, triage_record
from repro.workloads.spec import ScenarioSpec

#: Execution modes of :func:`run_campaign`.
MODES = ("serial", "process")


def execute_spec(task: Tuple[int, ScenarioSpec]) -> Dict[str, Any]:
    """Run one indexed spec; never raises for scenario-level failures.

    This is the single code path both executor modes use (and the unit a
    worker process receives).  A raising scenario is converted into a
    ``status="failed"`` row that still self-describes its spec, so one
    bad grid point cannot take down a sweep.
    """
    index, spec = task
    try:
        row = run_scenario(spec).to_row()
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        row = {
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "status": "failed",
            "error": repr(exc),
            "traceback": traceback.format_exc(),
            # Everything a replay needs, greppable from the log alone:
            # spec hash, seed, backend, fault plan hash.
            "triage": triage_record(spec),
            "spec": spec.to_json(),
        }
    row["index"] = index
    return row


def iter_campaign_rows(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int = 1,
    mp_context: Optional[object] = None,
) -> Iterator[Dict[str, Any]]:
    """Stream result rows in spec order.

    With ``workers <= 1`` the specs run serially in-process; otherwise a
    process pool executes them while this generator yields whatever is
    ready, still in submission order.
    """
    tasks = list(enumerate(specs))
    if workers <= 1:
        for task in tasks:
            yield execute_spec(task)
        return
    with ProcessPoolExecutor(
        max_workers=workers, mp_context=mp_context
    ) as pool:
        chunksize = max(1, len(tasks) // (workers * 4))
        for row in pool.map(execute_spec, tasks, chunksize=chunksize):
            yield row


def run_campaign(
    campaign: Union[Campaign, Sequence[ScenarioSpec]],
    *,
    workers: int = 1,
    mode: Optional[str] = None,
    mp_context: Optional[object] = None,
    on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> CampaignReport:
    """Execute a campaign (or a bare spec list) and aggregate the rows.

    Args:
        campaign: a :class:`Campaign` grid, or an already-expanded
            sequence of :class:`ScenarioSpec` values.
        workers: worker processes for ``mode="process"``.
        mode: ``"serial"`` or ``"process"``; default is serial for
            ``workers <= 1`` and a process pool otherwise.
        mp_context: optional :mod:`multiprocessing` context (e.g.
            ``multiprocessing.get_context("spawn")``) for the pool.
        on_row: optional callback invoked with each row as it streams
            in (progress reporting).

    Returns:
        a :class:`CampaignReport` whose rows are in spec order and
        whose aggregate summary is independent of ``workers``.
    """
    if isinstance(campaign, Campaign):
        name = campaign.name
        campaign_hash = campaign.campaign_hash()
        specs = campaign.specs()
    else:
        specs = tuple(campaign)
        name = "adhoc"
        campaign_hash = ""
    if mode is None:
        mode = "process" if workers > 1 else "serial"
    if mode not in MODES:
        raise ValueError(f"unknown campaign mode {mode!r}; pick from {MODES}")
    effective_workers = workers if mode == "process" else 1

    aggregator = SweepAggregator()
    rows = []
    started = time.perf_counter()
    for row in iter_campaign_rows(
        specs, workers=effective_workers, mp_context=mp_context
    ):
        aggregator.add(row)
        rows.append(row)
        if on_row is not None:
            on_row(row)
    elapsed = time.perf_counter() - started

    return CampaignReport(
        name=name,
        campaign_hash=campaign_hash,
        specs=specs,
        rows=tuple(rows),
        summary=aggregator.summary(),
        mode=mode,
        workers=effective_workers,
        elapsed=elapsed,
    )
