"""Campaign execution: fan scenarios out, stream rows back, in order.

The executor maps frozen :class:`repro.workloads.spec.ScenarioSpec`
values over worker processes (:class:`concurrent.futures.ProcessPoolExecutor`)
or runs them in-process (``mode="serial"`` — the debugging path and the
byte-identity reference).  Both paths funnel every scenario through the
same module-level :func:`execute_spec`, so a serial and a parallel sweep
of the same campaign produce byte-identical rows.

Two invariants the rest of the subsystem leans on:

* **Failure isolation** — a scenario that raises becomes a
  ``status="failed"`` row carrying the exception and traceback; the
  sweep continues.  Only the executor machinery itself (a broken pool,
  an unpicklable spec) propagates.
* **Deterministic ordering** — rows are emitted in spec order no matter
  which worker finished first (``Executor.map`` preserves submission
  order), so results files are byte-stable across worker counts.

On top of the seed executor this module owns the *scale-out* layer:

* a result cache (``cache=``, :mod:`repro.campaign.cache`) keyed on the
  cell's ``(spec_hash, seed, backend, fault_plan_hash)`` so reruns
  execute only new grid cells — a hit replays the stored row
  byte-identically;
* streaming artifacts (``out_dir=``) — rows go straight to
  ``results.jsonl`` through the :class:`SweepAggregator` without the
  executor retaining them, so a 10^6-cell grid sweeps in O(1) memory;
* resume-after-interrupt (``resume=True``) — a partial results file is
  scanned, its valid row prefix kept, and execution continues from the
  first missing cell; the finished artifact is byte-identical to an
  uninterrupted run;
* hash-prefix grid sharding (``shard=(k, n)``) — the first step toward
  multi-host sweeps: each host owns a deterministic, content-addressed
  subset of the cells while rows keep their global grid indices.

``execute_spec`` being a module-level function of a picklable argument
is what keeps the pool start-method agnostic: it works under ``fork``
as well as the spawn semantics Windows and macOS default to.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.campaign.aggregate import (
    CampaignReport,
    ResultsWriter,
    scan_partial_results,
    write_manifest,
)
from repro.campaign.cache import CampaignCache, ensure_cache, shard_cells
from repro.campaign.grid import Campaign
from repro.metrics.sweep import SweepAggregator
from repro.runtime.watchdog import StallError
from repro.workloads.runner import run_scenario, triage_record
from repro.workloads.spec import ScenarioSpec

#: Execution modes of :func:`run_campaign`.
MODES = ("serial", "process")

#: Cells probed against the cache (and dispatched to the pool) at a time
#: when a cache is attached — bounds the rows held in flight regardless
#: of grid size.
CACHE_CHUNK = 256


def execute_spec(task: Tuple[int, ScenarioSpec]) -> Dict[str, Any]:
    """Run one indexed spec; never raises for scenario-level failures.

    This is the single code path both executor modes use (and the unit a
    worker process receives).  A raising scenario is converted into a
    ``status="failed"`` row that still self-describes its spec, so one
    bad grid point cannot take down a sweep.

    ``task`` is ``(index, spec)`` or ``(index, spec, stall_window)`` —
    the third element arms the runner's stall watchdog (see
    :func:`repro.workloads.runner.run_scenario`).  A watchdog-detected
    stall becomes a ``status="failed"`` row with ``error="stall"`` plus
    a ``stall`` payload carrying the wait-reason histogram: the cell
    fails fast and descriptive instead of burning its whole budget.
    """
    index, spec = task[0], task[1]
    stall_window = task[2] if len(task) > 2 else None
    try:
        row = run_scenario(spec, stall_window=stall_window).to_row()
    except StallError as exc:
        row = {
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "status": "failed",
            "error": "stall",
            "stall": exc.to_triage(),
            "triage": triage_record(spec),
            "spec": spec.to_json(),
        }
    except Exception as exc:  # noqa: BLE001 — isolation is the contract
        row = {
            "name": spec.name,
            "spec_hash": spec.spec_hash(),
            "status": "failed",
            "error": repr(exc),
            "traceback": traceback.format_exc(),
            # Everything a replay needs, greppable from the log alone:
            # spec hash, seed, backend, fault plan hash.
            "triage": triage_record(spec),
            "spec": spec.to_json(),
        }
    row["index"] = index
    return row


def _timeout_row(index: int, spec: ScenarioSpec, budget: float) -> Dict[str, Any]:
    """The failed row of a cell whose worker blew the per-cell budget."""
    return {
        "name": spec.name,
        "spec_hash": spec.spec_hash(),
        "status": "failed",
        "error": "timeout",
        "timeout": budget,
        "triage": triage_record(spec),
        "spec": spec.to_json(),
        "index": index,
    }


def iter_campaign_rows(
    specs: Sequence[ScenarioSpec],
    *,
    workers: int = 1,
    mp_context: Optional[object] = None,
    stall_window: Optional[int] = None,
    cell_timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Stream result rows in spec order.

    With ``workers <= 1`` the specs run serially in-process; otherwise a
    process pool executes them while this generator yields whatever is
    ready, still in submission order.  ``stall_window`` and
    ``cell_timeout`` are the liveness backstops (see
    :func:`run_campaign`).
    """
    return _iter_cell_rows(
        list(enumerate(specs)),
        workers=workers,
        mp_context=mp_context,
        stall_window=stall_window,
        cell_timeout=cell_timeout,
    )


def _timed_pool_rows(
    pool: ProcessPoolExecutor,
    batch: Sequence[Tuple[int, ScenarioSpec]],
    tasks: Sequence[Tuple],
    budget: float,
    timed_out: List[bool],
) -> Iterator[Dict[str, Any]]:
    """Pool execution with a per-cell wall-clock budget.

    Futures are submitted up front and drained in cell order; a cell
    whose result is not available ``budget`` seconds after we start
    waiting on it yields a ``status="failed"`` row with
    ``error="timeout"`` and the sweep moves on.  The stuck worker cannot
    be killed without tearing down the whole pool, so it is left to
    finish (or linger) in the background and the pool is shut down
    without waiting at the end — the *sweep* never hangs, which is the
    contract.  Timeout rows are never cached (the cache refuses non-OK
    rows), so a rerun retries the cell.
    """
    futures = [pool.submit(execute_spec, task) for task in tasks]
    for (index, spec), future in zip(batch, futures):
        try:
            yield future.result(timeout=budget)
        except FutureTimeoutError:
            timed_out[0] = True
            yield _timeout_row(index, spec, budget)


def _iter_cell_rows(
    cells: Sequence[Tuple[int, ScenarioSpec]],
    *,
    workers: int = 1,
    mp_context: Optional[object] = None,
    cache: Optional[CampaignCache] = None,
    counters: Optional[Dict[str, int]] = None,
    stall_window: Optional[int] = None,
    cell_timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Stream rows for ``(global index, spec)`` cells, in cell order.

    The cache-aware path works in bounded chunks: probe the cache for
    :data:`CACHE_CHUNK` cells, dispatch only the misses (serially or to
    the pool), then merge hits and fresh rows back into cell order —
    at no point does the generator hold more than a chunk of rows, so
    warm sweeps of arbitrarily large grids stay O(1) memory.  Executed
    rows are stored back into the cache as they stream out.
    """
    counters = counters if counters is not None else {}
    counters.setdefault("executed", 0)
    counters.setdefault("cached", 0)
    tasks = list(cells)
    pool: Optional[ProcessPoolExecutor] = None
    timed_out = [False]
    try:
        if workers > 1:
            pool = ProcessPoolExecutor(max_workers=workers, mp_context=mp_context)

        def run_batch(batch: List[Tuple[int, ScenarioSpec]]) -> Iterator[Dict[str, Any]]:
            if not batch:
                return iter(())
            units: List[Tuple] = (
                [(index, spec, stall_window) for index, spec in batch]
                if stall_window is not None
                else list(batch)
            )
            if pool is None:
                return map(execute_spec, units)
            if cell_timeout is not None:
                return _timed_pool_rows(
                    pool, batch, units, cell_timeout, timed_out
                )
            chunksize = max(1, len(batch) // (workers * 4))
            return pool.map(execute_spec, units, chunksize=chunksize)

        if cache is None:
            for row in run_batch(tasks):
                counters["executed"] += 1
                yield row
            return

        for base in range(0, len(tasks), CACHE_CHUNK):
            chunk = tasks[base : base + CACHE_CHUNK]
            probes = [(index, spec, cache.get(spec)) for index, spec in chunk]
            fresh = run_batch(
                [(index, spec) for index, spec, hit in probes if hit is None]
            )
            for index, spec, hit in probes:
                if hit is None:
                    row = next(fresh)
                    cache.put(spec, row)
                    counters["executed"] += 1
                else:
                    row = dict(hit)
                    row["index"] = index
                    counters["cached"] += 1
                yield row
    finally:
        if pool is not None:
            # After a per-cell timeout a worker may still be grinding on
            # the stuck cell; waiting on it would turn a contained cell
            # failure back into a hung sweep.
            if timed_out[0]:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown()


def run_campaign(
    campaign: Union[Campaign, Sequence[ScenarioSpec]],
    *,
    workers: int = 1,
    mode: Optional[str] = None,
    mp_context: Optional[object] = None,
    on_row: Optional[Callable[[Dict[str, Any]], None]] = None,
    cache: Optional[Union[CampaignCache, str]] = None,
    out_dir: Optional[str] = None,
    resume: bool = False,
    keep_rows: Optional[bool] = None,
    shard: Optional[Tuple[int, int]] = None,
    stall_window: Optional[int] = None,
    cell_timeout: Optional[float] = None,
) -> CampaignReport:
    """Execute a campaign (or a bare spec list) and aggregate the rows.

    Args:
        campaign: a :class:`Campaign` grid, or an already-expanded
            sequence of :class:`ScenarioSpec` values.
        workers: worker processes for ``mode="process"``.
        mode: ``"serial"`` or ``"process"``; default is serial for
            ``workers <= 1`` and a process pool otherwise.  Asking for
            ``mode="serial"`` *and* ``workers > 1`` is a contradiction
            and raises :class:`ValueError` — silently running serial
            would mask a misconfigured sweep.
        mp_context: optional :mod:`multiprocessing` context (e.g.
            ``multiprocessing.get_context("spawn")``) for the pool.
        on_row: optional callback invoked with each row as it streams
            in (progress reporting).  Also sees resumed rows.
        cache: a :class:`repro.campaign.cache.CampaignCache` (or a
            directory path) — cells with a stored ``ok`` row replay it
            byte-identically instead of executing; fresh rows are
            stored back.  ``failed`` rows are never cache-hit.
        out_dir: stream the artifacts while running: ``manifest.json``
            up front, then each row appended (and flushed) to
            ``results.jsonl`` as it arrives, so the sweep never holds
            its rows and an interrupt loses at most one torn line.
        resume: continue a partial ``results.jsonl`` in ``out_dir``:
            its valid row prefix is kept (fed to the aggregator, not
            re-executed) and execution picks up at the first missing
            cell.  Requires ``out_dir``.
        keep_rows: retain rows on the returned report.  Defaults to
            ``True`` for in-memory sweeps and ``False`` when streaming
            to ``out_dir`` (the artifact holds them; keeping both would
            defeat the O(1)-memory point, but small sweeps may opt in).
        shard: ``(shard index, shard count)`` — execute only this
            sweep's hash-prefix shard of the grid (see
            :func:`repro.campaign.cache.shard_cells`).  Rows keep their
            global grid indices.
        stall_window: arm the runner's stall watchdog for every cell —
            a cell making no progress for this many rounds past its
            settle horizon fails fast as a ``status="failed"`` row with
            ``error="stall"`` and a wait-reason histogram, instead of
            burning its whole round budget.
        cell_timeout: per-cell wall-clock budget in seconds
            (``mode="process"`` only): a cell whose worker blows the
            budget becomes a ``status="failed"`` row with
            ``error="timeout"`` and the sweep continues.  Timeout rows
            are never cached, so reruns and resumes retry the cell —
            cache/resume semantics are otherwise unchanged.

    Returns:
        a :class:`CampaignReport` whose rows are in spec order and
        whose aggregate summary is independent of ``workers``.
    """
    if isinstance(campaign, Campaign):
        name = campaign.name
        campaign_hash = campaign.campaign_hash()
        specs = campaign.specs()
    else:
        specs = tuple(campaign)
        name = "adhoc"
        campaign_hash = ""
    if mode is None:
        mode = "process" if workers > 1 else "serial"
    if mode not in MODES:
        raise ValueError(f"unknown campaign mode {mode!r}; pick from {MODES}")
    if mode == "serial" and workers > 1:
        raise ValueError(
            f"mode='serial' contradicts workers={workers}: a serial sweep "
            f"runs in-process on one worker — drop the workers argument or "
            f"ask for mode='process'"
        )
    if resume and out_dir is None:
        raise ValueError("resume=True needs an out_dir holding the partial "
                         "results.jsonl")
    if cell_timeout is not None and mode != "process":
        raise ValueError(
            "cell_timeout needs mode='process': an in-process sweep cannot "
            "preempt its own cell — arm stall_window instead"
        )
    effective_workers = workers if mode == "process" else 1
    cache_obj = ensure_cache(cache)
    if keep_rows is None:
        keep_rows = out_dir is None

    cells: List[Tuple[int, ScenarioSpec]] = list(enumerate(specs))
    if shard is not None:
        shard_index, shard_count = shard
        cells = shard_cells(cells, shard_count, shard_index)
    expected = [index for index, _ in cells]

    aggregator = SweepAggregator()
    rows: List[Dict[str, Any]] = []

    def consume(row: Dict[str, Any]) -> None:
        aggregator.add(row)
        if keep_rows:
            rows.append(row)
        if on_row is not None:
            on_row(row)

    writer: Optional[ResultsWriter] = None
    resumed = 0
    complete = False
    started = time.perf_counter()
    if out_dir is not None:
        os.makedirs(out_dir, exist_ok=True)
        write_manifest(
            os.path.join(out_dir, "manifest.json"),
            name=name,
            campaign_hash=campaign_hash,
            specs=specs,
        )
        results_path = os.path.join(out_dir, "results.jsonl")
        writer = ResultsWriter(
            results_path,
            name=name,
            campaign_hash=campaign_hash,
            scenarios=len(cells) if shard is not None else len(specs),
            shard=shard,
        )
        if resume and os.path.exists(results_path):
            scan = scan_partial_results(
                results_path,
                campaign_hash=campaign_hash,
                scenarios=len(cells) if shard is not None else len(specs),
                expected=expected,
                consume=consume,
            )
            resumed, complete = scan.rows, scan.complete
            if complete:
                writer = None
            elif scan.offset > 0:
                writer.resume_at(scan.offset)
            else:
                writer.start()
        else:
            writer.start()

    counters: Dict[str, int] = {"executed": 0, "cached": 0}
    try:
        if not complete:
            for row in _iter_cell_rows(
                cells[resumed:],
                workers=effective_workers,
                mp_context=mp_context,
                cache=cache_obj,
                counters=counters,
                stall_window=stall_window,
                cell_timeout=cell_timeout,
            ):
                consume(row)
                if writer is not None:
                    writer.append(row)
            if writer is not None:
                writer.finish(aggregator.summary())
                writer = None
    finally:
        if writer is not None:
            writer.close()
    elapsed = time.perf_counter() - started

    return CampaignReport(
        name=name,
        campaign_hash=campaign_hash,
        specs=specs,
        rows=tuple(rows),
        summary=aggregator.summary(),
        mode=mode,
        workers=effective_workers,
        elapsed=elapsed,
        executed=counters["executed"],
        cached=counters["cached"],
        resumed=resumed,
        shard=shard,
        cell_count=len(cells) if shard is not None else None,
        streamed=out_dir is not None,
    )
