"""Algorithm 5: emulating ``Omega_{g∩h}`` from a strongly genuine
multicast black box (§6.2, Appendix B) — a CHT-style extraction.

The construction follows the four procedures of Algorithm 5:

* **Sample** — processes collaboratively sample the underlying failure
  detector into a growing DAG.  Here the DAG's load-bearing content is
  *which processes keep appearing in fresh samples*: crashed processes
  stop, so sufficiently recent samples mention only correct processes.

* **Simulate** — schedules compatible with DAG paths induce simulated
  runs of the algorithm ``A`` from the initial configurations ``I`` in
  which each member of ``g ∩ h`` multicasts one message, to either ``g``
  or ``h`` (everyone else stays silent).  A simulated step schedules one
  process; a member's first step also enacts its configured multicast —
  so two configurations differing at ``q`` stay indistinguishable until
  ``q`` takes a step, exactly the CHT adjacency notion.

* **Tag** — a schedule is tagged ``g`` (resp. ``h``) when in some
  explored extension a member of ``g ∩ h`` delivers first a message
  addressed to ``g`` (resp. ``h``).  One tag = univalent, two = bivalent.

* **Extract** — an adjacent pair of configurations with opposite
  univalencies pins its differing process as correct (Proposition 71);
  otherwise a bivalent configuration contains a decision boundary — a
  bivalent schedule with differently-valent extensions — whose deciding
  member of ``g ∩ h`` is correct (Propositions 72–75).  Failing both,
  the process returns itself.

Simulated runs execute against a fresh deployment under the strongly
genuine (§6.2 isolation) configuration with participation restricted to
the scheduled processes, so silent processes cannot lend quorums — the
property all the valency arguments hinge on.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.detectors.base import BOTTOM, FailureDetector
from repro.groups.topology import Group, GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time, failure_free
from repro.model.processes import ProcessId, ProcessSet, pset
from repro.runtime import Scheduler, SystemActor

#: A configuration: per member of g∩h (sorted), the group it multicasts to.
Config = Tuple[str, ...]

#: A simulated schedule: the sequence of scheduled process ids.
Schedule = Tuple[ProcessId, ...]


class OmegaExtraction(FailureDetector):
    """The emulated ``Omega_{g∩h}`` (Algorithm 5).

    Attributes:
        g, h: the two intersecting groups.
        scope: ``g ∩ h`` — where a leader is elected.
        max_depth: simulation-tree exploration depth.
    """

    kind = "Omega(emulated)"

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        g_name: str,
        h_name: str,
        seed: int = 0,
        max_depth: int = 6,
    ) -> None:
        super().__init__()
        self.topology = topology
        self.pattern = pattern
        self.g = topology.group(g_name)
        self.h = topology.group(h_name)
        self.scope: ProcessSet = self.g.intersection(self.h)
        if not self.scope:
            raise DetectorError("the two groups must intersect")
        self.members: Tuple[ProcessId, ...] = tuple(sorted(self.scope))
        self.actors: Tuple[ProcessId, ...] = tuple(
            sorted(self.g.members | self.h.members)
        )
        self.seed = seed
        self.max_depth = max_depth
        self.tracer = TraceRecorder()
        self._scheduler = Scheduler(
            {"omega-extraction": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )
        #: Sample counts per process (the DAG's occurrence record).
        self._samples: Dict[ProcessId, int] = {p: 0 for p in self.actors}
        #: Sample counts as of two rounds ago, to detect stalling.
        self._history_marks: List[Dict[ProcessId, int]] = []
        #: Simulation memo: (alive_view, config, schedule) -> outcome.
        self._outcome_memo: Dict[Tuple, Optional[str]] = {}
        #: The configurations J_0 .. J_v of Proposition 70.
        self.configs: Tuple[Config, ...] = tuple(
            tuple("h" if j < i else "g" for j in range(len(self.members)))
            for i in range(len(self.members) + 1)
        )

    # -- Sample -----------------------------------------------------------------

    @property
    def time(self) -> Time:
        return self._scheduler.time

    def tick(self) -> None:
        """One collaborative sampling round (the *Sample* procedure)."""
        self._scheduler.round()

    def _advance(self, t: Time) -> int:
        marks = dict(self._samples)
        for p in self.actors:
            if self.pattern.is_alive(p, t):
                self._samples[p] += 1
        self._history_marks.append(marks)
        if len(self._history_marks) > 3:
            self._history_marks.pop(0)
        return 1

    def run(self, rounds: int) -> None:
        """Advance exactly ``rounds`` sampling rounds (fixed budget)."""
        self._scheduler.run(rounds, halt_on_quiescence=False)

    def _alive_view(self) -> FrozenSet[ProcessId]:
        """Processes whose samples are still growing.

        Eventually this is exactly the correct processes: crashed ones
        stop producing DAG vertices (Proposition 60's fairness).
        """
        if not self._history_marks:
            return frozenset(self.actors)
        reference = self._history_marks[0]
        return frozenset(
            p
            for p in self.actors
            if self._samples[p] > reference.get(p, 0)
        )

    # -- Simulate ------------------------------------------------------------------

    def _simulate(self, config: Config, schedule: Schedule) -> Optional[str]:
        """Run ``schedule`` from configuration ``config``.

        Returns ``"g"``/``"h"`` when some member of ``g∩h`` has delivered
        a message in the resulting configuration (the destination group
        of the globally first such delivery), else ``None``.
        """
        view = self._alive_view()
        key = (view, config, schedule)
        if key in self._outcome_memo:
            return self._outcome_memo[key]
        system = MulticastSystem(
            self.topology,
            failure_free(self.topology.processes),
            isolation=True,
            seed=self.seed,
        )
        multicaster = AtomicMulticast(system)
        enacted: Set[ProcessId] = set()
        outcome: Optional[str] = None
        #: Every process named by the schedule serves quorums throughout —
        #: in CHT terms, the schedule's processes take the receive steps
        #: that complete the scheduled process's operations.
        responders = pset(schedule)
        for q in schedule:
            if q in self.scope and q not in enacted:
                enacted.add(q)
                target = config[self.members.index(q)]
                group_name = self.g.name if target == "g" else self.h.name
                multicaster.multicast(q, group_name, payload="probe")
            system.tick(participation=pset({q}), responders=responders)
            for event in system.record.deliveries:
                if event.process in self.scope:
                    delivered_to = event.message.dst
                    outcome = (
                        "g" if delivered_to == self.g.members else "h"
                    )
                    break
            if outcome:
                break
        self._outcome_memo[key] = outcome
        return outcome

    # -- Tag ----------------------------------------------------------------------------

    def _tags(
        self, config: Config, schedule: Schedule, depth: int
    ) -> FrozenSet[str]:
        """The valency tags of ``schedule`` in the tree of ``config``."""
        outcome = self._simulate(config, schedule)
        if outcome is not None:
            return frozenset((outcome,))
        if depth <= 0:
            return frozenset()
        tags: Set[str] = set()
        for q in sorted(self._alive_view()):
            tags |= self._tags(config, schedule + (q,), depth - 1)
            if len(tags) == 2:
                break
        return frozenset(tags)

    def root_valency(self, config: Config) -> FrozenSet[str]:
        return self._tags(config, (), self.max_depth)

    # -- Extract -------------------------------------------------------------------------

    def _univalent_critical(self) -> Optional[ProcessId]:
        """Adjacent configurations with opposite univalencies (line 37)."""
        valencies = [self.root_valency(c) for c in self.configs]
        for i in range(len(self.configs) - 1):
            a, b = valencies[i], valencies[i + 1]
            if a == frozenset(("g",)) and b == frozenset(("h",)):
                # J_i and J_{i+1} differ exactly at member i.
                return self.members[i]
            if a == frozenset(("h",)) and b == frozenset(("g",)):
                return self.members[i]
        return None

    def _decision_boundary(
        self, config: Config, schedule: Schedule, depth: int
    ) -> Optional[ProcessId]:
        """A bivalent schedule whose extensions decide differently.

        Returns the deciding process (preferring members of ``g∩h``),
        mirroring the decision gadgets of Appendix B.
        """
        extensions: Dict[ProcessId, FrozenSet[str]] = {}
        for q in sorted(self._alive_view()):
            extensions[q] = self._tags(config, schedule + (q,), depth - 1)
        deciders_g = [q for q, t in extensions.items() if t == frozenset(("g",))]
        deciders_h = [q for q, t in extensions.items() if t == frozenset(("h",))]
        if deciders_g and deciders_h:
            in_scope = [
                q for q in deciders_g + deciders_h if q in self.scope
            ]
            return in_scope[0] if in_scope else None
        if depth <= 1:
            return None
        for q, tags in extensions.items():
            if len(tags) == 2:  # descend along a bivalent child
                found = self._decision_boundary(
                    config, schedule + (q,), depth - 1
                )
                if found is not None:
                    return found
        return None

    def query(self, p: ProcessId, t: Time) -> object:
        """The *Extract* procedure (lines 36-44)."""
        if p not in self.scope:
            return BOTTOM
        critical = self._univalent_critical()
        if critical is not None:
            return critical
        for config in self.configs:
            if len(self.root_valency(config)) == 2:
                decider = self._decision_boundary(
                    config, (), self.max_depth
                )
                if decider is not None and decider in self.scope:
                    return decider
        return p  # line 44
