"""The ranking function of Bonnet & Raynal [6], used by Algorithm 2.

Processes keep track of each other by exchanging (asynchronous) "alive"
messages; the rank of a process at an observer is the number of alive
messages received so far, and the rank of a set is the lowest rank among
its members.  The key property: a set's rank grows forever iff all its
members are correct.

In the simulation the alive traffic is one heartbeat per live process per
round, which realizes exactly that property.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable

from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet


class HeartbeatRanking:
    """Rank bookkeeping shared by the extraction algorithms.

    Attributes:
        pattern: the run's failure pattern (drives who still beats).
    """

    def __init__(self, pattern: FailurePattern) -> None:
        self.pattern = pattern
        self._beats: Dict[ProcessId, int] = {
            p: 0 for p in pattern.processes
        }

    def advance(self, t: Time) -> None:
        """One round: every process alive at ``t`` emits a heartbeat."""
        for p in self.pattern.processes:
            if self.pattern.is_alive(p, t):
                self._beats[p] += 1

    def rank(self, member_set: Iterable[ProcessId]) -> int:
        """``rank(x)``: the lowest member rank (0 for the empty set)."""
        ranks = [self._beats[p] for p in member_set]
        return min(ranks) if ranks else 0

    def rank_of(self, p: ProcessId) -> int:
        return self._beats[p]
