"""Algorithm 4: emulating ``1^{g∩h}`` from strict atomic multicast (§6.1).

Processes of ``g \\ h`` run an instance ``A_g`` of the *strict* algorithm
among themselves (and symmetrically ``h \\ g`` run ``A_h``): each
multicasts its identity to its group and waits for a delivery.  Because
the algorithm is strict and genuine, a delivery can only happen once the
silent intersection ``g ∩ h`` is entirely crashed — otherwise the sub-run
could be extended with a fresh message ordered inconsistently with real
time (Proposition 53's gluing argument).  A process that observes a
delivery broadcasts ``failed`` to ``g ∪ h``.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.detectors.base import FailureDetector
from repro.groups.topology import Group, GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset
from repro.runtime import Scheduler, SystemActor


class IndicatorExtraction(FailureDetector):
    """The emulated ``1^{g∩h}`` (Algorithm 4).

    Attributes:
        g, h: the two intersecting destination groups.
        watched: ``g ∩ h``, the set whose collective death is reported.
    """

    kind = "1(emulated)"

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        g_name: str,
        h_name: str,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.topology = topology
        self.pattern = pattern
        self.g = topology.group(g_name)
        self.h = topology.group(h_name)
        self.watched: ProcessSet = self.g.intersection(self.h)
        if not self.watched:
            raise DetectorError("the two groups must intersect")
        self.tracer = TraceRecorder()
        self._scheduler = Scheduler(
            {"indicator-extraction": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )
        #: line 2: B = A_g at g \ h, A_h at h \ g, bottom inside g ∩ h.
        self._sides: List[Tuple[Group, ProcessSet, MulticastSystem, AtomicMulticast]] = []
        for group, other in ((self.g, self.h), (self.h, self.g)):
            participants = pset(group.members - other.members)
            system = MulticastSystem(
                topology, pattern, variant="strict", seed=seed
            )
            seed += 1
            self._sides.append(
                (group, participants, system, AtomicMulticast(system))
            )
        self._started = False
        #: Per-process failed flag (line 3).
        self._failed: Dict[ProcessId, bool] = {
            p: False for p in topology.processes
        }
        #: Failed broadcasts in flight: (deliver_at, recipient).
        self._in_flight: List[Tuple[Time, ProcessId]] = []

    def _start(self) -> None:
        """Lines 4-5: each side multicasts the members' identities."""
        for group, participants, system, multicaster in self._sides:
            for p in sorted(participants):
                if system.is_alive(p):
                    multicaster.multicast(p, group.name, payload=p)
        self._started = True

    @property
    def time(self) -> Time:
        return self._scheduler.time

    def tick(self) -> None:
        """One round: both side instances advance; flags propagate."""
        self._scheduler.round()

    def _advance(self, t: Time) -> int:
        if not self._started:
            self._start()
        still_flying = []
        for due, recipient in self._in_flight:
            if due > t:
                still_flying.append((due, recipient))
            elif self.pattern.is_alive(recipient, t):
                self._failed[recipient] = True
        self._in_flight = still_flying
        everyone = pset(self.g.members | self.h.members)
        for group, participants, system, multicaster in self._sides:
            system.tick(participation=participants)
            for p in participants:
                if system.record.local_order(p) and not self._failed[p]:
                    # line 6-7: delivery observed -> send failed to g ∪ h.
                    self._failed[p] = True
                    for q in everyone:
                        self._in_flight.append((t + 1, q))
        return 1

    def run(self, rounds: int) -> None:
        """Advance exactly ``rounds`` global rounds (fixed budget)."""
        self._scheduler.run(rounds, halt_on_quiescence=False)

    def query(self, p: ProcessId, t: Time) -> bool:
        """Lines 10-11: the local failed flag."""
        return self._failed[p]
