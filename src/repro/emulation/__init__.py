"""Necessity constructions: extracting the components of mu from a
multicast black box (Algorithms 2-5, §5 and §6)."""

from repro.emulation.gamma_extraction import GammaExtraction
from repro.emulation.heartbeats import HeartbeatRanking
from repro.emulation.indicator_extraction import IndicatorExtraction
from repro.emulation.omega_extraction import OmegaExtraction
from repro.emulation.sigma_extraction import SigmaExtraction

__all__ = [
    "GammaExtraction",
    "HeartbeatRanking",
    "IndicatorExtraction",
    "OmegaExtraction",
    "SigmaExtraction",
]
