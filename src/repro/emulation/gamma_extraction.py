"""Algorithm 3: emulating ``gamma`` from a multicast black box (§5.2).

For every cyclic family ``f`` and closed path ``π ∈ cpaths(f)``, the
construction runs an instance ``A_π`` of the multicast algorithm in which
the processes of the *wrap edge* ``π[0] ∩ π[|π|-2]`` do **not**
participate.  The processes of ``π[0] ∩ π[1]`` multicast their identity to
``π[0]``; since the algorithm is genuine, the message can only be
delivered once the wrap edge is dead (its members could otherwise hold
concurrent messages whose order the deliverer must respect).  Each
delivery is relayed one edge further along the path (the *chain*), and
observers raise ``failed[π]`` when

* the chain reaches the antepenultimate group (message ``(π, |π|-3)``), or
* chains of two equivalent, opposite-direction paths have both started
  (two wrap edges of the same cycle are dead).

``query`` then returns the families of ``F(p)`` for which some cycle
(equivalence class of paths) has no failed path — the literal line 16.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.detectors.base import FailureDetector
from repro.groups.families import (
    ClosedPath,
    cpaths,
    path_direction,
    path_edges,
)
from repro.groups.topology import Group, GroupFamily, GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset
from repro.runtime import Scheduler, SystemActor


class _PathInstance:
    """The per-path state: instance ``A_π`` plus the chain bookkeeping."""

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        family: GroupFamily,
        path: ClosedPath,
        seed: int,
    ) -> None:
        self.family = family
        self.path = path
        self.groups = path[:-1]
        self.k = len(self.groups)
        wrap = path[0].intersection(path[self.k - 1])
        members: Set[ProcessId] = set()
        for g in family:
            members |= set(g.members)
        #: line 2: everyone in the family except the wrap edge.
        self.participants: ProcessSet = pset(members - wrap)
        self.system = MulticastSystem(topology, pattern, seed=seed)
        self.multicaster = AtomicMulticast(self.system)
        self._started = False
        #: Stages whose relay multicast was already issued per process.
        self._relayed: Set[Tuple[ProcessId, int]] = set()
        #: Delivered stages observed per process (for the signal action).
        self._signalled: Set[Tuple[ProcessId, int]] = set()

    def start(self) -> None:
        """Lines 4-5: the first intersection multicasts stage 0."""
        starters = self.path[0].intersection(self.path[1])
        for p in sorted(starters & self.participants):
            if self.system.is_alive(p):
                self.multicaster.multicast(
                    p, self.path[0].name, payload=("chain", 0)
                )
        self._started = True

    def tick(self) -> int:
        """Advance the instance one round; return new signals.

        A *signal* is a pair ``(p, i)``: process ``p`` observed the
        delivery of stage ``i`` and belongs to ``π[i+1]`` (line 8).
        """
        if not self._started:
            self.start()
        self.system.tick(participation=self.participants)
        signals: List[Tuple[ProcessId, int]] = []
        for p in sorted(self.participants):
            for message in self.system.record.local_order(p):
                payload = message.payload
                if not (isinstance(payload, tuple) and payload[0] == "chain"):
                    continue
                stage = payload[1]
                if stage >= self.k - 1:  # line 8: i < |π| - 2
                    continue
                next_group = self.groups[stage + 1]
                if p not in next_group:
                    continue
                key = (p, stage)
                if key in self._signalled:
                    continue
                self._signalled.add(key)
                signals.append(key)
                relay = (p, stage + 1)
                if relay not in self._relayed and self.system.is_alive(p):
                    self._relayed.add(relay)
                    # line 10: A_π.multicast(p, i+1) to π[i+1].
                    self.multicaster.multicast(
                        p, next_group.name, payload=("chain", stage + 1)
                    )
        return signals


class GammaExtraction(FailureDetector):
    """The emulated cyclicity detector (Algorithm 3).

    Notifications ``send(π, i) to f`` are modelled as reliable broadcasts
    delivered one round later to the live members of the family.
    """

    kind = "gamma(emulated)"

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.topology = topology
        self.pattern = pattern
        self.tracer = TraceRecorder()
        self._scheduler = Scheduler(
            {"gamma-extraction": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )
        self._instances: Dict[ClosedPath, _PathInstance] = {}
        self._family_of: Dict[ClosedPath, GroupFamily] = {}
        for family in topology.cyclic_families():
            for path in cpaths(family):
                self._instances[path] = _PathInstance(
                    topology, pattern, family, path,
                    seed=seed + len(self._instances),
                )
                self._family_of[path] = family
        #: Per-process received notifications: path -> stages seen.
        self._received: Dict[ProcessId, Dict[ClosedPath, Set[int]]] = {
            p: {} for p in topology.processes
        }
        #: Broadcast queue: (deliver_at, recipients, path, stage).
        self._in_flight: List[Tuple[Time, ProcessSet, ClosedPath, int]] = []

    # -- Execution ----------------------------------------------------------------

    @property
    def time(self) -> Time:
        return self._scheduler.time

    def tick(self) -> None:
        """One global round: instances advance, notifications travel."""
        self._scheduler.round()

    def _advance(self, t: Time) -> int:
        # Deliver due notifications to live recipients.
        still_flying = []
        for due, recipients, path, stage in self._in_flight:
            if due > t:
                still_flying.append((due, recipients, path, stage))
                continue
            for q in recipients:
                if self.pattern.is_alive(q, t):
                    self._received[q].setdefault(path, set()).add(stage)
        self._in_flight = still_flying
        # Advance the instances; collect fresh signals (line 9 sends).
        for path, instance in self._instances.items():
            for p, stage in instance.tick():
                members: Set[ProcessId] = set()
                for g in instance.family:
                    members |= set(g.members)
                self._in_flight.append(
                    (t + 1, pset(members), path, stage)
                )
        return 1

    def run(self, rounds: int) -> None:
        """Advance exactly ``rounds`` global rounds (fixed budget)."""
        self._scheduler.run(rounds, halt_on_quiescence=False)

    # -- The update rule (lines 11-13) ------------------------------------------------

    def _path_failed(self, p: ProcessId, path: ClosedPath) -> bool:
        inbox = self._received[p]
        stages = inbox.get(path, set())
        k = len(path) - 1
        if (k - 2) in stages:  # received (π, |π|-3): full chain
            return True
        if stages:
            # A chain on π started; if an equivalent converse-direction
            # chain also started, two wrap edges of the cycle are dead.
            for other, other_stages in inbox.items():
                if other == path or not other_stages:
                    continue
                if self._family_of[other] != self._family_of[path]:
                    continue
                if path_edges(other) != path_edges(path):
                    continue
                if path_direction(other) != path_direction(path):
                    return True
        return False

    def full_chain_received(self, p: ProcessId) -> bool:
        """Whether some path's complete chain (stage ``|π|-3``) reached
        ``p`` — the paper's primary detection mechanism, whose latency is
        one multicast hop per cycle edge (used by the E6 benchmark)."""
        inbox = self._received[p]
        for path, stages in inbox.items():
            if (len(path) - 1 - 2) in stages:
                return True
        return False

    # -- The emulated detector (lines 15-16) -------------------------------------------

    def query(self, p: ProcessId, t: Time) -> FrozenSet[GroupFamily]:
        alive: Set[GroupFamily] = set()
        for family in self.topology.families_of_process(p):
            classes: Dict[FrozenSet, List[ClosedPath]] = {}
            for path in cpaths(family):
                classes.setdefault(path_edges(path), []).append(path)
            for paths in classes.values():
                if not any(self._path_failed(p, path) for path in paths):
                    alive.add(family)
                    break
        return frozenset(alive)
