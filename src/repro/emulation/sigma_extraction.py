"""Algorithm 2: emulating ``Sigma_{∩G}`` from a multicast black box (§5.1).

For a set ``G`` of at most two intersecting destination groups, each
process ``p`` runs, for every group ``g ∈ G`` and every subset ``x ⊆ g``
containing ``p``, an instance ``A_{g,x}`` of the multicast algorithm in
which only the processes of ``x`` participate.  Every participant
multicasts its identity; a subset becomes *responsive* at ``p`` when its
instance delivers some identity at ``p``.  The emulated quorum is the most
responsive subset per group (by the heartbeat ranking), intersected with
``∩G``.

Responsiveness is meaningful because of quorum gating: an instance whose
participants cannot muster the ``Sigma`` quorums of the objects involved
never delivers — exactly the sub-run indistinguishability that Theorem 49
glues into an ordering violation if two disjoint responsive sets existed.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.engine import MulticastSystem
from repro.core.group_sequential import AtomicMulticast
from repro.detectors.base import BOTTOM, FailureDetector
from repro.emulation.heartbeats import HeartbeatRanking
from repro.groups.topology import Group, GroupTopology
from repro.metrics.trace import TraceRecorder
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset
from repro.runtime import Scheduler, SystemActor


class _Instance:
    """One instance ``A_{g,x}``: a full deployment restricted to ``x``."""

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        group: Group,
        participants: ProcessSet,
        seed: int,
    ) -> None:
        self.group = group
        self.participants = participants
        self.system = MulticastSystem(topology, pattern, seed=seed)
        self.multicaster = AtomicMulticast(self.system)
        self._started = False

    def start(self) -> None:
        """Line 5-7: every participant multicasts its identity."""
        for p in sorted(self.participants):
            if self.system.is_alive(p):
                self.multicaster.multicast(p, self.group.name, payload=p)
        self._started = True

    def tick(self) -> None:
        if not self._started:
            self.start()
        self.system.tick(participation=self.participants)

    def delivered_at(self, p: ProcessId) -> bool:
        """Whether ``A_{g,x}`` delivered some identity at ``p``."""
        return bool(self.system.record.local_order(p))


class SigmaExtraction(FailureDetector):
    """The emulated ``Sigma_{∩_{g∈G} g}`` (Algorithm 2).

    Attributes:
        topology: the destination groups of the underlying problem.
        groups: the one or two intersecting groups forming ``G``.
        scope: ``∩_{g∈G} g`` — the emulated detector's process set.
    """

    kind = "Sigma(emulated)"

    def __init__(
        self,
        topology: GroupTopology,
        pattern: FailurePattern,
        group_names: Sequence[str],
        seed: int = 0,
        max_subset_size: Optional[int] = None,
    ) -> None:
        super().__init__()
        if not 1 <= len(group_names) <= 2:
            raise DetectorError("Algorithm 2 takes one or two groups")
        self.topology = topology
        self.pattern = pattern
        self.groups: Tuple[Group, ...] = tuple(
            topology.group(name) for name in group_names
        )
        scope = self.groups[0].members
        for g in self.groups[1:]:
            scope = scope & g.members
        if not scope:
            raise DetectorError("the groups of G must intersect")
        self.scope: ProcessSet = pset(scope)
        self.ranking = HeartbeatRanking(pattern)
        self.tracer = TraceRecorder()
        self._scheduler = Scheduler(
            {"sigma-extraction": SystemActor(self._advance)},
            rng=random.Random(seed),
            tracer=self.tracer,
            is_alive=lambda _key, _t: True,
            scheduling="scan",
        )
        #: All instances A_{g,x}, keyed by (group, participant set).
        self._instances: Dict[Tuple[Group, ProcessSet], _Instance] = {}
        for g in self.groups:
            members = sorted(g.members)
            limit = max_subset_size or len(members)
            for size in range(1, min(limit, len(members)) + 1):
                for combo in itertools.combinations(members, size):
                    x = pset(combo)
                    self._instances[(g, x)] = _Instance(
                        topology, pattern, g, x, seed=seed + len(self._instances)
                    )

    # -- Execution -------------------------------------------------------------

    @property
    def time(self) -> Time:
        return self._scheduler.time

    def tick(self) -> None:
        """One global round: every instance advances, heartbeats beat."""
        self._scheduler.round()

    def _advance(self, t: Time) -> int:
        self.ranking.advance(t)
        for instance in self._instances.values():
            instance.tick()
        return 1

    def run(self, rounds: int) -> None:
        """Advance exactly ``rounds`` global rounds (fixed budget)."""
        self._scheduler.run(rounds, halt_on_quiescence=False)

    # -- The emulated detector ---------------------------------------------------

    def _responsive_sets(self, p: ProcessId, g: Group) -> List[ProcessSet]:
        """``Q_g`` at process ``p``: line 3 initial value plus line 9."""
        responsive = [g.members]
        for (group, x), instance in self._instances.items():
            if group != g or p not in x:
                continue
            if instance.delivered_at(p):
                responsive.append(x)
        return responsive

    def _most_responsive(self, p: ProcessId, g: Group) -> ProcessSet:
        """``qr_g``: line 14 — argmax of the ranking over ``Q_g``."""
        candidates = self._responsive_sets(p, g)
        return max(
            candidates,
            key=lambda x: (self.ranking.rank(x), -len(x), sorted(x)),
        )

    def query(self, p: ProcessId, t: Time) -> object:
        """Lines 10-15 of Algorithm 2."""
        if p not in self.scope:
            return BOTTOM
        union: set = set()
        for g in self.groups:
            union |= self._most_responsive(p, g)
        return pset(union & self.scope)
