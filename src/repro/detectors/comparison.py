"""Comparing failure detectors (Appendix A; Proposition 51, Corollary 52).

``D' ⪯ D`` ("D' is weaker than D") holds when an algorithm can transform
``D`` into ``D'``.  This module provides the two comparisons the paper
proves about the new detectors:

* :class:`GammaFromIndicators` — the Proposition 51 transformation: the
  conjunction ``∧_{g,h∈G} 1^{g∩h}`` implements ``gamma`` (a family is
  declared faulty once, for every equivalence class of closed paths, some
  visited edge's indicator has fired).

* :func:`distinguishing_scenario_gamma_vs_indicator` — the Corollary 52
  separation: ``gamma`` cannot implement ``1^{g∩h}`` when two groups
  intersect, exhibited as a pair of failure patterns with identical
  gamma histories but different required indicator outputs.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.detectors.base import FailureDetector
from repro.detectors.cyclicity import GammaOracle
from repro.detectors.indicator import IndicatorOracle
from repro.groups.families import hamiltonian_cycles, path_edges
from repro.groups.topology import Group, GroupFamily, GroupTopology
from repro.model.failures import FailurePattern, Time, crash_pattern, failure_free
from repro.model.processes import ProcessId, ProcessSet, pset


class GammaFromIndicators(FailureDetector):
    """Proposition 51: build ``gamma`` from the indicator conjunction.

    For a cyclic family ``f``, each hamiltonian cycle (equivalence class
    of ``cpaths(f)``) is declared broken when the indicator ``1^{g∩h}``
    of some edge ``(g, h)`` it visits returns true; ``f`` is excluded
    when every class is broken — exactly the path-based faultiness.
    """

    kind = "gamma(from indicators)"

    def __init__(
        self,
        topology: GroupTopology,
        indicators: Dict[FrozenSet[ProcessId], IndicatorOracle],
    ) -> None:
        super().__init__()
        self.topology = topology
        self.indicators = indicators

    @classmethod
    def with_oracles(
        cls,
        topology: GroupTopology,
        pattern: FailurePattern,
        detection_lag: Time = 0,
    ) -> "GammaFromIndicators":
        """Convenience: instantiate the indicator conjunction as oracles."""
        indicators: Dict[FrozenSet[ProcessId], IndicatorOracle] = {}
        for g, h in topology.intersecting_pairs():
            shared = g.intersection(h)
            if shared not in indicators:
                indicators[shared] = IndicatorOracle(
                    pattern, shared, detection_lag=detection_lag
                )
        return cls(topology, indicators)

    def _edge_dead(self, p: ProcessId, t: Time, g: Group, h: Group) -> bool:
        indicator = self.indicators.get(g.intersection(h))
        if indicator is None:
            return False
        return bool(indicator.query(p, t))

    def _family_excluded(
        self, p: ProcessId, t: Time, family: GroupFamily
    ) -> bool:
        for cycle in hamiltonian_cycles(family):
            closed = cycle + (cycle[0],)
            if not any(
                self._edge_dead(p, t, g, h) for g, h in path_edges(closed)
            ):
                return False  # this class has no fired edge: keep f
        return True

    def query(self, p: ProcessId, t: Time) -> FrozenSet[GroupFamily]:
        return frozenset(
            family
            for family in self.topology.families_of_process(p)
            if not self._family_excluded(p, t, family)
        )


def distinguishing_scenario_gamma_vs_indicator(
    topology: GroupTopology, g_name: str, h_name: str
) -> Optional[Tuple[FailurePattern, FailurePattern]]:
    """Corollary 52's witness: two patterns gamma cannot tell apart.

    Returns ``(F, F')`` where the intersection ``g∩h`` is correct in
    ``F`` and initially dead in ``F'``, while every cyclic family through
    the pair is *faulty in both from the start* — so every gamma history
    of ``F`` is also a gamma history of ``F'``, yet ``1^{g∩h}`` must
    output false forever in ``F`` and eventually true in ``F'``.

    Returns ``None`` when no such configuration exists in the topology
    (e.g. the pair shares no killable third party).
    """
    g = topology.group(g_name)
    h = topology.group(h_name)
    shared = g.intersection(h)
    if not shared:
        return None
    # Kill, at time 0, one process in every *other* edge of every family
    # containing both groups, making those families faulty under both
    # patterns without touching g∩h's correctness in F.
    victims: set = set()
    for family in topology.cyclic_families():
        if g not in family or h not in family:
            continue
        for a, b in itertools.combinations(sorted(family), 2):
            edge = a.intersection(b)
            if edge and edge != shared and not (edge & shared):
                victims.add(sorted(edge)[0])
    if not victims and any(
        g in f and h in f for f in topology.cyclic_families()
    ):
        return None  # cannot break the families without touching g∩h
    base = {p: 0 for p in victims}
    pattern_f = crash_pattern(topology.processes, base)
    with_dead_intersection = dict(base)
    for p in shared:
        with_dead_intersection[p] = 0
    pattern_f_prime = crash_pattern(topology.processes, with_dead_intersection)
    return pattern_f, pattern_f_prime


def gamma_histories_agree(
    topology: GroupTopology,
    pattern_a: FailurePattern,
    pattern_b: FailurePattern,
    observers: Iterable[ProcessId],
    horizon: Time,
) -> bool:
    """Whether the gamma oracle outputs identically under both patterns
    at the given (common-correct) observers up to ``horizon``."""
    gamma_a = GammaOracle(pattern_a, topology)
    gamma_b = GammaOracle(pattern_b, topology)
    for t in range(horizon + 1):
        for p in observers:
            if gamma_a.query(p, t) != gamma_b.query(p, t):
                return False
    return True
