"""The perfect failure detector ``P`` ([14], §1, §7).

``P`` returns a set of suspected processes satisfying:

* *Strong accuracy*: no process is suspected before it crashes;
* *Strong completeness*: every crashed process is eventually suspected by
  every correct process, forever.

It is the weakest *realistic* detector for consensus [14] and suffices for
genuine atomic multicast [36]; the paper's contribution is that the much
weaker ``mu`` is enough.  The oracle is included both as a baseline
detector (Table 1, row [36]) and to support the Schiper–Pedone baseline.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.detectors.base import OracleDetector
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, pset


class PerfectOracle(OracleDetector):
    """Oracle-backed perfect detector.

    Attributes:
        detection_lag: delay between a crash and its first report; strong
            accuracy holds for any lag >= 0.
    """

    kind = "P"

    def __init__(self, pattern: FailurePattern, detection_lag: Time = 0) -> None:
        super().__init__(pattern)
        self.detection_lag = detection_lag

    def query(self, p: ProcessId, t: Time) -> FrozenSet[ProcessId]:
        """The processes crashed at least ``detection_lag`` ago."""
        horizon = t - self.detection_lag
        if horizon < 0:
            return frozenset()
        return self.pattern.at(horizon)
