"""Failure-detector base abstractions (Appendix A).

A failure detector is an oracle queried locally: ``D.query(p, t)`` returns
the local sample ``H(p, t)`` of some history ``H in D(F)``.  Oracle-backed
implementations compute their answers from the run's failure pattern —
this is exactly the model's definition of a detector (a mapping from
failure patterns to histories).  Emulated detectors (Algorithms 2–5)
instead derive their answers from protocol executions; both expose the
same :class:`FailureDetector` interface.

The special value :data:`BOTTOM` is the ``⊥`` returned by set-restricted
detectors outside their scope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId


class _Bottom:
    """The distinguished ``⊥`` sample (singleton)."""

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "⊥"

    def __bool__(self) -> bool:
        return False


#: The ⊥ value returned by restricted detectors outside their scope.
BOTTOM = _Bottom()


class FailureDetector:
    """Interface of a failure-detector module.

    Subclasses implement :meth:`query`.  The base class records a history
    of all samples handed out, which the validation harness in
    :mod:`repro.detectors.validation` replays against the class
    properties (Intersection, Liveness, Leadership, Accuracy, ...).
    """

    #: short class label, e.g. "Sigma", used in diagnostics.
    kind: str = "D"

    def __init__(self) -> None:
        self._history: List[Tuple[ProcessId, Time, Any]] = []

    def query(self, p: ProcessId, t: Time) -> Any:
        """Return the sample ``H(p, t)``; must be overridden."""
        raise NotImplementedError

    def sample(self, p: ProcessId, t: Time) -> Any:
        """Query and record the sample in the observable history."""
        value = self.query(p, t)
        self._history.append((p, t, value))
        return value

    @property
    def history(self) -> Tuple[Tuple[ProcessId, Time, Any], ...]:
        """All recorded ``(process, time, value)`` samples, in query order."""
        return tuple(self._history)

    def reset_history(self) -> None:
        self._history.clear()


@dataclass(frozen=True)
class DetectorSample:
    """One recorded sample, for validation reports."""

    process: ProcessId
    time: Time
    value: Any


class OracleDetector(FailureDetector):
    """A detector computed from the run's failure pattern.

    Attributes:
        pattern: the failure pattern ``F`` of the current run.
    """

    def __init__(self, pattern: FailurePattern) -> None:
        super().__init__()
        self.pattern = pattern
