"""The leader failure detector ``Omega`` (§3, from [8]).

``Omega`` returns a process identity such that, when the scope contains a
correct process, eventually all correct processes are returned the same
correct leader forever (*Leadership*).

The oracle supports a configurable *stabilization time*: before it, the
sample is the smallest process of the scope still alive (which may be
faulty and may change over time — deliberately unstable, as the real
detector may misbehave for an arbitrary finite prefix); from the
stabilization time on, the sample is the smallest correct process of the
scope.  With ``stabilization_time=0`` the oracle is perfectly stable from
the start.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Optional

from repro.detectors.base import OracleDetector
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset


class OmegaOracle(OracleDetector):
    """Oracle-backed ``Omega_P``.

    Attributes:
        scope: the process set the leader is drawn from.
        stabilization_time: first time at which the eventual leader is
            reported; defaults to the last crash time of the pattern
            (before which the detector may output crashed processes).
    """

    kind = "Omega"

    def __init__(
        self,
        pattern: FailurePattern,
        scope: ProcessSet,
        stabilization_time: int = None,
    ) -> None:
        super().__init__(pattern)
        if not scope:
            raise DetectorError("Omega scope must be non-empty")
        self.scope = pset(scope)
        if stabilization_time is None:
            # Last alive-set change: crash times plus (under the
            # crash–recovery overlay) recovery times — Leadership is an
            # eventual property, and a leader elected before the final
            # rejoin may still be superseded.
            stabilization_time = max(pattern.change_instants(), default=0)
        self.stabilization_time = stabilization_time
        self._sorted_scope = sorted(self.scope)
        correct = [q for q in self._sorted_scope if pattern.is_correct(q)]
        #: The leader reported after stabilization (None when the whole
        #: scope is faulty, in which case Leadership is vacuous).
        self.eventual_leader = correct[0] if correct else None
        # Pre-stabilization samples change only at the scope's crash
        # and recovery instants; cache one per inter-change interval.
        self._crash_instants = sorted(
            {
                when
                for q, when in pattern.crash_times.items()
                if q in self.scope
            }
            | {
                when
                for q, when in pattern.recovery_times.items()
                if q in self.scope
            }
        )
        self._samples: Dict[int, Optional[ProcessId]] = {}

    def query(self, p: ProcessId, t: Time) -> ProcessId:
        """The current leader estimate for the scope."""
        if self.eventual_leader is not None and t >= self.stabilization_time:
            return self.eventual_leader
        epoch = bisect_right(self._crash_instants, t)
        if epoch in self._samples:
            leader = self._samples[epoch]
        else:
            leader = next(
                (
                    q
                    for q in self._sorted_scope
                    if self.pattern.is_alive(q, t)
                ),
                None,
            )
            self._samples[epoch] = leader
        if leader is not None:
            return leader
        if self.eventual_leader is not None:
            return self.eventual_leader
        # Whole scope crashed: any output is a valid history.
        return self._sorted_scope[0]
