"""The indicator failure detector ``1^P`` (§6.1).

``1^P`` returns a boolean such that:

* *Accuracy*: ``True`` implies all of ``P`` is crashed now;
* *Completeness*: once all of ``P`` is crashed, correct processes
  eventually read ``True`` forever.

The paper's ``1^{g∩h}`` is the indicator for ``P = g ∩ h`` restricted to
the processes of ``g ∪ h``; for members of ``g ∩ h`` the constant
``True``-on-death output carries no usable information (a process inside
the intersection that reads ``True`` is itself crashed).
"""

from __future__ import annotations

from repro.detectors.base import OracleDetector
from repro.model.errors import DetectorError
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet, pset


class IndicatorOracle(OracleDetector):
    """Oracle-backed ``1^P``.

    Attributes:
        watched: the set ``P`` whose collective death is reported.
        detection_lag: delay between the death of ``P`` and the first
            ``True`` sample (0 = immediate).
    """

    kind = "1"

    def __init__(
        self,
        pattern: FailurePattern,
        watched: ProcessSet,
        detection_lag: Time = 0,
    ) -> None:
        super().__init__(pattern)
        if not watched:
            raise DetectorError("indicator scope must be non-empty")
        self.watched = pset(watched)
        self.detection_lag = detection_lag
        self._death_time = pattern.crash_time_of_set(self.watched)

    def query(self, p: ProcessId, t: Time) -> bool:
        """Whether ``watched`` is (detectably) entirely crashed at ``t``."""
        if self._death_time is None:
            return False
        return t >= self._death_time + self.detection_lag
