"""Validation harness for failure-detector histories.

Each ``check_*`` function replays a recorded history — a sequence of
``(process, time, value)`` samples — against the defining properties of a
detector class and returns a list of human-readable violations (empty
means the history is admissible).

Eventual properties (Liveness, Leadership, Completeness) are checked on
the *final suffix* of the history: a finite prefix cannot falsify an
eventual property, but a run that has executed long past the last crash
should already exhibit the limit behaviour, and the emulation tests run
exactly such histories.

These checks are what turns the paper's detector definitions into
executable oracles for the necessity experiments (Algorithms 2–5): the
emulated detectors must pass the very same checks as the ideal ones.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.groups.families import family_faulty_at
from repro.groups.topology import GroupTopology
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId, ProcessSet

#: A recorded history: (process, time, value) samples in query order.
History = Sequence[Tuple[ProcessId, Time, Any]]


def _samples_by_process(history: History) -> Dict[ProcessId, List[Tuple[Time, Any]]]:
    grouped: Dict[ProcessId, List[Tuple[Time, Any]]] = {}
    for p, t, value in history:
        grouped.setdefault(p, []).append((t, value))
    return grouped


def check_sigma(
    history: History, pattern: FailurePattern, scope: ProcessSet
) -> List[str]:
    """Check the Intersection and Liveness properties of ``Sigma_P``."""
    violations: List[str] = []
    values = [(p, t, v) for p, t, v in history if v is not None]
    for p, t, v in values:
        if not v:
            violations.append(f"empty quorum at {p.name} t={t}")
        if not set(v) <= set(scope):
            violations.append(f"quorum outside scope at {p.name} t={t}: {v}")
    for i, (p, t, v) in enumerate(values):
        for q, u, w in values[i + 1 :]:
            if not (set(v) & set(w)):
                violations.append(
                    f"Intersection violated: {p.name}@{t} -> {sorted(v)} vs "
                    f"{q.name}@{u} -> {sorted(w)}"
                )
    correct_scope = {p for p in scope if pattern.is_correct(p)}
    if correct_scope:
        for p, samples in _samples_by_process(history).items():
            if not pattern.is_correct(p) or not samples:
                continue
            _, last = samples[-1]
            if last is not None and not set(last) <= pattern.correct:
                violations.append(
                    f"Liveness suspect: final quorum at {p.name} contains "
                    f"faulty processes {sorted(set(last) - pattern.correct)}"
                )
    return violations


def check_omega(
    history: History, pattern: FailurePattern, scope: ProcessSet
) -> List[str]:
    """Check the Leadership property of ``Omega_P``.

    On the restricted pattern ``F ∩ P``, when some member of the scope is
    correct, the final samples at all correct scope members must coincide
    on a single correct leader.
    """
    violations: List[str] = []
    correct_scope = {p for p in scope if pattern.is_correct(p)}
    if not correct_scope:
        return violations  # Leadership is vacuous.
    finals: Dict[ProcessId, Any] = {}
    for p, samples in _samples_by_process(history).items():
        if p in correct_scope and samples:
            finals[p] = samples[-1][1]
    leaders = set(finals.values())
    if len(leaders) > 1:
        violations.append(f"divergent final leaders: {finals}")
    for p, leader in finals.items():
        if leader not in correct_scope:
            violations.append(
                f"final leader at {p.name} is {leader!r}, not a correct "
                f"member of the scope"
            )
    return violations


def check_gamma(
    history: History, pattern: FailurePattern, topology: GroupTopology
) -> List[str]:
    """Check the Accuracy and Completeness properties of ``gamma``."""
    violations: List[str] = []
    for p, t, value in history:
        if value is None:
            continue
        known = set(topology.families_of_process(p))
        for family in known - set(value):
            if not family_faulty_at(family, pattern, t):
                violations.append(
                    f"Accuracy violated at {p.name} t={t}: a live family "
                    f"was excluded"
                )
    horizon = max(pattern.change_instants(), default=0)
    for p, samples in _samples_by_process(history).items():
        if not pattern.is_correct(p) or not samples:
            continue
        last_t, last = samples[-1]
        if last is None:
            continue
        for family in last:
            if family_faulty_at(family, pattern, max(horizon, last_t)):
                violations.append(
                    f"Completeness suspect at {p.name}: final output still "
                    f"contains a faulty family"
                )
    return violations


def check_indicator(
    history: History, pattern: FailurePattern, watched: ProcessSet
) -> List[str]:
    """Check the Accuracy and Completeness properties of ``1^P``."""
    violations: List[str] = []
    death_time = pattern.crash_time_of_set(watched)
    for p, t, value in history:
        if value and (death_time is None or t < death_time):
            violations.append(
                f"Accuracy violated at {p.name} t={t}: indicator raised "
                f"while {sorted(watched)} has live members"
            )
    if death_time is not None:
        for p, samples in _samples_by_process(history).items():
            if not pattern.is_correct(p) or not samples:
                continue
            last_t, last = samples[-1]
            if last_t > death_time and not last:
                violations.append(
                    f"Completeness suspect at {p.name}: indicator still "
                    f"False at t={last_t} though the set died at "
                    f"t={death_time}"
                )
    return violations


def check_perfect(history: History, pattern: FailurePattern) -> List[str]:
    """Check strong accuracy and strong completeness of ``P``."""
    violations: List[str] = []
    for p, t, value in history:
        if value is None:
            continue
        premature = set(value) - set(pattern.at(t))
        if premature:
            violations.append(
                f"strong accuracy violated at {p.name} t={t}: suspected "
                f"{sorted(premature)} before any crash"
            )
    for p, samples in _samples_by_process(history).items():
        if not pattern.is_correct(p) or not samples:
            continue
        _, last = samples[-1]
        if last is not None and not set(pattern.faulty) <= set(last):
            violations.append(
                f"strong completeness suspect at {p.name}: final suspicion "
                f"misses {sorted(set(pattern.faulty) - set(last))}"
            )
    return violations
