"""The cyclicity failure detector ``gamma`` (§3, new in the paper).

At process ``p``, ``gamma`` returns a set of cyclic families drawn from
``F(p)`` such that:

* *Accuracy*: if a family of ``F(p)`` is **not** output at ``p`` at time
  ``t``, that family is faulty at ``t``;
* *Completeness*: at a correct process, a family of ``F(p)`` that is
  faulty is eventually excluded from the output forever.

The oracle excludes a family once it has been faulty for ``detection_lag``
time units (``0`` = eager, exact detection).  Because faultiness is
monotone (crashes are permanent), lagged exclusion still satisfies
Accuracy.

The module also provides :func:`gamma_groups`, the derived notation
``gamma(g)`` used by Algorithm 1: the groups ``h`` intersecting ``g`` such
that ``g`` and ``h`` belong to a common family currently output by the
detector.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, FrozenSet, Iterable, Tuple

from repro.detectors.base import OracleDetector
from repro.groups.families import family_fault_time
from repro.groups.topology import Group, GroupFamily, GroupTopology
from repro.model.failures import FailurePattern, Time
from repro.model.processes import ProcessId


class GammaOracle(OracleDetector):
    """Oracle-backed cyclicity detector.

    Attributes:
        topology: the destination groups; fixes ``F`` and ``F(p)``.
        detection_lag: delay, in time units, between a family becoming
            faulty and its exclusion from the output.
    """

    kind = "gamma"

    def __init__(
        self,
        pattern: FailurePattern,
        topology: GroupTopology,
        detection_lag: Time = 0,
    ) -> None:
        super().__init__(pattern)
        self.topology = topology
        self.detection_lag = detection_lag
        #: Precomputed fault time per cyclic family (None = never faulty).
        self._fault_times = {
            family: family_fault_time(family, pattern)
            for family in topology.cyclic_families()
        }
        # The output at ``p`` is a pure function of which families are
        # excluded, which only changes when some fault time plus the lag
        # elapses; queries inside one such epoch share a cached sample.
        self._exclusion_instants = sorted(
            {
                fault_time + detection_lag
                for fault_time in self._fault_times.values()
                if fault_time is not None
            }
        )
        self._samples: Dict[Tuple[ProcessId, int], FrozenSet[GroupFamily]] = {}
        self._group_samples: Dict[Tuple[Group, int], FrozenSet[GroupFamily]] = {}

    def epoch(self, t: Time) -> int:
        """The exclusion-state epoch of time ``t``.

        Samples (and anything derived from them, like the ``gamma(g)``
        partner sets) are constant within one epoch — callers may use
        this as a memoization key.
        """
        return bisect_right(self._exclusion_instants, t)

    def _excluded(self, family: GroupFamily, t: Time) -> bool:
        """Whether ``family`` is excluded from outputs at time ``t``."""
        fault_time = self._fault_times[family]
        return fault_time is not None and t >= fault_time + self.detection_lag

    def query(self, p: ProcessId, t: Time) -> FrozenSet[GroupFamily]:
        """The families of ``F(p)`` not (yet) detected as faulty."""
        key = (p, self.epoch(t))
        sample = self._samples.get(key)
        if sample is None:
            sample = frozenset(
                family
                for family in self.topology.families_of_process(p)
                if not self._excluded(family, t)
            )
            self._samples[key] = sample
        return sample

    def trusted_families_of_group(
        self, g: Group, t: Time
    ) -> FrozenSet[GroupFamily]:
        """The families of ``F(g)`` not (yet) detected as faulty.

        A *group-uniform* view: unlike :meth:`query`, the answer does not
        depend on which member asks.  Algorithm 1's commit gate needs
        this uniformity — a member of ``g`` that carries no intersection
        of a live family ``f ∋ g`` (so ``f ∉ F(p)``) would otherwise see
        an empty partner set and propose an ordering position before the
        carriers of ``f`` have written their ``(m, h, ·)`` records,
        poisoning ``CONS_m`` with a stale value (the ROADMAP item 6
        termination gap).  The oracle's exclusion state is the same one
        :meth:`query` consults, so Accuracy and Completeness carry over
        family-by-family.
        """
        key = (g, self.epoch(t))
        sample = self._group_samples.get(key)
        if sample is None:
            sample = frozenset(
                family
                for family in self.topology.families_of_group(g)
                if not self._excluded(family, t)
            )
            self._group_samples[key] = sample
        return sample


def gamma_groups(
    output: Iterable[GroupFamily], g: Group
) -> Tuple[Group, ...]:
    """``gamma(g)``: groups ``h`` with ``g ∩ h ≠ ∅`` such that ``g`` and
    ``h`` belong to a cyclic family in the detector's output (§3).

    Partnering is derived from the *chordless-cycle* families in the
    output.  This refines the paper's wording to keep Algorithm 1 live:
    in a family whose intersection graph has chords, a chord intersection
    ``g ∩ h`` can die while the family's hamiltonian cycle stays alive —
    the family is then never excluded, yet nobody can ever write the
    ``(m, h, ·)`` records the waiters ask for.  Every intersecting pair
    inside a cyclic family also shares a chordless-cycle family (shortcut
    the cycle through its chords), and a chordless family through edge
    ``(g, h)`` is faulty exactly when one of its cycle edges — possibly
    ``g ∩ h`` itself — dies, which is precisely when the paper's Lemma 25
    needs the wait to end.  On chordless topologies (rings, triangles,
    Figure 1's families f and f') this coincides with the literal
    definition.

    Args:
        output: the family set returned by a gamma query.
        g: the destination group of interest.
    """
    from repro.groups.families import is_chordless_cycle_family

    partners = set()
    for family in output:
        if g not in family or not is_chordless_cycle_family(family):
            continue
        for h in family:
            if h != g and g.intersects(h):
                partners.add(h)
    return tuple(sorted(partners))
