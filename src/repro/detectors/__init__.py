"""Failure detectors: Sigma, Omega, gamma, 1^P, perfect P, restriction,
conjunction, the candidate mu (§3), and a property-validation harness."""

from repro.detectors.base import BOTTOM, DetectorSample, FailureDetector, OracleDetector
from repro.detectors.comparison import (
    GammaFromIndicators,
    distinguishing_scenario_gamma_vs_indicator,
    gamma_histories_agree,
)
from repro.detectors.cyclicity import GammaOracle, gamma_groups
from repro.detectors.indicator import IndicatorOracle
from repro.detectors.leader import OmegaOracle
from repro.detectors.mu import Mu
from repro.detectors.perfect import PerfectOracle
from repro.detectors.quorum import SigmaOracle
from repro.detectors.restriction import Conjunction, Restricted
from repro.detectors.validation import (
    check_gamma,
    check_indicator,
    check_omega,
    check_perfect,
    check_sigma,
)

__all__ = [
    "BOTTOM",
    "DetectorSample",
    "FailureDetector",
    "OracleDetector",
    "GammaFromIndicators",
    "distinguishing_scenario_gamma_vs_indicator",
    "gamma_histories_agree",
    "GammaOracle",
    "gamma_groups",
    "IndicatorOracle",
    "OmegaOracle",
    "Mu",
    "PerfectOracle",
    "SigmaOracle",
    "Conjunction",
    "Restricted",
    "check_gamma",
    "check_indicator",
    "check_omega",
    "check_perfect",
    "check_sigma",
]
