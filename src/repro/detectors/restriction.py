"""Set restriction and conjunction of failure detectors (§3).

``D_P`` behaves as ``D`` computed on the restricted failure pattern
``F ∩ P`` at processes of ``P`` and returns ``⊥`` elsewhere.  The oracle
detectors in this package already take their scope at construction (they
are built from ``F`` and a scope), so :class:`Restricted` only adds the
``⊥``-outside-the-scope behaviour.

``C ∧ D`` returns pairs of samples; :class:`Conjunction` generalizes this
to named components so large conjunctions such as ``mu`` stay readable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Tuple

from repro.detectors.base import BOTTOM, FailureDetector
from repro.model.errors import DetectorError
from repro.model.failures import Time
from repro.model.processes import ProcessId, ProcessSet, pset


class Restricted(FailureDetector):
    """``D_P``: ``D`` inside ``P``, ``⊥`` outside (§3).

    Attributes:
        inner: the wrapped detector (already computed w.r.t. ``F ∩ P``).
        scope: the process set ``P``.
    """

    def __init__(self, inner: FailureDetector, scope: ProcessSet) -> None:
        super().__init__()
        if not scope:
            raise DetectorError("restriction scope must be non-empty")
        self.inner = inner
        self.scope = pset(scope)
        self.kind = f"{inner.kind}|restricted"

    def query(self, p: ProcessId, t: Time) -> Any:
        if p not in self.scope:
            return BOTTOM
        return self.inner.query(p, t)


class Conjunction(FailureDetector):
    """``∧_i D_i`` with named components.

    Queries return a mapping ``component name -> sample`` so higher-level
    code can address, e.g., ``mu.query(p, t)["omega:g1"]``.
    """

    kind = "Conjunction"

    def __init__(self, components: Mapping[str, FailureDetector]) -> None:
        super().__init__()
        if not components:
            raise DetectorError("a conjunction needs at least one component")
        self.components: Dict[str, FailureDetector] = dict(components)

    def query(self, p: ProcessId, t: Time) -> Dict[str, Any]:
        return {
            name: detector.query(p, t)
            for name, detector in self.components.items()
        }

    def component(self, name: str) -> FailureDetector:
        try:
            return self.components[name]
        except KeyError:
            raise DetectorError(f"no conjunction component {name!r}") from None
